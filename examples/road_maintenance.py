#!/usr/bin/env python3
"""Scenario: a county road-maintenance dispatch system.

Incident reports come in as map coordinates (potholes, downed trees).
For each report the dispatcher needs:

1. the nearest road segment (query 3) -- where to send the crew;
2. the enclosing polygon (query 4) -- the block/parcel affected, used to
   notify residents;
3. every road within a closure radius (query 5 with a window) -- what to
   put on the detour notice.

The paper's result that matters here: for data-correlated incidents
(reports cluster where roads are), the disjoint structures answer the
nearest-road question with the fewest disk reads.
"""

import random

from repro import (
    PMRQuadtree,
    Rect,
    RPlusTree,
    RStarTree,
    StorageContext,
    enclosing_polygon,
    generate_county,
    nearest_segment,
    window_query,
)
from repro.data import two_stage_points


def build(cls, segments, **kw):
    ctx = StorageContext.create()
    index = cls(ctx, **kw)
    for seg_id in ctx.load_segments(segments):
        index.insert(seg_id)
    return index


def main() -> None:
    county = generate_county("anne_arundel", scale=0.05)
    print(f"road network: {len(county)} segments ({county.name})")

    pmr = build(PMRQuadtree, county.segments)
    indexes = {
        "PMR": pmr,
        "R+": build(RPlusTree, county.segments),
        "R*": build(RStarTree, county.segments),
    }

    # Incidents cluster where the roads are: the paper's 2-stage model.
    rng = random.Random(42)
    incidents = two_stage_points(50, rng, pmr)

    print(f"\ndispatching {len(incidents)} incident reports...\n")
    closure_radius = 400  # map pixels

    for name, index in indexes.items():
        ctx = index.ctx
        ctx.pool.clear()
        before = ctx.counters.snapshot()

        blocks_notified = 0
        roads_closed = 0
        for p in incidents:
            seg_id, dist2 = nearest_segment(index, p)
            polygon = enclosing_polygon(index, p)
            if polygon is not None and not polygon.is_outer:
                blocks_notified += 1
            window = Rect(
                p.x - closure_radius,
                p.y - closure_radius,
                p.x + closure_radius,
                p.y + closure_radius,
            )
            roads_closed += len(window_query(index, window))

        delta = ctx.counters.since(before)
        print(
            f"{name:4s}: {delta.disk_reads / len(incidents):6.1f} disk reads"
            f" and {delta.segment_comps / len(incidents):7.1f} segment"
            f" comparisons per incident"
            f"   ({blocks_notified} blocks notified,"
            f" {roads_closed} road closures listed)"
        )

    print(
        "\nAll three answer identically; the disjoint decompositions"
        " (PMR, R+) read the fewest pages for clustered incidents."
    )


if __name__ == "__main__":
    main()
