#!/usr/bin/env python3
"""Map server: snapshot an index, reopen it, and serve it concurrently.

The paper's harness builds an index, measures it, and throws it away.
This example runs the full service lifecycle instead:

1. build an R*-tree over a synthetic county and **save** it as a
   queryable snapshot (pages + manifest);
2. **reopen** the snapshot -- no rebuild inserts, identical statistics;
3. serve it over JSON-over-TCP to a few concurrent clients;
4. execute a shuffled query batch in arrival order and in Morton order
   and compare the buffer-pool misses.

Run:  python examples/map_server.py
"""

import io
import json
import random
import socket
import threading

from repro import generate_county
from repro.harness.experiment import build_structure
from repro.service import (
    BatchExecutor,
    MapServer,
    QueryEngine,
    open_index,
    save_index,
)


def main() -> None:
    county = generate_county("cecil", scale=0.02)
    built = build_structure("R*", county)
    index = built.index
    print(
        f"built {index.name} over {county.name!r}: "
        f"{len(county)} segments, {index.page_count()} pages, "
        f"height {index.height()}"
    )

    # --- 1+2: snapshot round-trip (in memory; pass a path for a file) ---
    buf = io.BytesIO()
    pages = save_index(index, buf)
    buf.seek(0)
    served = open_index(buf)
    print(
        f"snapshot: {pages} pages; reopened with zero rebuild inserts "
        f"(pages {served.page_count()}, entries {served.entry_count()}, "
        f"writes so far: {served.ctx.counters.disk_writes})"
    )

    # --- 3: concurrent clients over TCP -------------------------------
    engine = QueryEngine(served, cache_capacity=128)
    server = MapServer(engine)  # ephemeral port
    server.start_background()
    host, port = server.address

    def client(name: str, n: int) -> None:
        rng = random.Random(sum(map(ord, name)))
        with socket.create_connection((host, port)) as sock:
            with sock.makefile("rwb") as fh:
                for _ in range(n):
                    seg = county.segments[rng.randrange(len(county.segments))]
                    fh.write(
                        (json.dumps({"op": "point", "x": seg.x1, "y": seg.y1}) + "\n").encode()
                    )
                    fh.flush()
                    response = json.loads(fh.readline())
                    assert response["ok"], response

    workers = [
        threading.Thread(target=client, args=(f"client-{i}", 30)) for i in range(3)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    stats = engine.stats()
    print(
        f"served {sum(s['queries'] for s in stats['sessions'])} queries "
        f"over {len(stats['sessions'])} sessions on {host}:{port}; "
        f"cache hit rate {stats['cache']['hit_rate']:.0%}, "
        f"counters consistent: {stats['counters_consistent']}"
    )
    server.shutdown()
    server.server_close()

    # --- 4: batch scheduling study ------------------------------------
    rng = random.Random(7)
    requests = []
    for _ in range(150):
        seg = county.segments[rng.randrange(len(county.segments))]
        requests.append({"op": "point", "x": seg.x1, "y": seg.y1})
    rng.shuffle(requests)
    comparison = BatchExecutor(engine).compare_orders(requests)
    arrival = comparison["arrival"].disk_accesses
    morton = comparison["morton"].disk_accesses
    print(
        f"batch of {len(requests)} shuffled point queries: "
        f"{arrival} disk accesses in arrival order, {morton} sorted by "
        f"Morton key ({1 - morton / arrival:.0%} fewer)"
    )


if __name__ == "__main__":
    main()
