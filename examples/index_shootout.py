#!/usr/bin/env python3
"""The paper in miniature: build every structure over one county and
print Table 1- and Table 2-style comparisons.

Run:  python examples/index_shootout.py [county] [scale]
e.g.  python examples/index_shootout.py charles 0.05
"""

import sys

from repro.data import generate_county
from repro.harness import format_table2
from repro.harness.build_stats import build_row
from repro.harness.query_stats import map_query_stats


def main() -> None:
    county = sys.argv[1] if len(sys.argv) > 1 else "charles"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05

    map_data = generate_county(county, scale=scale)
    print(f"{county}: {len(map_data)} segments (scale {scale})\n")

    print("— build statistics (Table 1 row) —")
    row = build_row(map_data, structures=("R*", "R+", "PMR"))
    print(f"{'':6s}{'size KB':>9s}{'accesses':>10s}{'cpu s':>8s}")
    for s in ("R*", "R+", "PMR"):
        print(
            f"{s:6s}{row.size_kbytes[s]:>9.0f}{row.disk_accesses[s]:>10d}"
            f"{row.cpu_seconds[s]:>8.2f}"
        )

    print("\n— query statistics (Table 2) —")
    stats = map_query_stats(
        map_data,
        n_queries=100,
        window_area_fraction=min(0.0001 / scale, 0.01),
    )
    print(format_table2(stats, county=county))


if __name__ == "__main__":
    main()
