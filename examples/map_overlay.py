#!/usr/bin/env python3
"""Scenario: overlaying a road layer with a hydrography layer.

Every place a road crosses a stream needs a bridge or culvert in the
county's asset register. That is a map overlay -- the operation the
paper's concluding remarks single out as the PMR quadtree's home turf,
because two quadtrees over the same world share their decomposition
lines and can be joined in one aligned walk, while R-trees must test
rectangle pairs all the way down.

Run:  python examples/map_overlay.py
"""

from repro import PMRQuadtree, RStarTree, StorageContext, generate_county
from repro.core.queries import quadtree_join, rtree_join
from repro.data.generator import GeneratorSpec, generate_map


def build(cls, segments):
    ctx = StorageContext.create()
    index = cls(ctx)
    for seg_id in ctx.load_segments(segments):
        index.insert(seg_id)
    return index


def main() -> None:
    roads = generate_county("charles", scale=0.05)
    streams = generate_map(
        "streams",
        GeneratorSpec(
            kind="rural",
            target_segments=len(roads) // 4,
            seed=0xF10D,
            background=0.0,
            walk_fraction=1.0,
        ),
    )
    print(f"roads: {len(roads)} segments; streams: {len(streams)} segments\n")

    # --- aligned quadtree overlay ------------------------------------
    q_roads = build(PMRQuadtree, roads.segments)
    q_streams = build(PMRQuadtree, streams.segments)
    before = (q_roads.ctx.counters.snapshot(), q_streams.ctx.counters.snapshot())
    crossings = quadtree_join(q_roads, q_streams)
    dr = q_roads.ctx.counters.since(before[0])
    ds = q_streams.ctx.counters.since(before[1])
    print(f"PMR x PMR overlay: {len(crossings)} bridge sites")
    print(
        f"   {dr.disk_reads + ds.disk_reads} disk reads, "
        f"{dr.segment_comps + ds.segment_comps} segment comparisons, "
        f"{dr.bbox_comps + ds.bbox_comps} bucket reads"
    )

    # --- synchronized R-tree overlay ----------------------------------
    r_roads = build(RStarTree, roads.segments)
    r_streams = build(RStarTree, streams.segments)
    before = (r_roads.ctx.counters.snapshot(), r_streams.ctx.counters.snapshot())
    crossings_r = rtree_join(r_roads, r_streams)
    dr = r_roads.ctx.counters.since(before[0])
    ds = r_streams.ctx.counters.since(before[1])
    print(f"\nR* x R* overlay:  {len(crossings_r)} bridge sites")
    print(
        f"   {dr.disk_reads + ds.disk_reads} disk reads, "
        f"{dr.segment_comps + ds.segment_comps} segment comparisons, "
        f"{dr.bbox_comps + ds.bbox_comps} bounding box tests"
    )

    assert crossings == crossings_r
    print(
        "\nIdentical answers; the aligned decomposition replaces hundreds of"
        "\nthousands of rectangle-pair tests with a few thousand bucket reads"
        "\n-- Section 7's argument for regular decompositions, measured."
    )


if __name__ == "__main__":
    main()
