#!/usr/bin/env python3
"""The real-data path: TIGER/Line Record Type 1 -> normalized map -> index.

The paper's data is the Bureau of the Census TIGER/Line files. This
example round-trips a small synthetic chain file through the Type 1
reader, normalizes it to the paper's 16K x 16K grid, and answers queries
-- exactly the pipeline you would run on a real ``*.rt1`` file:

    segments = read_type1("TGR24017.RT1")       # Charles county, MD
    grid = normalize_segments(segments)
    ...

Run:  python examples/tiger_import.py
"""

import tempfile
from pathlib import Path

from repro import (
    Point,
    RStarTree,
    StorageContext,
    nearest_segment,
    normalize_segments,
    segments_at_point,
)
from repro.data import read_type1, write_type1
from repro.geometry import Segment


def fake_county_chains():
    """A tiny road network in real lon/lat around La Plata, MD."""
    lon0, lat0 = -76.975, 38.529
    chains = []
    # A 6x6 street grid, 0.005 degrees apart, written as chains.
    for i in range(6):
        for j in range(6):
            x, y = lon0 + i * 0.005, lat0 + j * 0.005
            if i < 5:
                chains.append(Segment(x, y, x + 0.005, y))
            if j < 5:
                chains.append(Segment(x, y, x, y + 0.005))
    return chains


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "TGR00000.RT1"
        count = write_type1(path, fake_county_chains(), cfcc="A41")
        print(f"wrote {count} Type 1 records to {path.name}")

        # --- the pipeline a real TIGER file goes through ---------------
        raw = read_type1(path)
        print(f"read back {len(raw)} chains (lon/lat degrees)")

        segments = normalize_segments(raw, world_size=16384)
        print(f"normalized to the 16K x 16K grid: {len(segments)} segments")

        ctx = StorageContext.create()
        index = RStarTree(ctx)
        for seg_id in ctx.load_segments(segments):
            index.insert(seg_id)
        print(f"indexed into an R*-tree of {index.page_count()} pages")

        # Queries run on grid coordinates after normalization.
        some_corner = segments[0].start
        incident = segments_at_point(index, Point(*some_corner))
        print(f"\nsegments incident at {some_corner}: {incident}")

        center = Point(8192, 8192)
        seg_id, dist2 = nearest_segment(index, center)
        print(f"nearest segment to the map centre: id={seg_id}, "
              f"distance={dist2 ** 0.5:.0f} pixels")
        print(f"\nmetrics: {ctx.counters.disk_accesses} disk accesses, "
              f"{ctx.counters.segment_comps} segment comparisons")


if __name__ == "__main__":
    main()
