#!/usr/bin/env python3
"""Scenario: a map-viewer backend serving pan/zoom viewport queries.

A GIS viewer fetches, for every repaint, the road segments intersecting
the current viewport -- exactly the paper's window query. Panning moves
the viewport by a fraction of its width, so consecutive queries overlap:
the buffer pool, not the index alone, decides how many disk reads a
repaint costs. This example pans a viewport across a county at three
zoom levels and reports disk reads per repaint for each structure.
"""

from repro import (
    PMRQuadtree,
    Rect,
    RPlusTree,
    RStarTree,
    StorageContext,
    generate_county,
    window_query,
)


def build(cls, segments):
    ctx = StorageContext.create()
    index = cls(ctx)
    for seg_id in ctx.load_segments(segments):
        index.insert(seg_id)
    return index


def pan_path(world: int, viewport: int, step_fraction: float = 0.4):
    """Viewports along a horizontal strip through the map centre."""
    step = max(1, int(viewport * step_fraction))
    y = (world - viewport) // 2
    x = 0
    while x + viewport <= world:
        yield Rect(x, y, x + viewport, y + viewport)
        x += step


def main() -> None:
    county = generate_county("baltimore", scale=0.05)
    print(f"map: {len(county)} segments ({county.name})\n")

    indexes = {
        "PMR": build(PMRQuadtree, county.segments),
        "R+": build(RPlusTree, county.segments),
        "R*": build(RStarTree, county.segments),
    }

    world = county.world_size
    for zoom, viewport in (("far", world // 4), ("mid", world // 8), ("near", world // 16)):
        print(f"zoom {zoom:4s} (viewport {viewport}px):")
        for name, index in indexes.items():
            ctx = index.ctx
            ctx.pool.clear()
            before = ctx.counters.snapshot()
            repaints = 0
            segments_drawn = 0
            for viewport_rect in pan_path(world, viewport):
                segments_drawn += len(window_query(index, viewport_rect))
                repaints += 1
            delta = ctx.counters.since(before)
            print(
                f"   {name:4s}: {delta.disk_reads / repaints:7.1f} disk reads"
                f" per repaint over {repaints} repaints"
                f" ({segments_drawn} segments drawn in total)"
            )
        print()

    print(
        "Overlapping viewports reward compactness: the structure with the"
        " fewest pages keeps more of the strip resident between repaints."
    )


if __name__ == "__main__":
    main()
