#!/usr/bin/env python3
"""Gallery: how each structure carves up the same map (Figure 1-5 style).

Renders a small county as ASCII art, then overlays the decompositions of
the PMR quadtree, the PM1 quadtree, and the R*-tree's leaf MBRs — the
pictures behind the paper's Figures 1, 2 and 5. Also shows STR bulk
loading producing a tidier R-tree than dynamic insertion.

Run:  python examples/decomposition_gallery.py
"""

from repro import PM1Quadtree, PMRQuadtree, RStarTree, StorageContext, generate_county
from repro.core.rtree import bulk_load_str
from repro.viz import render_pmr_blocks, render_rtree_leaves


def build(cls, segments, **kw):
    ctx = StorageContext.create()
    index = cls(ctx, **kw)
    for seg_id in ctx.load_segments(segments):
        index.insert(seg_id)
    return index


def main() -> None:
    county = generate_county("cecil", scale=0.01)
    print(f"{county.name}: {len(county)} segments\n")

    pmr = build(PMRQuadtree, county.segments, threshold=4)
    print(f"PMR quadtree (threshold 4): {len(pmr.leaf_blocks())} buckets, "
          f"depth {pmr.depth()}")
    print(render_pmr_blocks(pmr, width=72, height=30))

    pm1 = build(PM1Quadtree, county.segments)
    print(f"\nPM1 quadtree: {len(pm1.leaf_blocks())} buckets, "
          f"depth {pm1.depth()} — the geometric criteria decompose far deeper")
    print(render_pmr_blocks(pm1, width=72, height=30))

    rstar = build(RStarTree, county.segments)
    print(f"\nR*-tree (dynamic build): {rstar.page_count()} pages, "
          f"leaf occupancy {rstar.leaf_occupancy():.1f}/{rstar.capacity}")
    print(render_rtree_leaves(rstar, county.world_size, width=72, height=30))

    ctx = StorageContext.create()
    packed = RStarTree(ctx)
    bulk_load_str(packed, ctx.load_segments(county.segments))
    print(f"\nR*-tree (STR bulk load): {packed.page_count()} pages, "
          f"leaf occupancy {packed.leaf_occupancy():.1f}/{packed.capacity}")
    print(render_rtree_leaves(packed, county.world_size, width=72, height=30))


if __name__ == "__main__":
    main()
