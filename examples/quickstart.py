#!/usr/bin/env python3
"""Quickstart: index a road map and run all five queries of the paper.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    PMRQuadtree,
    Point,
    Rect,
    StorageContext,
    enclosing_polygon,
    generate_county,
    nearest_segment,
    segments_at_other_endpoint,
    segments_at_point,
    window_query,
)


def main() -> None:
    # A synthetic Baltimore-like county at 5 % of the paper's size.
    county = generate_county("baltimore", scale=0.05)
    print(f"generated {len(county)} road segments for {county.name!r}")

    # Each structure owns a storage stack: 1 KiB pages, 16-page LRU pool,
    # and the disk-resident segment table every query is charged against.
    ctx = StorageContext.create(page_size=1024, pool_pages=16)
    index = PMRQuadtree(ctx, threshold=4)  # the paper's configuration

    for seg_id in ctx.load_segments(county.segments):
        index.insert(seg_id)
    print(
        f"built a PMR quadtree: {index.page_count()} pages, "
        f"{index.entry_count()} q-edge entries, "
        f"{len(index.leaf_blocks())} buckets"
    )

    rng = random.Random(7)
    seg_id = rng.randrange(len(county.segments))
    endpoint = county.segments[seg_id].start

    # Query 1: who meets this road at this intersection?
    incident = segments_at_point(index, endpoint)
    print(f"\nQ1  segments incident at {endpoint}: {incident}")

    # Query 2: who meets it at the *other* end?
    other, at_other = segments_at_other_endpoint(index, endpoint, seg_id)
    print(f"Q2  other endpoint {other} touches segments {at_other}")

    # Query 3: nearest road to an arbitrary point.
    p = Point(8000, 8000)
    nearest = nearest_segment(index, p)
    print(f"Q3  nearest segment to {p}: id={nearest[0]}, dist={nearest[1] ** 0.5:.1f}")

    # Query 4: the city block (polygon) containing that point.
    polygon = enclosing_polygon(index, p)
    kind = "outer face" if polygon.is_outer else "polygon"
    print(f"Q4  enclosing {kind} has {polygon.size} edges")

    # Query 5: everything in a 0.01 %-of-the-map window.
    window = Rect(7900, 7900, 8400, 8400)
    hits = window_query(index, window)
    print(f"Q5  window {window} contains {len(hits)} segments")

    # The paper's three metrics, accumulated over everything above.
    c = ctx.counters
    print(
        f"\nmetrics: {c.disk_accesses} potential disk accesses, "
        f"{c.segment_comps} segment comparisons, "
        f"{c.bbox_comps} bucket computations"
    )


if __name__ == "__main__":
    main()
