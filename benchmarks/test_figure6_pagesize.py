"""Figure 6: build disk accesses by page size and buffer-pool size.

Paper claims: accesses decrease as the page size and the buffer pool
grow, for both the R+-tree and the PMR quadtree; and the PMR quadtree
needs fewer accesses than the R+-tree under identical configurations
(its 8-byte tuples pack 120 to a 1 KiB page versus 50 for the R+-tree's
20-byte tuples). The second claim is density-dependent; we assert it on
the rural county used throughout the figure reproductions.
"""

from __future__ import annotations

import pytest

from repro.harness import figure6_sweep, format_figure6
from repro.harness.sweeps import sweep_as_grid

from benchmarks.conftest import write_result

PAGE_SIZES = (512, 1024, 2048, 4096)
POOL_SIZES = (8, 16, 32)

_cache = {}


def _sweep(county_maps):
    if "cells" not in _cache:
        _cache["cells"] = figure6_sweep(
            map_data=county_maps["cecil"],
            page_sizes=PAGE_SIZES,
            pool_pages_options=POOL_SIZES,
        )
    return _cache["cells"]


def test_figure6_reproduction(benchmark, county_maps):
    cells = benchmark.pedantic(lambda: _sweep(county_maps), rounds=1, iterations=1)
    write_result("figure6_sweep.txt", format_figure6(cells))
    grid = sweep_as_grid(cells)
    assert set(grid) == {"R+", "PMR"}


def test_accesses_decrease_with_buffer_size(benchmark, county_maps):
    cells = benchmark.pedantic(lambda: _sweep(county_maps), rounds=1, iterations=1)
    grid = sweep_as_grid(cells)
    for structure, values in grid.items():
        for page_size in PAGE_SIZES:
            series = [values[(page_size, p)] for p in POOL_SIZES]
            assert series[0] >= series[-1], (structure, page_size, series)


def test_accesses_decrease_with_page_size(benchmark, county_maps):
    cells = benchmark.pedantic(lambda: _sweep(county_maps), rounds=1, iterations=1)
    grid = sweep_as_grid(cells)
    for structure, values in grid.items():
        for pool in POOL_SIZES:
            series = [values[(p, pool)] for p in PAGE_SIZES]
            assert series[0] >= series[-1], (structure, pool, series)


def test_pmr_fewer_accesses_than_rplus_identical_configs(benchmark, county_maps):
    """The paper: PMR needs fewer build accesses than the R+-tree under
    identical configurations, because its 2-tuples are 8 bytes against
    the R+-tree's 20. The effect scales with how many entries a page
    holds, so at reduced map scale it is guaranteed only where the
    capacity ratio bites hardest -- the smallest page size -- and must
    hold in at least half of all configurations."""
    cells = benchmark.pedantic(lambda: _sweep(county_maps), rounds=1, iterations=1)
    grid = sweep_as_grid(cells)

    smallest = min(PAGE_SIZES)
    for pool in POOL_SIZES:
        assert grid["PMR"][(smallest, pool)] <= grid["R+"][(smallest, pool)], (
            pool,
            grid,
        )

    wins = sum(
        1 for key, v in grid["R+"].items() if grid["PMR"][key] <= v
    )
    assert wins >= 0.5 * len(grid["R+"]), grid
