"""Map overlay (Section 7's untested claim).

"If the results of the operations are to be composed with the results of
other operations such as overlay of maps of different types, then the
fact that the decomposition induced by the PMR quadtree is oriented so
that the decomposition lines are always in the same positions makes it
preferable to the R+-tree."

We overlay a county's road network with a synthetic hydrography layer
(meandering stream walks over the same 16K world) and compare the
aligned quadtree join against the synchronized R*-tree join on all three
metrics. The data-independent decomposition should spend dramatically
less bounding-rectangle work.
"""

from __future__ import annotations

import pytest

from repro.core.queries import quadtree_join, rtree_join
from repro.data.generator import GeneratorSpec, generate_map
from repro.harness import build_structure

from benchmarks.conftest import SCALE, write_result

_cache = {}


def _hydro_layer(n_segments: int):
    """A streams-only layer: sparse meandering walks, no street grid."""
    return generate_map(
        "hydrography",
        GeneratorSpec(
            kind="rural",
            target_segments=n_segments,
            seed=0xF10D,
            background=0.0,
            walk_fraction=1.0,
            tandem_probability=0.0,
        ),
    )


def _run(county_maps):
    if "out" in _cache:
        return _cache["out"]
    roads = county_maps["charles"]
    streams = _hydro_layer(max(200, len(roads) // 4))

    out = {}

    qa = build_structure("PMR", roads)
    qb = build_structure("PMR", streams)
    before = (
        qa.ctx.counters.snapshot(),
        qb.ctx.counters.snapshot(),
    )
    pairs_q = quadtree_join(qa.index, qb.index)
    da = qa.ctx.counters.since(before[0])
    db = qb.ctx.counters.since(before[1])
    out["PMR x PMR"] = {
        "pairs": len(pairs_q),
        "disk": da.disk_reads + db.disk_reads,
        "segment_comps": da.segment_comps + db.segment_comps,
        "bounding_comps": da.bbox_comps + db.bbox_comps,
    }

    ra = build_structure("R*", roads)
    rb = build_structure("R*", streams)
    before = (
        ra.ctx.counters.snapshot(),
        rb.ctx.counters.snapshot(),
    )
    pairs_r = rtree_join(ra.index, rb.index)
    da = ra.ctx.counters.since(before[0])
    db = rb.ctx.counters.since(before[1])
    out["R* x R*"] = {
        "pairs": len(pairs_r),
        "disk": da.disk_reads + db.disk_reads,
        "segment_comps": da.segment_comps + db.segment_comps,
        "bounding_comps": da.bbox_comps + db.bbox_comps,
    }

    assert pairs_q == pairs_r, "join algorithms disagree on the overlay"
    _cache["out"] = out
    return out


def test_overlay_reproduction(benchmark, county_maps):
    out = benchmark.pedantic(lambda: _run(county_maps), rounds=1, iterations=1)
    write_result(
        "overlay_join.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    assert out["PMR x PMR"]["pairs"] == out["R* x R*"]["pairs"]
    assert out["PMR x PMR"]["pairs"] > 0, "layers never cross; overlay is vacuous"


def test_aligned_decomposition_beats_rtree_on_bounding_work(
    benchmark, county_maps
):
    out = benchmark.pedantic(lambda: _run(county_maps), rounds=1, iterations=1)
    q = out["PMR x PMR"]["bounding_comps"]
    r = out["R* x R*"]["bounding_comps"]
    assert q * 3 < r, (q, r)


def test_overlay_disk_accesses_comparable_or_better(benchmark, county_maps):
    out = benchmark.pedantic(lambda: _run(county_maps), rounds=1, iterations=1)
    assert out["PMR x PMR"]["disk"] <= out["R* x R*"]["disk"] * 2.0, out
