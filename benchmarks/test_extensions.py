"""Ablations over the extension structures.

* **PM family vs PMR** (Section 3): the PM1's geometric criteria force
  far deeper decomposition than the PMR's probabilistic split-once rule
  on the same map; PM2/PM3 sit between.
* **True R+-tree vs hybrid** (Section 3): same storage, dead-space
  pruning cuts the bounding-box work of point searches, MBR maintenance
  makes building costlier.
* **STR bulk loading** (production extension): packing beats dynamic
  insertion on build disk accesses and page count while answering
  queries identically.
* **Hilbert vs Morton locational codes** (linear-quadtree layout): both
  are correct; Hilbert clusters window scans into at most as many
  B-tree runs on average.
"""

from __future__ import annotations

import random

import pytest

from repro.core.queries import segments_at_point, window_query
from repro.core.rtree import RStarTree, bulk_load_str
from repro.data.query_points import random_endpoint_queries, random_windows
from repro.harness import build_structure
from repro.storage import StorageContext

from benchmarks.conftest import N_QUERIES, write_result


def test_pm_family_vs_pmr(benchmark, county_maps):
    """Decomposition granularity: PM1 >= PM2 >= PM3, all >> PMR."""
    cecil = county_maps["cecil"]

    def run():
        out = {}
        for name in ("PMR", "PM3", "PM2", "PM1"):
            built = build_structure(name, cecil)
            idx = built.index
            out[name] = {
                "buckets": len(idx.leaf_blocks()),
                "depth": idx.depth(),
                "entries": idx.entry_count(),
                "size_kb": built.size_kbytes,
                "build_s": built.build_seconds,
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "extension_pm_family.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    assert out["PM1"]["buckets"] >= out["PM2"]["buckets"] >= out["PM3"]["buckets"]
    assert out["PM1"]["buckets"] > 2 * out["PMR"]["buckets"]
    assert out["PM1"]["depth"] >= out["PMR"]["depth"]


def test_true_rplus_vs_hybrid(benchmark, county_maps):
    cecil = county_maps["cecil"]

    def run():
        out = {}
        rng = random.Random(55)
        queries = random_endpoint_queries(N_QUERIES, rng, cecil)
        for name in ("R+", "R+t"):
            built = build_structure(name, cecil)
            built.ctx.pool.clear()
            before = built.ctx.counters.snapshot()
            for p, _ in queries:
                segments_at_point(built.index, p)
            delta = built.ctx.counters.since(before)
            out[name] = {
                "pages": built.index.page_count(),
                "build_bbox": built.build_metrics.bbox_comps,
                "point_bbox": delta.bbox_comps / len(queries),
                "point_disk": delta.disk_reads / len(queries),
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "extension_true_rplus.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    # Same storage (Section 3), dead space pruned at query time, paid at
    # build time through MBR maintenance.
    assert out["R+t"]["pages"] == out["R+"]["pages"]
    assert out["R+t"]["point_bbox"] <= out["R+"]["point_bbox"]
    assert out["R+t"]["build_bbox"] > out["R+"]["build_bbox"]


def test_str_bulk_loading(benchmark, county_maps):
    charles = county_maps["charles"]

    def run():
        out = {}
        rng = random.Random(56)
        windows = random_windows(N_QUERIES, rng, area_fraction=0.001)

        for label in ("dynamic", "packed"):
            ctx = StorageContext.create()
            idx = RStarTree(ctx)
            ids = ctx.load_segments(charles.segments)
            before = ctx.counters.snapshot()
            if label == "dynamic":
                for sid in ids:
                    idx.insert(sid)
            else:
                bulk_load_str(idx, ids)
            build_reads = ctx.counters.since(before).disk_reads

            ctx.pool.clear()
            before = ctx.counters.snapshot()
            results = sum(len(window_query(idx, w)) for w in windows)
            delta = ctx.counters.since(before)
            out[label] = {
                "pages": idx.page_count(),
                "occupancy": idx.leaf_occupancy(),
                "build_reads": build_reads,
                "window_disk": delta.disk_reads / len(windows),
                "results": results,
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "extension_str_bulk.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    assert out["packed"]["results"] == out["dynamic"]["results"]
    assert out["packed"]["pages"] < out["dynamic"]["pages"]
    assert out["packed"]["build_reads"] <= out["dynamic"]["build_reads"]
    assert out["packed"]["occupancy"] > out["dynamic"]["occupancy"]


def test_hilbert_vs_morton_curve(benchmark, county_maps):
    baltimore = county_maps["baltimore"]

    def run():
        out = {}
        rng = random.Random(57)
        windows = random_windows(N_QUERIES, rng, area_fraction=0.001)
        for curve in ("morton", "hilbert"):
            built = build_structure("PMR", baltimore, curve=curve)
            built.ctx.pool.clear()
            before = built.ctx.counters.snapshot()
            results = sum(len(window_query(built.index, w)) for w in windows)
            delta = built.ctx.counters.since(before)
            out[curve] = {
                "window_disk": delta.disk_reads / len(windows),
                "window_bbox": delta.bbox_comps / len(windows),
                "results": results,
                "pages": built.index.page_count(),
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "extension_hilbert.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    assert out["hilbert"]["results"] == out["morton"]["results"]
    # Same buckets are examined either way; the curve only affects layout.
    assert out["hilbert"]["window_bbox"] == pytest.approx(
        out["morton"]["window_bbox"]
    )
    # Hilbert clustering should not cost more disk than Morton (allowing
    # a little noise at reduced scale).
    assert out["hilbert"]["window_disk"] <= out["morton"]["window_disk"] * 1.15