"""Figure 8: relative disk accesses (normalized against the PMR = 1).

Paper claims:

* "the PMR quadtree seemed to have a slight edge over the R-trees.
  However, the differences were not that great" -- normalized averages
  sit near (mostly above) 1 and within a small factor;
* "the R+-tree was usually better than the R*-tree" on the point-style
  queries (disjointness);
* the exception is the polygon query, where the R*-tree beats the
  R+-tree (compactness means the next point query's pages are more
  likely resident).
"""

from __future__ import annotations

import pytest

from repro.harness import format_normalized, normalized_ranges
from repro.harness.workloads import WORKLOAD_NAMES

from benchmarks.conftest import write_result


def _ranges(all_county_stats):
    return normalized_ranges(all_county_stats, "disk_accesses")


def test_figure8_reproduction(benchmark, all_county_stats):
    ranges = benchmark.pedantic(
        lambda: _ranges(all_county_stats), rounds=1, iterations=1
    )
    write_result(
        "figure8_disk.txt",
        format_normalized(ranges, "Figure 8: relative disk accesses"),
    )
    assert {r.structure for r in ranges} == {"R+", "R*"}


def test_pmr_has_slight_edge_overall(benchmark, all_county_stats):
    ranges = benchmark.pedantic(
        lambda: _ranges(all_county_stats), rounds=1, iterations=1
    )
    averages = [r.average for r in ranges]
    # Most normalized values are >= 1 (PMR at least as good)...
    at_least_one = sum(1 for a in averages if a >= 0.95)
    assert at_least_one >= 0.6 * len(averages), averages
    # ...but the differences are not huge (the paper's "comparable").
    assert max(averages) < 6, averages


def test_polygon_reversal_rstar_beats_rplus(benchmark, all_county_stats):
    ranges = benchmark.pedantic(
        lambda: _ranges(all_county_stats), rounds=1, iterations=1
    )
    by = {(r.structure, r.workload): r for r in ranges}
    for w in ("Polygon(2-stage)", "Polygon(1-stage)"):
        assert by[("R*", w)].average < by[("R+", w)].average, w


def test_rplus_usually_at_least_as_good_as_rstar_on_searches(
    benchmark, all_county_stats
):
    ranges = benchmark.pedantic(
        lambda: _ranges(all_county_stats), rounds=1, iterations=1
    )
    by = {(r.structure, r.workload): r for r in ranges}
    search_workloads = [w for w in WORKLOAD_NAMES if not w.startswith("Polygon")]
    # At reduced scale the R+/R* gap on the search queries is within a
    # ~15 % band (the paper: "the differences were not that great"); we
    # assert comparability rather than a strict ordering.
    wins = sum(
        1
        for w in search_workloads
        if by[("R+", w)].average <= by[("R*", w)].average * 1.15
    )
    assert wins >= len(search_workloads) - 1, {
        w: (by[("R+", w)].average, by[("R*", w)].average) for w in search_workloads
    }
