"""Service-layer benchmarks: concurrent serving and batch scheduling.

Two claims the service subsystem makes measurable:

* a 4-thread closed-loop TCP workload completes with zero errors, the
  per-session counters summing exactly to the shared pool's totals, and
  a non-trivial result-cache hit rate on a skewed workload;
* executing a shuffled query batch sorted by the Morton key of each
  query's centroid costs fewer buffer-pool misses than arrival order —
  on every structure.
"""

from __future__ import annotations

import random

from repro.harness import build_structure
from repro.service import BatchExecutor, QueryEngine, bench_serve

from benchmarks.conftest import SCALE, write_result


def test_bench_serve_four_threads(benchmark):
    report = benchmark.pedantic(
        lambda: bench_serve(
            county="cecil", scale=SCALE, structure="R*", threads=4,
            requests=200, seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    write_result(
        "service_bench.txt",
        "\n".join(
            [
                f"structure: {report.structure}",
                f"segments: {report.segments}",
                f"threads: {report.threads}",
                f"requests: {report.requests} errors: {report.errors}",
                f"throughput_qps: {report.throughput_qps:.0f}",
                f"latency_ms: {report.latency_ms}",
                f"cache: {report.cache}",
                f"batch_comparison: {report.batch_comparison}",
                f"counters_consistent: {report.counters_consistent}",
            ]
        ),
    )
    assert report.errors == 0
    assert report.counters_consistent
    assert report.batch_comparison["morton"] <= report.batch_comparison["arrival"]


def test_morton_batching_beats_arrival_everywhere(benchmark, county_maps):
    def run():
        cecil = county_maps["cecil"]
        rng = random.Random(5)
        requests = []
        for _ in range(200):
            seg = cecil.segments[rng.randrange(len(cecil))]
            requests.append({"op": "point", "x": seg.x1, "y": seg.y1})
        rng.shuffle(requests)
        out = {}
        for name in ("R*", "R+", "PMR"):
            engine = QueryEngine(build_structure(name, cecil).index)
            comparison = BatchExecutor(engine).compare_orders(requests)
            out[name] = {
                "arrival": comparison["arrival"].disk_accesses,
                "morton": comparison["morton"].disk_accesses,
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "service_batch_order.txt",
        "\n".join(f"{k}: {v}" for k, v in out.items()),
    )
    for name, row in out.items():
        assert row["morton"] < row["arrival"], name
