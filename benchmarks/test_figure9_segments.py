"""Figure 9: relative segment comparisons (normalized against the PMR = 1).

Paper claims:

* comparable across structures "with the exception of the range and
  nearest line queries";
* the R-trees' advantage on point queries is small in absolute terms;
* the nearest-line query strongly favours the PMR (its sorted buckets
  prune the search space), for both query-point models;
* the range query favours the R-trees (leaf MBRs prune candidates the
  PMR must fetch).
"""

from __future__ import annotations

import pytest

from repro.harness import format_normalized, normalized_ranges

from benchmarks.conftest import write_result


def _ranges(all_county_stats):
    return normalized_ranges(all_county_stats, "segment_comps")


def test_figure9_reproduction(benchmark, all_county_stats):
    ranges = benchmark.pedantic(
        lambda: _ranges(all_county_stats), rounds=1, iterations=1
    )
    write_result(
        "figure9_segments.txt",
        format_normalized(ranges, "Figure 9: relative segment comparisons"),
    )
    assert ranges


def test_nearest_line_strongly_favours_pmr(benchmark, all_county_stats):
    ranges = benchmark.pedantic(
        lambda: _ranges(all_county_stats), rounds=1, iterations=1
    )
    by = {(r.structure, r.workload): r for r in ranges}
    for s in ("R+", "R*"):
        for w in ("Nearest(2-stage)", "Nearest(1-stage)"):
            assert by[(s, w)].average > 2.0, (s, w, by[(s, w)].average)


def test_range_query_favours_rtrees(benchmark, all_county_stats):
    ranges = benchmark.pedantic(
        lambda: _ranges(all_county_stats), rounds=1, iterations=1
    )
    by = {(r.structure, r.workload): r for r in ranges}
    for s in ("R+", "R*"):
        assert by[(s, "Range")].average < 1.0, (s, by[(s, "Range")].average)


def test_point_queries_mild_rtree_advantage(benchmark, all_county_stats):
    ranges = benchmark.pedantic(
        lambda: _ranges(all_county_stats), rounds=1, iterations=1
    )
    by = {(r.structure, r.workload): r for r in ranges}
    for s in ("R+", "R*"):
        for w in ("Point1", "Point2"):
            avg = by[(s, w)].average
            # Better than PMR, but only mildly (paper: "relatively small").
            assert 0.4 <= avg <= 1.1, (s, w, avg)


def test_polygon_comparable_across_structures(benchmark, all_county_stats):
    ranges = benchmark.pedantic(
        lambda: _ranges(all_county_stats), rounds=1, iterations=1
    )
    by = {(r.structure, r.workload): r for r in ranges}
    for s in ("R+", "R*"):
        for w in ("Polygon(2-stage)", "Polygon(1-stage)"):
            assert 0.5 <= by[(s, w)].average <= 1.5, (s, w, by[(s, w)].average)
