"""Robustness: the headline orderings must not depend on the query seed.

The paper draws one random batch of 1000 queries; we check that the
claims the other benchmarks assert once also hold across independently
seeded query batches (same built structures, fresh random queries).
"""

from __future__ import annotations

import pytest

from repro.harness.query_stats import map_query_stats

from benchmarks.conftest import N_QUERIES, SCALE, write_result

SEEDS = (1992, 4711, 99991)

_cache = {}


def _runs(county_maps):
    if "runs" not in _cache:
        _cache["runs"] = {
            seed: map_query_stats(
                county_maps["charles"],
                n_queries=max(50, N_QUERIES // 2),
                seed=seed,
                window_area_fraction=min(0.0001 / SCALE, 0.01),
            )
            for seed in SEEDS
        }
    return _cache["runs"]


def test_orderings_stable_across_seeds(benchmark, county_maps):
    runs = benchmark.pedantic(lambda: _runs(county_maps), rounds=1, iterations=1)
    lines = []
    for seed, stats in runs.items():
        pmr, rplus, rstar = stats["PMR"], stats["R+"], stats["R*"]
        lines.append(
            f"seed {seed}: point1 disk {pmr['Point1'].disk_accesses:.2f}/"
            f"{rplus['Point1'].disk_accesses:.2f}/{rstar['Point1'].disk_accesses:.2f}  "
            f"nearest segcomps {pmr['Nearest(2-stage)'].segment_comps:.1f}/"
            f"{rplus['Nearest(2-stage)'].segment_comps:.1f}/"
            f"{rstar['Nearest(2-stage)'].segment_comps:.1f}"
        )

        # The three most load-bearing claims, per seed:
        # 1. PMR bucket comps stay exactly 1 / 2 for the point queries.
        assert pmr["Point1"].bbox_comps == pytest.approx(1.0), seed
        assert pmr["Point2"].bbox_comps == pytest.approx(2.0), seed
        # 2. Nearest-line segment comparisons strongly favour the PMR.
        assert (
            pmr["Nearest(2-stage)"].segment_comps * 2
            < rplus["Nearest(2-stage)"].segment_comps
        ), seed
        # 3. Range segment comparisons favour the R-trees.
        assert pmr["Range"].segment_comps > rplus["Range"].segment_comps, seed
        # 4. Polygon disk: R* at least matches R+ (the reversal).
        assert (
            rstar["Polygon(2-stage)"].disk_accesses
            <= rplus["Polygon(2-stage)"].disk_accesses
        ), seed

    write_result("seed_robustness.txt", "\n".join(lines))


def test_absolute_values_stable_across_seeds(benchmark, county_maps):
    """Per-query averages should agree within ~35 % between seeds (they
    are averages over >= 50 random queries on the same structure)."""
    runs = benchmark.pedantic(lambda: _runs(county_maps), rounds=1, iterations=1)
    baseline = runs[SEEDS[0]]
    for seed in SEEDS[1:]:
        for structure in ("PMR", "R+", "R*"):
            for workload in ("Point1", "Range", "Nearest(2-stage)"):
                a = baseline[structure][workload].disk_accesses
                b = runs[seed][structure][workload].disk_accesses
                assert b == pytest.approx(a, rel=0.35), (seed, structure, workload)