"""Table 2: per-query metrics for Charles county (the rural extreme).

Shape claims from the paper's Table 2 and Section 6 discussion:

* PMR bucket computations are exactly 1 per point query and 2 per
  query-2, and two orders of magnitude below the R-trees' bounding box
  computations everywhere;
* point queries: the R-trees do slightly fewer segment comparisons than
  the PMR (their leaf MBRs filter candidates), the PMR needs the fewest
  disk accesses;
* nearest-line: the PMR does far fewer segment comparisons (its buckets
  are small and sorted in space), and for data-correlated (2-stage)
  points the disjoint structures win on disk accesses;
* range query: the PMR does *more* segment comparisons (a bucket's whole
  contents are candidates);
* polygon query: the R*-tree beats the R+-tree on disk accesses despite
  losing the individual point queries -- compactness wins on a long
  sequence of localized queries.
"""

from __future__ import annotations

import pytest

from repro.harness import format_table2
from repro.harness.query_stats import map_query_stats

from benchmarks.conftest import N_QUERIES, SCALE, write_result

_cache = {}


def _charles_stats(county_maps):
    if "stats" not in _cache:
        _cache["stats"] = map_query_stats(
            county_maps["charles"],
            n_queries=N_QUERIES,
            window_area_fraction=min(0.0001 / SCALE, 0.01),
        )
    return _cache["stats"]


def test_table2_reproduction(benchmark, county_maps):
    stats = benchmark.pedantic(
        lambda: _charles_stats(county_maps), rounds=1, iterations=1
    )
    write_result("table2_charles.txt", format_table2(stats, county="charles"))

    pmr, rplus, rstar = stats["PMR"], stats["R+"], stats["R*"]

    # PMR bucket computations: exactly one bucket per point query, two
    # for query 2 (it is two point queries).
    assert pmr["Point1"].bbox_comps == pytest.approx(1.0)
    assert pmr["Point2"].bbox_comps == pytest.approx(2.0)

    # Bucket vs bounding-box computations: far apart on every workload
    # (the paper's Charles ratios range from ~11x on the range query to
    # ~100x on the point queries).
    for w in pmr:
        assert pmr[w].bbox_comps * 8 < rstar[w].bbox_comps, w
        assert pmr[w].bbox_comps * 8 < rplus[w].bbox_comps, w


def test_point_queries_shape(benchmark, county_maps):
    stats = benchmark.pedantic(
        lambda: _charles_stats(county_maps), rounds=1, iterations=1
    )
    pmr, rplus, rstar = stats["PMR"], stats["R+"], stats["R*"]

    # R-tree leaf MBRs filter candidates: fewer segment comparisons.
    assert rplus["Point1"].segment_comps <= pmr["Point1"].segment_comps
    assert rstar["Point1"].segment_comps <= pmr["Point1"].segment_comps

    # Disk accesses: PMR has the edge (120 tuples per page vs 50).
    assert pmr["Point1"].disk_accesses <= rplus["Point1"].disk_accesses
    assert pmr["Point1"].disk_accesses <= rstar["Point1"].disk_accesses

    # Point2 costs roughly twice Point1 for every structure.
    for s in stats.values():
        ratio = s["Point2"].segment_comps / s["Point1"].segment_comps
        assert 1.3 <= ratio <= 3.0, (s["Point1"], s["Point2"])


def test_nearest_line_shape(benchmark, county_maps):
    stats = benchmark.pedantic(
        lambda: _charles_stats(county_maps), rounds=1, iterations=1
    )
    pmr, rplus, rstar = stats["PMR"], stats["R+"], stats["R*"]

    for w in ("Nearest(2-stage)", "Nearest(1-stage)"):
        # The PMR's small sorted buckets prune the most segments.
        assert pmr[w].segment_comps * 2 < rplus[w].segment_comps, w
        assert pmr[w].segment_comps * 2 < rstar[w].segment_comps, w

    # Data-correlated points: the disjoint decompositions win on disk.
    w = "Nearest(2-stage)"
    assert pmr[w].disk_accesses < rstar[w].disk_accesses
    assert rplus[w].disk_accesses <= rstar[w].disk_accesses * 1.15


def test_range_query_shape(benchmark, county_maps):
    stats = benchmark.pedantic(
        lambda: _charles_stats(county_maps), rounds=1, iterations=1
    )
    pmr, rplus, rstar = stats["PMR"], stats["R+"], stats["R*"]

    # The PMR pays more segment comparisons on windows (whole buckets are
    # candidates); the R-trees' MBRs prune.
    assert pmr["Range"].segment_comps > rplus["Range"].segment_comps
    assert pmr["Range"].segment_comps > rstar["Range"].segment_comps
    # Disk accesses stay comparable across all three.
    values = [s["Range"].disk_accesses for s in stats.values()]
    assert max(values) <= 2.0 * min(values)


def test_polygon_query_shape(benchmark, county_maps):
    stats = benchmark.pedantic(
        lambda: _charles_stats(county_maps), rounds=1, iterations=1
    )
    pmr, rplus, rstar = stats["PMR"], stats["R+"], stats["R*"]

    for w in ("Polygon(2-stage)", "Polygon(1-stage)"):
        # The paper's surprise: on the polygon traversal the compact
        # R*-tree beats the R+-tree even though the R+-tree wins the
        # constituent point queries (locality beats disjointness).
        assert rstar[w].disk_accesses < rplus[w].disk_accesses, w
        # PMR needs the fewest disk accesses of all.
        assert pmr[w].disk_accesses <= rstar[w].disk_accesses * 1.1, w
