"""The Concluding Remarks occupancy experiment.

Paper claims (1 KiB pages):

* average R*-tree page occupancy ~36 segments, R+-tree ~32 (the R+-tree
  is lower: duplicated entries and cascade splits);
* a PMR bucket with splitting threshold x holds ~0.5x segments on
  average;
* a threshold of roughly 64 would equalize average bucket occupancy with
  average R-tree page occupancy;
* raising the threshold lowers the PMR's storage use.
"""

from __future__ import annotations

import pytest

from repro.harness import format_occupancy, occupancy_report, pmr_threshold_sweep

from benchmarks.conftest import write_result

THRESHOLDS = (2, 4, 8, 16, 32, 64)

_cache = {}


def _report(county_maps):
    if "report" not in _cache:
        _cache["report"] = occupancy_report(
            map_data=county_maps["baltimore"], thresholds=THRESHOLDS
        )
    return _cache["report"]


def test_occupancy_reproduction(benchmark, county_maps):
    report = benchmark.pedantic(lambda: _report(county_maps), rounds=1, iterations=1)
    write_result("occupancy.txt", format_occupancy(report))

    # R-tree page occupancy lands in the paper's ballpark (32-36 of 50).
    assert 25 <= report.rstar_leaf_occupancy <= 45
    assert 20 <= report.rplus_leaf_occupancy <= 45
    # The R+-tree runs less full than the R*-tree.
    assert report.rplus_leaf_occupancy <= report.rstar_leaf_occupancy + 2


def test_bucket_occupancy_about_half_threshold(benchmark, county_maps):
    report = benchmark.pedantic(lambda: _report(county_maps), rounds=1, iterations=1)
    for threshold in (8, 16, 32, 64):
        occ = report.pmr_bucket_occupancy[threshold]
        ratio = occ / threshold
        assert 0.25 <= ratio <= 1.0, (threshold, occ)


def test_equalizing_threshold_is_large(benchmark, county_maps):
    """The paper estimates ~64 equalizes bucket and page occupancy."""
    report = benchmark.pedantic(lambda: _report(county_maps), rounds=1, iterations=1)
    assert report.equalizing_threshold() >= 32


def test_storage_decreases_with_threshold(benchmark, county_maps):
    rows = benchmark.pedantic(
        lambda: pmr_threshold_sweep(county_maps["baltimore"], thresholds=(2, 8, 32)),
        rounds=1,
        iterations=1,
    )
    sizes = [r["size_kbytes"] for r in rows]
    assert sizes[0] >= sizes[1] >= sizes[2], sizes
    buckets = [r["buckets"] for r in rows]
    assert buckets[0] > buckets[2]
