"""Figure 7: relative bounding box computations (R+ normalized vs R*).

The figure normalizes the R+-tree against the R*-tree because the PMR's
bucket computations are about two orders of magnitude smaller. Claims:

* the R+-tree performs fewer (or comparable) bounding box computations
  than the R*-tree on almost every workload (disjointness prunes paths);
* the PMR quadtree's bucket computations are so far below both that
  normalized plotting is not feasible.
"""

from __future__ import annotations

import pytest

from repro.harness import format_normalized, normalized_ranges
from repro.harness.workloads import WORKLOAD_NAMES

from benchmarks.conftest import write_result


def test_figure7_reproduction(benchmark, all_county_stats):
    ranges = benchmark.pedantic(
        lambda: normalized_ranges(
            all_county_stats, "bbox_comps", structures=("R+",), baseline="R*"
        ),
        rounds=1,
        iterations=1,
    )
    write_result(
        "figure7_bbox.txt",
        format_normalized(
            ranges, "Figure 7: relative bounding box computations", baseline="R*"
        ),
    )

    by_workload = {r.workload: r for r in ranges}
    assert set(by_workload) == set(WORKLOAD_NAMES)

    # R+ <= R* on average for most workloads (disjointness prunes).
    better = sum(1 for r in ranges if r.average <= 1.05)
    assert better >= len(ranges) - 2, [(r.workload, r.average) for r in ranges]


def test_pmr_bucket_comps_not_plottable(benchmark, all_county_stats):
    """The paper's stated reason for excluding the PMR from Figure 7."""

    def ratios():
        out = []
        for county, by_structure in all_county_stats.items():
            for w in WORKLOAD_NAMES:
                pmr = by_structure["PMR"][w].bbox_comps
                rstar = by_structure["R*"][w].bbox_comps
                if pmr > 0:
                    out.append(rstar / pmr)
        return out

    values = benchmark.pedantic(ratios, rounds=1, iterations=1)
    assert values
    avg = sum(values) / len(values)
    assert avg > 20, f"average R*/PMR bbox ratio only {avg:.1f}"
    assert min(values) > 5
