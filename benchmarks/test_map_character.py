"""Section 6's map-character observations.

"Polygons in urban areas usually consisted of 5-6 line segments
corresponding to a city block. On the other hand, in rural areas ...
polygons have much higher line segment counts. For example ... the
average polygon size that we encountered was 19 in Baltimore county (an
urban and suburban mix) while it was 132 in Charles county (rural)."

We assert the ordering and the rough magnitude of the ratio on the
synthetic counties; the absolute sizes depend on the generator's lattice
density and are recorded rather than pinned.
"""

from __future__ import annotations

import pytest

from repro.harness import polygon_size_survey

from benchmarks.conftest import write_result

_cache = {}


def _surveys(county_maps):
    if "surveys" not in _cache:
        _cache["surveys"] = {
            name: polygon_size_survey(county_maps[name], samples=40)
            for name in ("baltimore", "anne_arundel", "charles", "garrett")
        }
    return _cache["surveys"]


def test_polygon_size_survey(benchmark, county_maps):
    surveys = benchmark.pedantic(
        lambda: _surveys(county_maps), rounds=1, iterations=1
    )
    write_result(
        "polygon_sizes.txt", "\n".join(str(s) for s in surveys.values())
    )
    for s in surveys.values():
        assert s.closed_inner_faces > 0, s


def test_rural_polygons_much_larger_than_urban(benchmark, county_maps):
    surveys = benchmark.pedantic(
        lambda: _surveys(county_maps), rounds=1, iterations=1
    )
    urban = surveys["baltimore"].average_size
    rural = surveys["charles"].average_size
    # Paper ratio 132/19 ~ 7x; we require a clear multiple.
    assert rural > 2.5 * urban, (urban, rural)


def test_urban_polygons_are_blocks(benchmark, county_maps):
    surveys = benchmark.pedantic(
        lambda: _surveys(county_maps), rounds=1, iterations=1
    )
    # City blocks: small polygons, a handful of edges on average.
    assert surveys["baltimore"].average_size < 25


def test_exact_face_inventory_agrees_with_sampling(benchmark, county_maps):
    """The complete polygonization (Euler-checked) must show the same
    urban << rural character the sampled survey reports. Note the two
    averages weight faces differently -- sampling is area-weighted (big
    faces catch more query points), the inventory is per-face -- so we
    compare directions, not values."""
    from repro.data.faces import extract_faces

    def run():
        out = {}
        for name in ("baltimore", "charles"):
            fs = extract_faces(county_maps[name].segments)
            assert fs.euler_consistent(), name
            out[name] = {
                "inner_faces": len(fs.inner_faces()),
                "avg_size": fs.average_inner_size(),
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "face_inventory.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    # Urban networks mesh into many small blocks; rural ones into fewer,
    # larger polygons.
    assert out["baltimore"]["inner_faces"] > out["charles"]["inner_faces"]
    assert out["baltimore"]["avg_size"] < out["charles"]["avg_size"]
