"""Table 1: data structure building statistics.

Paper claims verified here:

* storage: the R+-tree uses 26-43 % more than the R*-tree and the PMR
  quadtree 13-43 % more (we assert the R+-tree is the largest-or-equal
  and all three are within ~2.5x of each other);
* build cpu time: R+ fastest; PMR next; R* several times R+ (7.8-9.1x on
  the paper's hardware -- we assert a factor of >= 2);
* build disk accesses: all three comparable, PMR fewest on most rural
  maps.

Every test takes the ``benchmark`` fixture so the whole reproduction runs
under ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.harness import format_table1
from repro.harness.build_stats import build_row

from benchmarks.conftest import write_result

STRUCTURES = ("R*", "R+", "PMR")

_rows_cache = {}


def _table1_rows(county_maps):
    if "rows" not in _rows_cache:
        _rows_cache["rows"] = [
            build_row(m, structures=STRUCTURES) for m in county_maps.values()
        ]
    return _rows_cache["rows"]


def test_table1_single_county_build(benchmark, county_maps):
    """Times one full-county build of each structure (Charles county)."""
    charles = county_maps["charles"]
    row = benchmark.pedantic(
        lambda: build_row(charles, structures=STRUCTURES), rounds=1, iterations=1
    )

    # Storage: R+ needs the most space (duplicated entries); everything
    # stays within the same order of magnitude.
    assert row.size_kbytes["R+"] > row.size_kbytes["R*"]
    assert row.size_kbytes["PMR"] < 2.5 * row.size_kbytes["R*"]
    assert row.size_kbytes["R+"] < 2.5 * row.size_kbytes["R*"]

    # Build time: R+ and PMR close together (paper: PMR is 1.5-1.7x R+;
    # in our Python implementations they land within ~1.5x either way),
    # with the R*-tree slower than both by a clear factor.
    fast = min(row.cpu_seconds["R+"], row.cpu_seconds["PMR"])
    slow = max(row.cpu_seconds["R+"], row.cpu_seconds["PMR"])
    assert slow <= 2.0 * fast
    assert row.cpu_seconds["R*"] >= 2 * slow

    # Disk accesses comparable (within ~2.5x of each other).
    accesses = row.disk_accesses
    assert max(accesses.values()) <= 2.5 * min(accesses.values())


def test_table1_all_counties(benchmark, county_maps):
    """Regenerates all six Table 1 rows, records them, checks each row."""
    rows = benchmark.pedantic(
        lambda: _table1_rows(county_maps), rounds=1, iterations=1
    )
    write_result("table1_build.txt", format_table1(rows, structures=STRUCTURES))

    for row in rows:
        assert row.size_kbytes["R+"] > row.size_kbytes["R*"], row.county
        assert row.cpu_seconds["R*"] > row.cpu_seconds["R+"], row.county


def test_table1_build_accesses_comparable(benchmark, county_maps):
    """Paper: "The disk accesses for all three structures were also
    comparable" (the PMR was fewest on 5 of 6 maps by modest margins).
    At reduced scale the per-county ordering is noise-level, so we
    assert the robust part of the claim: on every county the three
    structures' build accesses stay within a 2.5x band."""
    rows = benchmark.pedantic(
        lambda: _table1_rows(county_maps), rounds=1, iterations=1
    )
    for r in rows:
        values = list(r.disk_accesses.values())
        assert max(values) <= 2.5 * min(values), (r.county, r.disk_accesses)
