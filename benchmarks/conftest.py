"""Shared configuration for the paper-reproduction benchmarks.

Scale knobs (environment variables):

* ``REPRO_SCALE``   -- fraction of the paper's ~50 000 segments per county
  (default 0.05, i.e. ~2 500 segments). ``REPRO_SCALE=1`` runs paper-scale
  maps; expect tens of minutes in pure Python.
* ``REPRO_QUERIES`` -- queries per workload (default 100; the paper ran
  1000).

Each benchmark writes the table/figure it reproduces to
``benchmarks/results/`` and asserts the paper's *shape* claims (who wins,
by roughly what factor); absolute values differ from the 1992 hardware by
construction.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.data import COUNTY_NAMES, generate_county
from repro.harness.normalized import collect_all_counties

SCALE = float(os.environ.get("REPRO_SCALE", "0.05"))
N_QUERIES = int(os.environ.get("REPRO_QUERIES", "100"))

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    header = f"# scale={SCALE} queries={N_QUERIES}\n"
    path.write_text(header + text + "\n")
    return path


@pytest.fixture(scope="session")
def county_maps() -> Dict[str, "MapData"]:
    """All six synthetic counties at the configured scale."""
    return {name: generate_county(name, scale=SCALE) for name in COUNTY_NAMES}


@pytest.fixture(scope="session")
def all_county_stats():
    """Query stats for every county and structure (Figures 7-9 input).

    Collected once per session; the three figure benchmarks reduce it
    along different metrics.
    """
    return collect_all_counties(scale=SCALE, n_queries=N_QUERIES)
