"""Durability benchmarks: group-commit write throughput and recovery time.

Two claims the WAL subsystem makes measurable:

* group commit amortizes the dominant durability cost -- with a batch of
  32 the same mutation stream issues a fraction of the fsyncs that
  commit-per-record does, at equal logical state;
* recovery time grows with the *suffix* of the log past the checkpoint,
  not with database size: recovering a freshly checkpointed store
  replays exactly the post-checkpoint records (asserted through the
  ``replayed_records`` counter), and the space-filling-curve bulk apply
  keeps a long-log recovery queryable-correct.
"""

from __future__ import annotations

import shutil

from repro.geometry import Segment
from repro.service.engine import QueryEngine
from repro.storage import StorageContext
from repro.wal import DurableStore, open_durable
from repro.wal.crashtest import base_map, make_index

from benchmarks.conftest import write_result

N_MUTATIONS = 200


def _fresh_store(root, group_commit=1):
    ctx = StorageContext.create()
    index = make_index("R*", ctx)
    for seg_id in ctx.load_segments(base_map()):
        index.insert(seg_id)
    return DurableStore.create(root, index, group_commit=group_commit)


def _mutation_stream(n=N_MUTATIONS):
    return [
        Segment(
            10 + (i * 37) % 900,
            10 + (i * 53) % 900,
            10 + (i * 37) % 900 + 40,
            10 + (i * 53) % 900 + 30,
        )
        for i in range(n)
    ]


def test_group_commit_write_throughput(benchmark, tmp_path):
    segments = _mutation_stream()

    def run():
        out = {}
        for batch in (1, 32):
            root = tmp_path / f"store-gc{batch}"
            shutil.rmtree(root, ignore_errors=True)
            store = _fresh_store(root, group_commit=batch)
            engine = QueryEngine(store.index, store=store)
            for seg in segments:
                engine.insert_segment(seg)
            stats = store.stats()
            store.close()
            out[batch] = {
                "log_appends": stats["log_appends"],
                "fsyncs": stats["fsyncs"],
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "wal_group_commit.txt",
        "\n".join(f"group_commit={k}: {v}" for k, v in out.items()),
    )
    assert out[1]["log_appends"] == out[32]["log_appends"] == N_MUTATIONS
    # Commit-per-record fsyncs once per mutation; a batch of 32 fsyncs
    # ~N/32 times plus the final close-time sync.
    assert out[1]["fsyncs"] >= N_MUTATIONS
    assert out[32]["fsyncs"] <= N_MUTATIONS // 32 + 2


def test_recovery_replays_only_the_suffix(benchmark, tmp_path):
    segments = _mutation_stream()

    def build(root, checkpoint_after):
        shutil.rmtree(root, ignore_errors=True)
        store = _fresh_store(root, group_commit=32)
        engine = QueryEngine(store.index, store=store)
        for i, seg in enumerate(segments):
            engine.insert_segment(seg)
            if i + 1 == checkpoint_after:
                engine.checkpoint()
        store.close()

    long_root = tmp_path / "store-long"  # never checkpointed: full replay
    short_root = tmp_path / "store-short"  # checkpointed near the end
    build(long_root, checkpoint_after=0)
    build(short_root, checkpoint_after=N_MUTATIONS - 10)

    def run():
        out = {}
        for name, root in (("long", long_root), ("short", short_root)):
            store = open_durable(root)
            out[name] = {
                "replayed_records": store.replayed_records,
                "segments": len(store.index.ctx.segments),
            }
            store.close()
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "wal_recovery.txt",
        "\n".join(f"{k}: {v}" for k, v in out.items()),
    )
    # Same final state; wildly different recovery work.
    assert out["long"]["segments"] == out["short"]["segments"]
    assert out["long"]["replayed_records"] == N_MUTATIONS
    assert out["short"]["replayed_records"] == 10
