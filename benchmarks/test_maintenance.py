"""Maintenance workloads: the price of disjointness under deletion.

Section 2: "The price paid for the disjointness is that in order to
determine the area covered by a particular object, we have to retrieve
all the cells that it occupies. This price is also paid when we want to
delete an object. Fortunately, deletion is not so common."

This benchmark deletes a fifth of a county from each structure and
measures the per-deletion disk activity. The R*-tree removes exactly one
entry (plus condensation); the R+-tree and PMR quadtree must chase every
duplicated copy; the PMR additionally merges blocks back.
"""

from __future__ import annotations

import random

import pytest

from repro.harness import build_structure

from benchmarks.conftest import write_result

_cache = {}


def _run(county_maps):
    if "out" in _cache:
        return _cache["out"]
    cecil = county_maps["cecil"]
    out = {}
    for name in ("R*", "R+", "PMR"):
        built = build_structure(name, cecil)
        rng = random.Random(42)
        victims = rng.sample(range(len(cecil)), k=len(cecil) // 5)

        built.ctx.pool.clear()
        before = built.ctx.counters.snapshot()
        for seg_id in victims:
            built.index.delete(seg_id)
        delta = built.ctx.counters.since(before)

        built.index.check_invariants()
        out[name] = {
            "deletions": len(victims),
            "disk_per_delete": delta.disk_reads / len(victims),
            "segcomps_per_delete": delta.segment_comps / len(victims),
            "entries_left": built.index.entry_count(),
        }
    _cache["out"] = out
    return out


def test_deletion_workload(benchmark, county_maps):
    out = benchmark.pedantic(lambda: _run(county_maps), rounds=1, iterations=1)
    write_result(
        "maintenance_delete.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    for name, row in out.items():
        assert row["disk_per_delete"] > 0, name


def test_structures_survive_bulk_deletion(benchmark, county_maps):
    """check_invariants already ran inside _run; assert the bookkeeping."""
    out = benchmark.pedantic(lambda: _run(county_maps), rounds=1, iterations=1)
    n = len(county_maps["cecil"])
    expected_left = n - n // 5
    assert out["R*"]["entries_left"] == expected_left
    # The disjoint structures hold >= one entry per remaining segment.
    assert out["R+"]["entries_left"] >= expected_left
    assert out["PMR"]["entries_left"] >= expected_left


def test_disjointness_deletion_price(benchmark, county_maps):
    """The Section 2 claim: deleting from a disjoint structure costs more
    (every copy must be found and removed; PMR also merges)."""
    out = benchmark.pedantic(lambda: _run(county_maps), rounds=1, iterations=1)
    assert (
        out["PMR"]["disk_per_delete"] > out["R*"]["disk_per_delete"] * 0.8
    ), out
    # Segment-table activity: the quadtree's merge checks re-fetch
    # geometry; the R*-tree touches each deleted segment once.
    assert out["PMR"]["segcomps_per_delete"] >= out["R*"]["segcomps_per_delete"], out
