"""Ablations over the design choices DESIGN.md calls out.

Not in the paper's evaluation, but each isolates a decision the paper
discusses in prose:

* R-tree split policy (linear / quadratic / R*): Section 3's split
  discussion;
* buffer replacement policy (LRU / FIFO / Clock): Section 4 fixes LRU;
* the PMR per-segment-bounding-box variant: Section 6's 3-tuple
  discussion ("storage costs would be higher ... may not be worthwhile");
* the pure k-d-B-tree versus the hybrid: Section 3's claim that point
  searches fail earlier with leaf MBRs;
* the uniform grid versus the PMR quadtree on skewed data: Section 2.
"""

from __future__ import annotations

import random

import pytest

from repro.core import GuttmanRTree, KDBTree, PMRQuadtree, RPlusTree, UniformGrid
from repro.core.queries import nearest_segment, segments_at_point, window_query
from repro.core.rtree import RStarTree, split_linear, split_quadratic
from repro.data.query_points import random_endpoint_queries, random_windows
from repro.harness import build_structure
from repro.storage import StorageContext
from repro.storage.policies import ClockPolicy, FIFOPolicy, LRUPolicy

from benchmarks.conftest import N_QUERIES, write_result


def _build(county_maps, factory):
    ctx = StorageContext.create()
    idx = factory(ctx)
    for sid in ctx.load_segments(county_maps["baltimore"].segments):
        idx.insert(sid)
    return idx


def test_split_policy_ablation(benchmark, county_maps):
    """R* split yields equal-or-better query disk behaviour than
    Guttman's linear and quadratic splits on window queries."""

    def run():
        out = {}
        for name, factory in (
            ("linear", lambda ctx: GuttmanRTree(ctx, split=split_linear)),
            ("quadratic", lambda ctx: GuttmanRTree(ctx, split=split_quadratic)),
            ("rstar", lambda ctx: RStarTree(ctx)),
        ):
            idx = _build(county_maps, factory)
            rng = random.Random(77)
            wins = random_windows(N_QUERIES, rng, area_fraction=0.002)
            idx.ctx.pool.clear()
            before = idx.ctx.counters.snapshot()
            for w in wins:
                window_query(idx, w)
            delta = idx.ctx.counters.since(before)
            out[name] = {
                "pages": idx.page_count(),
                "window_disk": delta.disk_reads / len(wins),
                "window_bbox": delta.bbox_comps / len(wins),
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_split_policy.txt",
        "\n".join(f"{k}: {v}" for k, v in out.items()),
    )
    # The R* split prunes at least as well as linear on window searches.
    assert out["rstar"]["window_bbox"] <= out["linear"]["window_bbox"] * 1.1
    # And produces a tree no larger than quadratic's by a wide margin.
    assert out["rstar"]["pages"] <= out["quadratic"]["pages"] * 1.5


def test_buffer_policy_ablation(benchmark, county_maps):
    """LRU (the paper's choice) beats FIFO and is close to Clock on
    build disk accesses."""

    def run():
        out = {}
        for name, policy_cls in (
            ("LRU", LRUPolicy),
            ("FIFO", FIFOPolicy),
            ("Clock", ClockPolicy),
        ):
            built = build_structure(
                "PMR", county_maps["baltimore"], policy=policy_cls()
            )
            out[name] = built.build_metrics.disk_reads
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_buffer_policy.txt",
        "\n".join(f"{k}: {v}" for k, v in out.items()),
    )
    assert out["LRU"] <= out["FIFO"] * 1.05, out


def test_pmr_bbox_variant_ablation(benchmark, county_maps):
    """Section 6: storing a bounding box per PMR tuple cuts segment
    comparisons at a storage cost; the paper doubts it is worthwhile."""

    def run():
        plain = build_structure("PMR", county_maps["baltimore"])
        variant = build_structure(
            "PMR", county_maps["baltimore"], store_bboxes=True
        )
        rng = random.Random(78)
        queries = random_endpoint_queries(
            N_QUERIES, rng, county_maps["baltimore"]
        )
        out = {}
        for label, built in (("plain", plain), ("with_bboxes", variant)):
            built.ctx.pool.clear()
            before = built.ctx.counters.snapshot()
            for p, _ in queries:
                segments_at_point(built.index, p)
            delta = built.ctx.counters.since(before)
            out[label] = {
                "size_kb": built.size_kbytes,
                "segment_comps": delta.segment_comps / len(queries),
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_pmr_bbox.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    assert out["with_bboxes"]["segment_comps"] <= out["plain"]["segment_comps"]
    assert out["with_bboxes"]["size_kb"] >= out["plain"]["size_kb"]


def test_kdb_vs_hybrid_ablation(benchmark, county_maps):
    """Section 3: the hybrid's leaf MBRs make point searches fail earlier
    than in the pure k-d-B-tree; building and storage match."""

    def run():
        out = {}
        rng = random.Random(79)
        queries = random_endpoint_queries(
            N_QUERIES, rng, county_maps["baltimore"]
        )
        for name, factory in (
            ("hybrid_R+", lambda ctx: RPlusTree(ctx)),
            ("pure_kdB", lambda ctx: KDBTree(ctx)),
        ):
            idx = _build(county_maps, factory)
            idx.ctx.pool.clear()
            before = idx.ctx.counters.snapshot()
            for p, _ in queries:
                segments_at_point(idx, p)
            delta = idx.ctx.counters.since(before)
            out[name] = {
                "pages": idx.page_count(),
                "segment_comps": delta.segment_comps / len(queries),
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_kdb.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    assert out["pure_kdB"]["pages"] == out["hybrid_R+"]["pages"]
    assert out["pure_kdB"]["segment_comps"] > out["hybrid_R+"]["segment_comps"]


def test_rplus_split_rule_ablation(benchmark, county_maps):
    """Section 3 leaves the R+ split policy open; the paper's cut-
    minimizing rule stores fewer duplicated entries than a k-d-B median
    split on the same data."""

    def run():
        out = {}
        for rule in ("min_cut", "median"):
            built = build_structure("R+", county_maps["baltimore"], split_rule=rule)
            out[rule] = {
                "entries": built.index.entry_count(),
                "pages": built.index.page_count(),
                "size_kb": built.size_kbytes,
                "build_s": built.build_seconds,
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_rplus_split.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    # The robust effect is duplication: fewer cut segments, fewer entries.
    # (Page counts can go either way -- median splits are perfectly even
    # and pack fuller pages despite storing more entries.)
    assert out["min_cut"]["entries"] <= out["median"]["entries"]


def test_uniform_grid_vs_pmr_on_skewed_data(benchmark, county_maps):
    """Section 2: the uniform grid suits uniform data; quadtrees adapt to
    the skewed distributions real maps have."""

    def run():
        # Baltimore is the most skewed county (dense core, sparse fringe).
        pmr = build_structure("PMR", county_maps["baltimore"])
        grid = build_structure("grid", county_maps["baltimore"], granularity=32)
        rng = random.Random(80)
        p = random_endpoint_queries(N_QUERIES, rng, county_maps["baltimore"])
        out = {}
        for label, built in (("PMR", pmr), ("grid", grid)):
            built.ctx.pool.clear()
            before = built.ctx.counters.snapshot()
            for point, _ in p:
                nearest_segment(built.index, point)
            delta = built.ctx.counters.since(before)
            out[label] = {
                "size_kb": built.size_kbytes,
                "nn_segment_comps": delta.segment_comps / len(p),
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_grid.txt", "\n".join(f"{k}: {v}" for k, v in out.items())
    )
    # The grid's fixed cells hold many segments in the dense core, so its
    # nearest-neighbour search compares more segments than the PMR's
    # adaptive buckets.
    assert out["grid"]["nn_segment_comps"] > out["PMR"]["nn_segment_comps"]
