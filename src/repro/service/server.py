"""JSON-over-TCP front end for the query engine.

Protocol: newline-delimited JSON objects, one request per line, one
response per line, over a plain TCP connection. Each connection gets its
own :class:`~repro.service.engine.QuerySession`, so the stats endpoint
attributes disk accesses and comparisons per client.

Requests (``op`` selects the operation)::

    {"op": "ping"}
    {"op": "point", "x": 120, "y": 460}
    {"op": "window", "x1": 0, "y1": 0, "x2": 200, "y2": 200,
     "mode": "intersects"}
    {"op": "nearest", "x": 120, "y": 460, "k": 3}
    {"op": "batch", "requests": [...], "order": "morton"}
    {"op": "insert", "x1": 0, "y1": 0, "x2": 10, "y2": 10}
    {"op": "delete", "seg_id": 17}
    {"op": "checkpoint"}
    {"op": "stats"}
    {"op": "check"}

Responses are ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": "..."}``. Malformed lines, missing or
non-numeric mutation arguments, and unknown segment ids all produce an
error *response* -- never a dropped connection -- so one bad request in
a client's stream cannot kill the requests behind it. ``checkpoint``
requires the engine to be durable (``serve --wal``); on a non-durable
server it is a structured error like any other.
"""

from __future__ import annotations

import itertools
import json
import socket
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from repro.geometry import Segment
from repro.service.batch import BatchExecutor
from repro.service.engine import QueryEngine


def _number(request: Dict[str, Any], key: str) -> float:
    """Fetch a required numeric field, failing with a structured message."""
    if key not in request:
        raise ValueError(f"missing required field {key!r}")
    value = request[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"field {key!r} must be a number, got {type(value).__name__}"
        )
    return value


def _seg_id(request: Dict[str, Any]) -> int:
    if "seg_id" not in request:
        raise ValueError("missing required field 'seg_id'")
    value = request["seg_id"]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"field 'seg_id' must be an integer, got {type(value).__name__}"
        )
    return value


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "MapServer" = self.server  # type: ignore[assignment]
        session = server.engine.session(f"conn-{next(server.connection_ids)}")
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                response = {"ok": True, "result": server.dispatch(request, session)}
            except Exception as exc:  # serve errors back, keep the connection
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()


class MapServer(socketserver.ThreadingTCPServer):
    """A threaded map server over one :class:`QueryEngine`.

    Worker threads (one per connection) share the engine's buffer pool
    under its latch; the cache and batch executor are shared too.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, engine: QueryEngine, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        super().__init__((host, port), _Handler)
        self.engine = engine
        self.batch = BatchExecutor(engine)
        self.connection_ids = itertools.count(1)

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.server_address[:2]
        return host, port

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the (started) thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="map-server", daemon=True
        )
        thread.start()
        return thread

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: Dict[str, Any], session) -> Any:
        op = request.get("op")
        engine = self.engine
        if op == "ping":
            return "pong"
        if op == "point":
            return engine.point(request["x"], request["y"], session=session)
        if op == "window":
            return engine.window(
                request["x1"],
                request["y1"],
                request["x2"],
                request["y2"],
                mode=request.get("mode", "intersects"),
                session=session,
            )
        if op == "nearest":
            return engine.nearest(
                request["x"],
                request["y"],
                k=int(request.get("k", 1)),
                session=session,
            )
        if op == "batch":
            result = self.batch.execute(
                request["requests"],
                session=session,
                order=request.get("order", "morton"),
                use_cache=bool(request.get("use_cache", True)),
            )
            return {
                "results": result.results,
                "order": result.order,
                "disk_accesses": result.disk_accesses,
            }
        if op == "insert":
            segment = Segment(
                _number(request, "x1"),
                _number(request, "y1"),
                _number(request, "x2"),
                _number(request, "y2"),
            )
            return engine.insert_segment(segment, session=session)
        if op == "delete":
            engine.delete(_seg_id(request), session=session)
            return True
        if op == "checkpoint":
            return engine.checkpoint(session=session)
        if op == "stats":
            return engine.stats()
        if op == "check":
            return engine.check()
        raise ValueError(f"unknown op {op!r}")


def send_request(
    address: Tuple[str, int],
    request: Dict[str, Any],
    timeout: Optional[float] = 10.0,
) -> Dict[str, Any]:
    """One-shot client: connect, send one request, return the response."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        with sock.makefile("rb") as fh:
            line = fh.readline()
    if not line:
        raise ConnectionError("server closed the connection without replying")
    return json.loads(line)
