"""JSON-over-TCP front end for the query engine.

Protocol: newline-delimited JSON objects, one request per line, one
response per line, over a plain TCP connection. Each connection gets its
own :class:`~repro.service.engine.QuerySession`, so the stats endpoint
attributes disk accesses and comparisons per client.

Requests (``op`` selects the operation; the full op table, argument
shapes, and error codes are in ``docs/architecture.md``)::

    {"op": "ping"}
    {"op": "point", "x": 120, "y": 460}
    {"op": "window", "x1": 0, "y1": 0, "x2": 200, "y2": 200,
     "mode": "intersects"}
    {"op": "nearest", "x": 120, "y": 460, "k": 3}
    {"op": "batch", "requests": [...], "order": "morton"}
    {"op": "insert", "x1": 0, "y1": 0, "x2": 10, "y2": 10}
    {"op": "delete", "seg_id": 17}
    {"op": "checkpoint"}
    {"op": "stats"}
    {"op": "check"}
    {"op": "trace", "n": 5}
    {"op": "metrics", "format": "prom"}
    {"op": "explain", "query": {"op": "window", "x1": 0, "y1": 0,
                                "x2": 200, "y2": 200}}
    {"op": "health"}

A request may pin the protocol version with ``"v": 1``; the server
echoes ``"v"`` back on that reply (a version mismatch is a ``bad_args``
error whose message names the version this server speaks).
Responses are ``{"ok": true, "result": ...}`` or::

    {"ok": false, "error": {"code": "...", "message": "...", "type": "..."}}

with ``code`` one of :data:`repro.errors.ERROR_CODES` (``unknown_op``,
``bad_args``, ``unknown_seg``, ``not_durable``, ``internal``) and
``type`` the Python exception class, for debugging. Malformed lines,
missing or mis-typed arguments, and unknown segment ids all produce an
error *response* -- never a dropped connection -- so one bad request in
a client's stream cannot kill the requests behind it. ``checkpoint``
requires the engine to be durable (``serve --wal``); on a non-durable
server it is a ``not_durable`` error like any other.

Two wire-level guards apply to every connection: an idle timeout
(:data:`DEFAULT_IDLE_TIMEOUT`) closes a connection that has gone quiet,
and a request-size cap (:data:`MAX_LINE_BYTES`) turns an oversized line
into a ``frame_too_large`` error with the payload drained, not buffered.
The asyncio server (:mod:`repro.aio`) applies the same two guards and
additionally speaks the length-prefixed wire protocol v2.
"""

from __future__ import annotations

import itertools
import json
import socket
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from repro.errors import FrameTooLargeError, ProtocolError
from repro.metric_names import DISK_ACCESSES
from repro.obs import dtrace
from repro.obs.clock import clock_info
from repro.obs.profile import PROFILER
from repro.obs.trace import TRACER
from repro.service.api import parse_request, request_version
from repro.service.engine import QueryEngine

#: Close a connection that has sent nothing for this long (seconds).
#: A stalled client used to pin its handler thread forever; both the
#: threaded and the async server now reclaim it.
DEFAULT_IDLE_TIMEOUT = 300.0

#: Largest accepted v1 request line (bytes, newline excluded). Anything
#: longer is drained and answered with a ``frame_too_large`` error
#: instead of being buffered whole -- one client cannot exhaust memory.
MAX_LINE_BYTES = 1 << 20


def error_envelope(exc: BaseException) -> Dict[str, str]:
    """Map an exception to the wire error object -- the ONE place the
    exception-class -> error-code policy lives.

    * :class:`ProtocolError` carries its own code (``unknown_op``,
      ``bad_args``, ``not_durable``, ``shard_unavailable``, ...).
    * ``KeyError`` is how the engine reports an unknown segment id.
    * Other ``ValueError``/``TypeError`` are argument problems.
    * Anything else is ``internal`` -- a bug, surfaced but contained.

    When the exception names an originating shard (the router relaying a
    worker failure sets ``shard_id``), the envelope carries it through so
    clients see *which* process failed, not just that one did.
    """
    if isinstance(exc, ProtocolError):
        code = exc.code
        message = str(exc)
    elif isinstance(exc, KeyError):
        code = "unknown_seg"
        message = str(exc.args[0]) if exc.args else str(exc)
    elif isinstance(exc, (ValueError, TypeError)):
        code = "bad_args"
        message = str(exc)
    else:
        code = "internal"
        message = str(exc)
    envelope = {"code": code, "message": message, "type": type(exc).__name__}
    shard_id = getattr(exc, "shard_id", None)
    if shard_id is not None:
        envelope["shard"] = shard_id
    return envelope


#: Compact separators: responses carry segment lists, so the default
#: ``", "``/``": "`` padding costs real encode time and wire bytes.
_COMPACT = (",", ":")


def shape_result(op: Any, result: Any) -> Any:
    """Shape an engine result for the wire (shared with the async server).

    Batch results are a dataclass engine-side; every server flattens them
    to the same JSON shape here, so v1, v2, threaded, and async responses
    stay byte-for-byte interchangeable.
    """
    if op == "batch":
        return {
            "results": result.results,
            "order": result.order,
            DISK_ACCESSES: result.disk_accesses,
        }
    return result


def oversized_envelope(limit: int, version: Optional[int] = None) -> Dict[str, Any]:
    """The ``frame_too_large`` error response, shared by both servers."""
    response: Dict[str, Any] = {
        "ok": False,
        "error": error_envelope(
            FrameTooLargeError(
                f"request exceeds the {limit}-byte frame cap; "
                f"it was discarded"
            )
        ),
    }
    if version is not None:
        response["v"] = version
    return response


def serve_json_lines(
    handler: socketserver.StreamRequestHandler,
    respond_line,
    idle_timeout: Optional[float],
    max_line_bytes: int,
) -> None:
    """The v1 request loop shared by the map server and shard router.

    Reads newline-delimited requests with an idle timeout (a stalled
    client no longer pins its thread forever) and a line-size cap: an
    oversized line is drained in bounded chunks and answered with a
    structured ``frame_too_large`` error, never buffered whole.
    """
    dumps = json.dumps
    write, flush = handler.wfile.write, handler.wfile.flush
    readline = handler.rfile.readline
    if idle_timeout is not None:
        handler.connection.settimeout(idle_timeout)
    while True:
        try:
            raw = readline(max_line_bytes + 1)
        except (TimeoutError, socket.timeout, OSError):
            return  # idle (or dead) connection: reclaim the thread
        if not raw:
            return  # EOF: client closed cleanly
        if len(raw) > max_line_bytes and not raw.endswith(b"\n"):
            # Oversized: discard the rest of the line in bounded chunks,
            # answer with a structured error, keep serving the stream.
            if not _drain_line(readline, max_line_bytes):
                return
            response = oversized_envelope(max_line_bytes)
        elif not raw.endswith(b"\n"):
            return  # EOF mid-line: nothing trustworthy to answer
        else:
            line = raw.strip()
            if not line:
                continue
            response = respond_line(line)
        write(dumps(response, separators=_COMPACT).encode("utf-8") + b"\n")
        flush()


def _drain_line(readline, chunk: int) -> bool:
    """Discard bounded chunks until the oversized line's newline.

    Returns False on EOF or timeout (the connection is done)."""
    while True:
        try:
            raw = readline(chunk)
        except (TimeoutError, socket.timeout, OSError):
            return False
        if not raw:
            return False
        if raw.endswith(b"\n"):
            return True


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "MapServer" = self.server  # type: ignore[assignment]
        session = server.engine.session(f"conn-{next(server.connection_ids)}")
        serve_json_lines(
            self,
            lambda line: server.respond(line, session),
            server.idle_timeout,
            server.max_line_bytes,
        )


class MapServer(socketserver.ThreadingTCPServer):
    """A threaded map server over one :class:`QueryEngine`.

    Worker threads (one per connection) share the engine's buffer pool
    under its latch; the cache and batch executor are shared too.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.engine = engine
        self.batch = engine.batch
        self.idle_timeout = idle_timeout
        self.max_line_bytes = max_line_bytes
        self.connection_ids = itertools.count(1)
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.server_address[:2]
        return host, port

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the (started) thread.

        The thread is remembered so :meth:`stop` can join it -- daemon
        status keeps a crashed test from hanging the process, but an
        orderly shutdown must not race the accept loop.
        """
        thread = threading.Thread(
            target=self.serve_forever, name="map-server", daemon=True
        )
        self._serve_thread = thread
        thread.start()
        return thread

    def stop(self) -> None:
        """Deterministic shutdown: stop serving, close the socket, and
        join the background accept thread. After stop() returns, no
        server-owned thread is live (handler threads are daemons tied to
        connections, which ``server_close`` severs in subclasses)."""
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def respond(self, line: Any, session) -> Dict[str, Any]:
        """One wire request -> one envelope; never raises."""
        version: Optional[int] = None
        traced = False
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ProtocolError(
                    f"request must be a JSON object, got "
                    f"{type(request).__name__}"
                )
            if request.get("v") is not None:
                version = request_version(request)
            if TRACER.enabled:
                # Park the wire trace context (or clear a stale one left
                # by an aborted request on this handler thread) for the
                # tracer to consume at start_trace. Disabled tracing pays
                # exactly the one attribute check above.
                traced = True
                tc_raw = request.get("tc")
                dtrace.set_incoming(
                    None
                    if tc_raw is None
                    else dtrace.TraceContext.from_wire(tc_raw)
                )
            response: Dict[str, Any] = {
                "ok": True,
                "result": self.dispatch(request, session),
            }
        except Exception as exc:  # serve errors back, keep the connection
            response = {"ok": False, "error": error_envelope(exc)}
        if traced:
            attachment = dtrace.take_outbound()
            if attachment is not None:
                response["tc"] = attachment
        if version is not None:
            response["v"] = version
        return response

    def dispatch(self, request: Dict[str, Any], session) -> Any:
        op = request.get("op")
        if op == "ping":
            return "pong"
        if op == "clock":
            return clock_info()
        if op == "profile":
            return PROFILER.run(
                seconds=request.get("seconds", 1.0),
                hz=request.get("hz", 97),
            )
        result = self.engine.execute(parse_request(request), session=session)
        return shape_result(op, result)

    def metrics_text(self) -> str:
        """The engine registry as Prometheus text exposition."""
        self.engine.sync_mirrored_counters()
        return self.engine.registry.render_prom()


def send_request(
    address: Tuple[str, int],
    request: Dict[str, Any],
    timeout: Optional[float] = 10.0,
) -> Dict[str, Any]:
    """One-shot client: connect, send one request, return the response."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        with sock.makefile("rb") as fh:
            line = fh.readline()
    if not line:
        raise ConnectionError("server closed the connection without replying")
    return json.loads(line)
