"""Batched query execution ordered by space-filling-curve key.

A buffer pool rewards locality: two queries that touch the same leaf
pages cost one fault if they run back to back, two if something evicts
the pages in between. Arrival order has no such structure, so the batch
executor reorders a group of requests by the Morton (Z-order) key of each
query's centroid before executing -- the same clustering argument behind
the linear quadtree's B-tree layout and Kamel & Faloutsos' Hilbert
packing. Results are always returned in arrival order; only the
execution schedule changes.

The effect is measured, not assumed: :meth:`BatchExecutor.compare_orders`
runs the same batch in arrival order and in Morton order from an equally
cold pool and reports the disk accesses of each (``bench-serve`` prints
the comparison, and the service tests assert Morton <= arrival).

Batches may also carry mutations (``insert``/``delete``). A mutation is
a *barrier*: it executes at exactly its arrival position, and only the
reads between two consecutive barriers are Morton-sorted among
themselves. That preserves both read-after-write semantics (a query
after an insert sees it; one before does not) and -- in durable mode --
the WAL's LSN order, which must match arrival order.

Each member is parsed into a typed request
(:func:`repro.service.api.parse_batch_item`) and dispatched through
:meth:`QueryEngine.execute`, so batch members are validated, traced, and
histogrammed exactly like standalone requests -- under an enabled
tracer, a batch trace shows one child span per member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.interface import WORLD_SIZE
from repro.core.pmr.locational import interleave
from repro.service.api import (
    Delete,
    Insert,
    NearestQuery,
    PointQuery,
    WindowQuery,
    parse_batch_item,
)
from repro.service.engine import QueryEngine, QuerySession
from repro.storage.counters import MetricsSnapshot

#: A batch request is a dict like the server protocol's:
#: ``{"op": "point", "x": .., "y": ..}``,
#: ``{"op": "window", "x1": .., "y1": .., "x2": .., "y2": ..}``,
#: ``{"op": "nearest", "x": .., "y": .., "k": ..}``.
Request = Dict[str, Any]

_ORDERS = ("arrival", "morton")
_MUTATIONS = (Insert, Delete)


def _is_mutation(request: Any) -> bool:
    if isinstance(request, dict):
        return request.get("op") in ("insert", "delete")
    return isinstance(request, _MUTATIONS)


def _centroid(request: Any) -> Tuple[float, float]:
    """Scheduling key coordinate of a typed request (or a wire dict)."""
    if isinstance(request, dict):
        request = parse_batch_item(request)
    if isinstance(request, WindowQuery):
        return (request.x1 + request.x2) / 2.0, (request.y1 + request.y2) / 2.0
    if isinstance(request, (PointQuery, NearestQuery)):
        return request.x, request.y
    raise ValueError(f"no centroid for request {type(request).__name__}")


def morton_key(x: float, y: float) -> int:
    """Z-order key of a coordinate, clamped into the paper's world."""
    xi = min(max(int(x), 0), WORLD_SIZE - 1)
    yi = min(max(int(y), 0), WORLD_SIZE - 1)
    return interleave(xi, yi)


@dataclass
class BatchResult:
    """Results (in arrival order) plus the cost of the whole batch."""

    results: List[Any]
    order: str
    metrics: MetricsSnapshot

    @property
    def disk_accesses(self) -> int:
        return self.metrics.disk_accesses


class BatchExecutor:
    """Execute grouped requests through an engine, sorted for locality."""

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine

    def _schedule(self, requests: List[Any], order: str) -> List[int]:
        """Execution order: mutations are barriers pinned at their arrival
        positions; only each run of reads between barriers is sorted."""
        indices = list(range(len(requests)))
        if order != "morton":
            return indices
        schedule: List[int] = []
        run: List[int] = []

        def flush_run() -> None:
            run.sort(key=lambda i: morton_key(*_centroid(requests[i])))
            schedule.extend(run)
            run.clear()

        for idx in indices:
            if _is_mutation(requests[idx]):
                flush_run()
                schedule.append(idx)
            else:
                run.append(idx)
        flush_run()
        return schedule

    def execute(
        self,
        requests: List[Request],
        session: Optional[QuerySession] = None,
        order: str = "morton",
        use_cache: bool = True,
    ) -> BatchResult:
        """Run a batch, returning results in arrival order.

        ``order`` is ``"morton"`` (sorted by centroid Z-order key) or
        ``"arrival"``. The result carries the metric deltas the whole
        batch charged to ``session``.
        """
        if order not in _ORDERS:
            raise ValueError(f"order must be one of {_ORDERS}, got {order!r}")
        if session is None:
            session = self.engine.session()
        typed = [parse_batch_item(raw, use_cache=use_cache) for raw in requests]
        results: List[Any] = [None] * len(typed)
        before = session.counters.snapshot()
        schedule = self._schedule(typed, order)
        fuse = self.engine.backend.supports_batch
        pos = 0
        while pos < len(schedule):
            idx = schedule[pos]
            # A batch-capable backend takes each (Morton-sorted) run of
            # reads between mutation barriers in one fused descent, so
            # shared upper-level nodes are tested once for the whole
            # run. Results and paper counters match per-request
            # execution; only page traffic is deduplicated.
            if fuse and not _is_mutation(typed[idx]):
                end = pos
                while end < len(schedule) and not _is_mutation(
                    typed[schedule[end]]
                ):
                    end += 1
                run_ix = schedule[pos:end]
                if len(run_ix) > 1:
                    fused = self.engine.execute_reads_fused(
                        [typed[i] for i in run_ix], session=session
                    )
                    for i, value in zip(run_ix, fused):
                        results[i] = value
                    pos = end
                    continue
            results[idx] = self.engine.execute(typed[idx], session=session)
            pos += 1
        return BatchResult(
            results=results,
            order=order,
            metrics=session.counters.since(before),
        )

    def compare_orders(
        self, requests: List[Request], session: Optional[QuerySession] = None
    ) -> Dict[str, BatchResult]:
        """Run the batch in both orders from equally cold pools.

        The result cache is bypassed and the buffer pool is cleared
        before each run, so the two disk-access counts differ only by
        execution order. Returns ``{"arrival": ..., "morton": ...}``.
        """
        out: Dict[str, BatchResult] = {}
        for order in _ORDERS:
            self.engine.cold_start()
            out[order] = self.execute(
                requests, session=session, order=order, use_cache=False
            )
        return out
