"""The map-server subsystem: snapshots, a concurrent query service, and
a JSON-over-TCP front end.

The rest of the package builds and measures Hoel & Samet's structures;
this package *serves* them:

* :mod:`repro.service.snapshot` -- :func:`save_index` / :func:`open_index`
  persist a built index (pages **and** manifest: kind, root page, height,
  parameters, segment-table head) so a loaded snapshot is queryable with
  zero rebuild inserts.
* :mod:`repro.service.engine` -- :class:`QueryEngine`, a thread-safe read
  path: one shared buffer pool behind a counted latch, per-session metric
  attribution, and an invalidating LRU result cache.
* :mod:`repro.service.cache` -- the :class:`ResultCache` LRU.
* :mod:`repro.service.batch` -- :class:`BatchExecutor`, which reorders
  grouped queries by the Morton key of their centroid to maximize
  buffer-pool reuse.
* :mod:`repro.service.server` -- :class:`MapServer`, a threaded
  line-delimited-JSON TCP server (``python -m repro serve``). With
  ``--wal DIR`` it serves a durable store (:mod:`repro.wal`): mutations
  are write-ahead logged before they are applied and
  ``{"op": "checkpoint"}`` folds the log into a fresh snapshot.
* :mod:`repro.service.loadgen` -- ``python -m repro bench-serve``: a
  multi-threaded load generator reporting throughput, latency
  percentiles, cache hit rate, and disk accesses.
* :mod:`repro.service.api` -- the typed request dataclasses
  (:class:`PointQuery`, :class:`WindowQuery`, ...) every surface parses
  into; :meth:`QueryEngine.execute` is the single dispatch point where
  tracing and metrics (:mod:`repro.obs`) attach.
"""

from repro.service.api import (
    PROTOCOL_VERSION,
    BatchRequest,
    Check,
    Checkpoint,
    Delete,
    Insert,
    Metrics,
    NearestQuery,
    PointQuery,
    Stats,
    Trace,
    WindowQuery,
    parse_batch_item,
    parse_request,
)
from repro.service.batch import BatchExecutor, BatchResult, morton_key
from repro.service.cache import ResultCache
from repro.service.engine import QueryEngine, QuerySession
from repro.service.loadgen import BenchReport, bench_serve, format_bench_report
from repro.service.server import MapServer, error_envelope, send_request
from repro.service.snapshot import open_index, save_index, snapshot_info

__all__ = [
    "BatchExecutor",
    "BatchRequest",
    "BatchResult",
    "BenchReport",
    "Check",
    "Checkpoint",
    "Delete",
    "Insert",
    "MapServer",
    "Metrics",
    "NearestQuery",
    "PROTOCOL_VERSION",
    "PointQuery",
    "QueryEngine",
    "QuerySession",
    "ResultCache",
    "Stats",
    "Trace",
    "WindowQuery",
    "bench_serve",
    "error_envelope",
    "format_bench_report",
    "morton_key",
    "open_index",
    "parse_batch_item",
    "parse_request",
    "save_index",
    "send_request",
    "snapshot_info",
]
