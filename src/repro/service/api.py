"""Typed requests: the one shape every query takes through the engine.

The service used to have three request surfaces -- ``engine.window(...)``
kwargs, batch dicts, and wire-protocol JSON -- each validating (or not)
on its own. This module gives them one: every operation is a dataclass,
canonicalized and validated at construction, and
:meth:`repro.service.engine.QueryEngine.execute` is the single dispatch
point that runs any of them. The old ``engine.point/window/nearest/...``
methods survive as thin wrappers that build a request and call
``execute``, so existing callers -- and the result cache's canonicalized
keys -- are unchanged.

Canonicalization happens in ``__init__``: a :class:`WindowQuery` sorts
its corners, every coordinate becomes ``float``, and :meth:`cache_key`
on the read queries returns exactly the tuple the result cache has
always used. Validation failures raise
:class:`~repro.errors.ProtocolError` (a ``ValueError``) carrying the
wire error code. All requests are immutable by convention -- they are
shared across threads once built; the rarely-constructed ops enforce it
with ``frozen=True``, while the three per-request read queries trade
that enforcement for construction speed (see :class:`PointQuery`).

:func:`parse_request` converts a wire-protocol dict into a typed
request; :data:`PROTOCOL_VERSION` is the version clients may pin with
``"v": 1`` (echoed in replies). The op -> class table and the error
codes are documented in ``docs/architecture.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple

from repro.errors import ProtocolError

#: The wire protocol version this server speaks. Requests may carry
#: ``"v": PROTOCOL_VERSION``; any other value is a ``bad_args`` error.
PROTOCOL_VERSION = 1

#: Window query modes accepted on the wire (mirrors repro.core.queries).
WINDOW_MODES = ("intersects", "contains", "clips")


def _to_float(value: Any, field_name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"field {field_name!r} must be a number, got {type(value).__name__}"
        )
    return float(value)


def _require(raw: Dict[str, Any], key: str) -> Any:
    if key not in raw:
        raise ProtocolError(f"missing required field {key!r}")
    return raw[key]


def _number(raw: Dict[str, Any], key: str) -> float:
    return _to_float(_require(raw, key), key)


def _integer(raw: Dict[str, Any], key: str, default: Optional[int] = None) -> int:
    if key not in raw:
        if default is None:
            raise ProtocolError(f"missing required field {key!r}")
        return default
    value = raw[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"field {key!r} must be an integer, got {type(value).__name__}"
        )
    return value


@dataclass(slots=True, init=False)
class PointQuery:
    """Query 1: which segments have an endpoint at ``(x, y)``?

    The three read queries hand-write ``__init__`` (``init=False``)
    with plain attribute stores: the generated ``__init__`` plus a
    ``__post_init__`` re-pass costs ~4x as much, and one of these is
    constructed for every service request. They are immutable by
    convention (shared across threads; never assign to their fields) --
    ``frozen=True`` would put ``object.__setattr__`` back on the hot
    path, which is most of that cost.
    """

    OP: ClassVar[str] = "point"

    x: float
    y: float
    use_cache: bool = True

    def __init__(self, x: Any, y: Any, use_cache: bool = True) -> None:
        self.x = x if type(x) is float else _to_float(x, "x")
        self.y = y if type(y) is float else _to_float(y, "y")
        self.use_cache = use_cache

    def cache_key(self) -> Tuple:
        return ("point", self.x, self.y)

    def describe(self) -> Dict[str, Any]:
        return {"x": self.x, "y": self.y}


@dataclass(slots=True, init=False)
class WindowQuery:
    """Query 5: which segments meet the (canonicalized) window?"""

    OP: ClassVar[str] = "window"

    x1: float
    y1: float
    x2: float
    y2: float
    mode: str = "intersects"
    use_cache: bool = True

    def __init__(
        self,
        x1: Any,
        y1: Any,
        x2: Any,
        y2: Any,
        mode: str = "intersects",
        use_cache: bool = True,
    ) -> None:
        if type(x1) is not float:
            x1 = _to_float(x1, "x1")
        if type(y1) is not float:
            y1 = _to_float(y1, "y1")
        if type(x2) is not float:
            x2 = _to_float(x2, "x2")
        if type(y2) is not float:
            y2 = _to_float(y2, "y2")
        if x2 < x1:
            x1, x2 = x2, x1
        if y2 < y1:
            y1, y2 = y2, y1
        if mode not in WINDOW_MODES:
            raise ProtocolError(
                f"field 'mode' must be one of {WINDOW_MODES}, got {mode!r}"
            )
        self.x1 = x1
        self.y1 = y1
        self.x2 = x2
        self.y2 = y2
        self.mode = mode
        self.use_cache = use_cache

    def cache_key(self) -> Tuple:
        return ("window", self.x1, self.y1, self.x2, self.y2, self.mode)

    def describe(self) -> Dict[str, Any]:
        return {
            "x1": self.x1,
            "y1": self.y1,
            "x2": self.x2,
            "y2": self.y2,
            "mode": self.mode,
        }


@dataclass(slots=True, init=False)
class NearestQuery:
    """Query 3 (k-nearest): ``(seg_id, dist^2)`` pairs, nearest first."""

    OP: ClassVar[str] = "nearest"

    x: float
    y: float
    k: int = 1
    use_cache: bool = True

    def __init__(
        self, x: Any, y: Any, k: int = 1, use_cache: bool = True
    ) -> None:
        if type(k) is not int and (
            isinstance(k, bool) or not isinstance(k, int)
        ):
            raise ProtocolError(
                f"field 'k' must be an integer, got {type(k).__name__}"
            )
        if k < 1:
            raise ProtocolError(f"k must be >= 1, got {k}")
        self.x = x if type(x) is float else _to_float(x, "x")
        self.y = y if type(y) is float else _to_float(y, "y")
        self.k = k
        self.use_cache = use_cache

    def cache_key(self) -> Tuple:
        return ("nearest", self.x, self.y, self.k)

    def describe(self) -> Dict[str, Any]:
        return {"x": self.x, "y": self.y, "k": self.k}


@dataclass(frozen=True, slots=True)
class BatchRequest:
    """A group of requests executed with locality-aware scheduling.

    ``requests`` stays a tuple of *wire-shaped dicts*: the batch executor
    parses each into a typed request at dispatch time, so a bad item is a
    structured error for that batch without invalidating the whole
    protocol stream.
    """

    OP: ClassVar[str] = "batch"

    requests: Tuple[Dict[str, Any], ...]
    order: str = "morton"
    use_cache: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.requests, tuple):
            try:
                object.__setattr__(self, "requests", tuple(self.requests))
            except TypeError:
                raise ProtocolError(
                    "field 'requests' must be a list of request objects"
                ) from None
        for item in self.requests:
            if not isinstance(item, dict):
                raise ProtocolError(
                    f"batch items must be objects, got {type(item).__name__}"
                )

    def describe(self) -> Dict[str, Any]:
        return {"requests": len(self.requests), "order": self.order}


@dataclass(frozen=True, slots=True)
class Insert:
    """Append a new segment to the table and index it."""

    OP: ClassVar[str] = "insert"

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        for name in ("x1", "y1", "x2", "y2"):
            object.__setattr__(self, name, _to_float(getattr(self, name), name))

    def describe(self) -> Dict[str, Any]:
        return {"x1": self.x1, "y1": self.y1, "x2": self.x2, "y2": self.y2}


@dataclass(frozen=True, slots=True)
class Delete:
    """Unindex the segment with id ``seg_id``."""

    OP: ClassVar[str] = "delete"

    seg_id: int

    def __post_init__(self) -> None:
        if isinstance(self.seg_id, bool) or not isinstance(self.seg_id, int):
            raise ProtocolError(
                f"field 'seg_id' must be an integer, got "
                f"{type(self.seg_id).__name__}"
            )

    def describe(self) -> Dict[str, Any]:
        return {"seg_id": self.seg_id}


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """Fold the WAL into a fresh snapshot (durable engines only)."""

    OP: ClassVar[str] = "checkpoint"

    def describe(self) -> Dict[str, Any]:
        return {}


@dataclass(frozen=True, slots=True)
class Stats:
    """The full observability snapshot."""

    OP: ClassVar[str] = "stats"

    def describe(self) -> Dict[str, Any]:
        return {}


@dataclass(frozen=True, slots=True)
class Check:
    """Run the static index fsck under the latch."""

    OP: ClassVar[str] = "check"

    def describe(self) -> Dict[str, Any]:
        return {}


@dataclass(frozen=True, slots=True)
class Trace:
    """Read back the last ``n`` traces -- or one trace by id.

    With ``trace_id`` set the response is ``{"trace": <tree or null>}``:
    the distributed-trace lookup (the router answers it from its ring of
    stitched cross-process trees).
    """

    OP: ClassVar[str] = "trace"

    n: Optional[int] = None
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n is not None and (
            isinstance(self.n, bool) or not isinstance(self.n, int) or self.n < 1
        ):
            raise ProtocolError("field 'n' must be a positive integer")
        if self.trace_id is not None and not isinstance(self.trace_id, str):
            raise ProtocolError("field 'trace_id' must be a string")

    def describe(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.n is not None:
            out["n"] = self.n
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out


#: Ops EXPLAIN can wrap: the read queries whose traversals are profiled.
EXPLAIN_OPS = ("point", "window", "nearest")


@dataclass(frozen=True, slots=True)
class Explain:
    """Run a read query with full per-level cost attribution.

    Wraps a typed :class:`PointQuery` / :class:`WindowQuery` /
    :class:`NearestQuery` (wire shape: ``{"op": "explain", "query":
    {"op": "window", ...}}``). The wrapped query executes for real --
    same traversal, same counters charged to the session -- but bypasses
    the result cache and returns the structured plan/profile instead of
    the bare result.
    """

    OP: ClassVar[str] = "explain"

    query: Any

    def __post_init__(self) -> None:
        if not isinstance(self.query, (PointQuery, WindowQuery, NearestQuery)):
            raise ProtocolError(
                f"explain wraps one of ops {EXPLAIN_OPS}, got "
                f"{type(self.query).__name__}"
            )

    def describe(self) -> Dict[str, Any]:
        out = {"query_op": self.query.OP}
        out.update(self.query.describe())
        return out


@dataclass(frozen=True, slots=True)
class Health:
    """Recompute and return the served index's structural health."""

    OP: ClassVar[str] = "health"

    def describe(self) -> Dict[str, Any]:
        return {}


@dataclass(frozen=True, slots=True)
class Metrics:
    """Export the process-wide metrics registry."""

    OP: ClassVar[str] = "metrics"

    format: str = "json"

    def __post_init__(self) -> None:
        if self.format not in ("json", "prom"):
            raise ProtocolError(
                f"field 'format' must be 'json' or 'prom', got {self.format!r}"
            )

    def describe(self) -> Dict[str, Any]:
        return {"format": self.format}


#: Every request type ``QueryEngine.execute`` accepts.
REQUEST_TYPES = (
    PointQuery,
    WindowQuery,
    NearestQuery,
    BatchRequest,
    Insert,
    Delete,
    Checkpoint,
    Stats,
    Check,
    Trace,
    Metrics,
    Explain,
    Health,
)

#: Ops allowed inside a batch: reads are Morton-schedulable, mutations
#: are barriers; everything else makes no sense grouped.
BATCH_OPS = ("point", "window", "nearest", "insert", "delete")


def request_version(raw: Dict[str, Any]) -> Optional[int]:
    """Validate and return the request's pinned protocol version."""
    v = raw.get("v")
    if v is None:
        return None
    if isinstance(v, bool) or not isinstance(v, int) or v != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {v!r}; this server speaks "
            f"v{PROTOCOL_VERSION}"
        )
    return v


def parse_request(raw: Dict[str, Any]) -> Any:
    """Build the typed request a wire-protocol dict describes.

    Raises :class:`ProtocolError` with code ``unknown_op`` for an op
    outside the table, ``bad_args`` for missing/mis-typed fields.
    """
    if not isinstance(raw, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(raw).__name__}"
        )
    op = raw.get("op")
    # The read ops dominate service traffic, so they index the dict
    # directly and let __post_init__ do the (single) validation pass;
    # the KeyError catch keeps missing-field errors as bad_args.
    try:
        if op == "point":
            return PointQuery(raw["x"], raw["y"])
        if op == "window":
            return WindowQuery(
                raw["x1"],
                raw["y1"],
                raw["x2"],
                raw["y2"],
                mode=raw.get("mode", "intersects"),
            )
        if op == "nearest":
            return NearestQuery(raw["x"], raw["y"], k=raw.get("k", 1))
    except KeyError as exc:
        raise ProtocolError(
            f"missing required field {exc.args[0]!r}"
        ) from None
    if op == "batch":
        requests = _require(raw, "requests")
        if not isinstance(requests, list):
            raise ProtocolError(
                f"field 'requests' must be a list, got "
                f"{type(requests).__name__}"
            )
        order = raw.get("order", "morton")
        if order not in ("arrival", "morton"):
            raise ProtocolError(
                f"field 'order' must be 'arrival' or 'morton', got {order!r}"
            )
        use_cache = raw.get("use_cache", True)
        if not isinstance(use_cache, bool):
            raise ProtocolError(
                f"field 'use_cache' must be a boolean, got "
                f"{type(use_cache).__name__}"
            )
        return BatchRequest(tuple(requests), order=order, use_cache=use_cache)
    if op == "insert":
        return Insert(
            _number(raw, "x1"),
            _number(raw, "y1"),
            _number(raw, "x2"),
            _number(raw, "y2"),
        )
    if op == "delete":
        return Delete(_integer(raw, "seg_id"))
    if op == "checkpoint":
        return Checkpoint()
    if op == "stats":
        return Stats()
    if op == "check":
        return Check()
    if op == "trace":
        return Trace(n=raw.get("n"), trace_id=raw.get("trace_id"))
    if op == "metrics":
        return Metrics(format=raw.get("format", "json"))
    if op == "explain":
        inner_raw = _require(raw, "query")
        if not isinstance(inner_raw, dict):
            raise ProtocolError(
                f"field 'query' must be a request object, got "
                f"{type(inner_raw).__name__}"
            )
        if inner_raw.get("op") not in EXPLAIN_OPS:
            raise ProtocolError(
                f"explain wraps one of ops {EXPLAIN_OPS}, got "
                f"{inner_raw.get('op')!r}"
            )
        return Explain(parse_request(inner_raw))
    if op == "health":
        return Health()
    raise ProtocolError(f"unknown op {op!r}", code="unknown_op")


def parse_batch_item(raw: Dict[str, Any], use_cache: bool = True) -> Any:
    """Parse one batch member, restricted to the batchable ops."""
    if not isinstance(raw, dict):
        raise ProtocolError(
            f"batch items must be objects, got {type(raw).__name__}"
        )
    op = raw.get("op")
    if op not in BATCH_OPS:
        raise ProtocolError(f"batch cannot execute op {op!r}")
    request = parse_request(raw)
    if not use_cache and hasattr(request, "use_cache"):
        from dataclasses import replace

        request = replace(request, use_cache=False)
    return request
