"""An invalidating LRU result cache for the query service.

Keys are ``(query kind, canonicalized argument tuple)``; values are the
fully-verified query results (lists of segment ids, or ``(id, dist2)``
pairs for nearest queries). The cache is write-through-invalidated: any
``insert`` or ``delete`` on the served index clears it entirely, since a
single segment can change the answer of arbitrarily many cached queries
(a nearest result can be displaced by a segment far outside any cached
window).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Tuple

from repro.sanitize import make_lock


class ResultCache:
    """Thread-safe LRU over canonicalized query keys.

    ``hits`` / ``misses`` count lookups; ``invalidations`` counts full
    clears triggered by index mutations.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = make_lock("service.cache")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def lookup(self, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; moves a hit to most-recently-used."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def peek(self, key: Hashable) -> bool:
        """Membership without counting or LRU movement.

        EXPLAIN uses this to report whether the query's canonical key is
        cached while bypassing the cache entirely -- a peek must not
        perturb the hit/miss tallies or the eviction order the live
        traffic sees.
        """
        with self._lock:
            return key in self._entries

    def store(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_all(self) -> None:
        """Drop every entry (called on any index mutation)."""
        with self._lock:
            self._entries.clear()
            self.invalidations += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
