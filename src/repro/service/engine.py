"""A thread-safe, metered, *observable* read path over one spatial index.

The storage substrate is single-threaded by design (the paper measures a
solitary structure); a server is not. The :class:`QueryEngine` makes the
shared stack safe and attributable:

* **One dispatch point** -- every operation, from a point query to a
  checkpoint, is a typed request (:mod:`repro.service.api`) run through
  :meth:`QueryEngine.execute`. The old ``point``/``window``/``nearest``/
  ``insert_segment``/``delete``/``checkpoint`` methods survive as thin
  wrappers that build a request, so callers and the cache keys are
  unchanged -- but instrumentation now attaches in exactly one place.
* **Observability** -- ``execute`` opens a trace span per request
  (:data:`repro.obs.trace.TRACER`; nested requests, e.g. a batch's
  members, become child spans), observes a per-op latency histogram and
  request counter in the process-wide
  :class:`~repro.obs.metrics.MetricsRegistry`, and feeds the slow-query
  log. With tracing disabled the per-request cost is a couple of
  attribute checks -- no allocation.
* **Latching** -- every traversal (and every counter swap) runs under one
  :class:`~repro.storage.latch.Latch` guarding the shared buffer pool, so
  N worker threads can issue queries concurrently without corrupting
  frames, the replacement policy, or the counters. The latch counts
  contended acquisitions for the server's stats endpoint.
* **Per-session attribution** -- each session owns a
  :class:`~repro.storage.counters.MetricsCounters`. A query runs against
  a scratch counter set that is merged into both the session's counters
  and the engine totals, so at any instant the session counters sum
  exactly to the shared pool's totals (the ``counters_consistent`` check;
  the bench harness asserts it after every run).
* **Result caching** -- queries are memoized in an LRU
  (:class:`~repro.service.cache.ResultCache`) keyed on the canonicalized
  query; any ``insert``/``delete`` invalidates the whole cache.
* **Durability (optional)** -- constructed with a
  :class:`~repro.wal.store.DurableStore`, every mutation is logged to
  the write-ahead log *then* applied, both under the latch so LSN order
  matches apply order; the fsync (group-commit batched) happens after
  the latch is released, and only then is the caller acked. A crash at
  any point replays the logged suffix on recovery
  (:func:`repro.wal.open_durable`).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.core.backends import resolve_backend
from repro.core.interface import WORLD_DEPTH
from repro.core.queries.spec import QuerySpec
from repro.errors import NotDurableError, ProtocolError
from repro.geometry import Point, Rect, Segment
from repro.obs.buildinfo import publish_build_info
from repro.obs.explain import ExplainProfile
from repro.obs.health import publish_health
from repro.obs.metrics import MetricsRegistry, SlowQueryLog, get_registry
from repro.obs.profile import PROFILER
from repro.obs.trace import TRACER
from repro.service.api import (
    BatchRequest,
    Check,
    Checkpoint,
    Delete,
    Explain,
    Health,
    Insert,
    Metrics,
    NearestQuery,
    PointQuery,
    Stats,
    Trace,
    WindowQuery,
)
from repro.metric_names import COUNTER_FIELDS
from repro.sanitize import SANITIZER, make_lock
from repro.storage.counters import MetricsCounters
from repro.storage.latch import Latch


class QuerySession:
    """One client's view of the service: counters and query tally."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters = MetricsCounters()
        self.queries = 0
        self.cache_hits = 0

    def stats(self) -> dict:
        out = {
            "name": self.name,
            "queries": self.queries,
            "cache_hits": self.cache_hits,
        }
        out.update(self.counters.as_dict())
        return out


class QueryEngine:
    """Concurrent typed-request service over one built index."""

    def __init__(
        self,
        index,
        cache_capacity: int = 256,
        store=None,
        registry: Optional[MetricsRegistry] = None,
        slow_ms: Optional[float] = None,
        slow_log_capacity: int = 64,
        backend=None,
    ) -> None:
        from repro.service.cache import ResultCache  # avoid import cycle

        if store is not None and store.index is not index:
            raise ValueError(
                "durable engine must serve the store's own index: the WAL "
                "records mutations of exactly that table and structure"
            )
        self.index = index
        self.ctx = index.ctx
        self.store = store
        # How read queries traverse the index: "scalar" (default),
        # "vector", or a TraversalBackend instance. Results and paper
        # counters are backend-invariant (the parity suite enforces it),
        # which is why cache keys carry no backend component.
        self.backend = resolve_backend(backend)
        self.latch = Latch("buffer-pool")
        self.cache = ResultCache(cache_capacity)
        self.totals = MetricsCounters()
        self.registry = registry if registry is not None else get_registry()
        self.slow_log = SlowQueryLog(slow_ms, capacity=slow_log_capacity)
        self._sessions: Dict[str, QuerySession] = {}
        self._sessions_lock = make_lock("service.engine.sessions")
        self._deferred = threading.local()
        self._anon = itertools.count(1)
        self._batch = None
        # Per-op metric handles, resolved once so the hot path is a single
        # dict lookup (the registry itself get-or-creates lazily).
        self._op_metrics: Dict[str, Tuple[Any, Any]] = {}
        self._op_error_counters: Dict[str, Any] = {}
        self._cache_hit_counter = self.registry.counter(
            "repro_cache_events_total", outcome="hit"
        )
        self._cache_miss_counter = self.registry.counter(
            "repro_cache_events_total", outcome="miss"
        )
        self._slow_counter = self.registry.counter("repro_slow_queries_total")
        self._trace_counter = self.registry.counter("repro_traces_total")
        self._trace_dropped_counter = self.registry.counter(
            "repro_trace_dropped_total"
        )
        self._trace_tail_counter = self.registry.counter(
            "repro_trace_tail_discarded_total"
        )
        self._trace_buffered_gauge = self.registry.gauge("repro_trace_buffered")
        publish_build_info(
            self.registry, page_size=self.ctx.page_size, grid_bits=WORLD_DEPTH
        )
        # Seed the structural-health gauges from the opening state; later
        # refreshes happen on checkpoint, the health op, and prom export.
        self.refresh_health()

    @property
    def durable(self) -> bool:
        return self.store is not None

    @property
    def batch(self):
        """The engine's batch executor (lazy: batch imports this module)."""
        if self._batch is None:
            from repro.service.batch import BatchExecutor

            self._batch = BatchExecutor(self)
        return self._batch

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, name: Optional[str] = None) -> QuerySession:
        """Create or fetch the session named ``name`` (fresh name if None)."""
        with self._sessions_lock:
            if name is None:
                name = f"session-{next(self._anon)}"
            session = self._sessions.get(name)
            if session is None:
                session = self._sessions[name] = QuerySession(name)
            return session

    def sessions(self) -> List[QuerySession]:
        with self._sessions_lock:
            return list(self._sessions.values())

    def counters_consistent(self) -> bool:
        """Do the per-session counters sum to the shared totals?"""
        total = MetricsCounters()
        for session in self.sessions():
            total.merge(session.counters)
        return total == self.totals

    # ------------------------------------------------------------------
    # The single dispatch point
    # ------------------------------------------------------------------
    def execute(self, request, session: Optional[QuerySession] = None):
        """Run any typed request (:mod:`repro.service.api`).

        This is where *all* instrumentation attaches: one latency
        histogram observation and one request counter per call (by op
        and status), one trace (or, nested inside an active trace --
        e.g. a batch member -- one child span), and the slow-query log.
        Every op goes through here, so every op is measured identically.
        """
        try:
            op = request.OP
        except AttributeError:
            raise ProtocolError(
                f"not a typed request: {type(request).__name__}; build one "
                f"from repro.service.api (or call the wrapper methods)"
            ) from None
        root = span = None
        if TRACER.enabled:
            if TRACER.active():
                span = TRACER.span(op, **request.describe())
                span.__enter__()
            else:
                root = TRACER.start_trace(op, **request.describe())
        if PROFILER.enabled:
            # The profiler seam: tag this thread with the running op so
            # stack samples split by request kind. One attribute load
            # when idle -- same budget discipline as TRACER.enabled.
            PROFILER.set_op(op)
        error: Optional[str] = None
        start = time.perf_counter()
        try:
            return self._dispatch(request, session)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            if PROFILER.enabled:
                PROFILER.clear_op()
            elapsed = time.perf_counter() - start
            pair = self._op_metrics.get(op)
            if pair is None:
                pair = self._metric_pair(op)
            if error is None:
                # One critical section covers histogram + ok counter.
                pair[0].observe_and_count(elapsed, pair[1])
            else:
                pair[0].observe(elapsed)
                self._count_error(op)
            # describe() builds a dict; only pay for it with the log armed.
            if self.slow_log.threshold_ms is not None and self.slow_log.record(
                op, elapsed, request.describe()
            ):
                self._slow_counter.inc()
            if root is not None:
                TRACER.finish_trace(root, error=error)
                self._trace_counter.inc()
            elif span is not None:
                if error is not None:
                    span.set_error(error)
                span.__exit__(None, None, None)

    # ------------------------------------------------------------------
    # Commit barrier (group commit across connections)
    # ------------------------------------------------------------------
    def _commit_barrier(self) -> None:
        """Make the just-logged mutation durable -- or defer that duty.

        The ordinary path fsyncs inline (through the WAL's group-commit
        batching), so a mutation is durable before ``execute`` returns.
        Inside :meth:`execute_deferred` the barrier instead records the
        mutation's LSN and returns immediately: the caller (the async
        server's cross-connection group committer) owns durability and
        must not ack the client until an fsync covers that LSN.
        """
        if self.store is None:
            return
        local = self._deferred
        if getattr(local, "active", False):
            local.lsn = self.store.last_lsn
            return
        with TRACER.span("commit"):
            self.store.commit()

    def execute_deferred(
        self, request, session: Optional[QuerySession] = None
    ) -> Tuple[Any, Optional[int]]:
        """Run ``request`` with the inline commit barrier suppressed.

        Returns ``(result, lsn)``. ``lsn`` is the highest LSN the request
        logged, or ``None`` when nothing needs an fsync (reads, errors,
        non-durable engines). Commit-before-ack is the caller's contract:
        it must await an fsync covering ``lsn`` before acknowledging.

        The deferral flag is thread-local, so a request executing on one
        executor thread never suppresses another thread's inline commit.
        """
        local = self._deferred
        local.active = True
        local.lsn = None
        try:
            result = self.execute(request, session=session)
        finally:
            lsn = getattr(local, "lsn", None)
            local.active = False
            local.lsn = None
        return result, lsn

    def _metric_pair(self, op: str) -> Tuple[Any, Any]:
        """Resolve (latency histogram, ok counter) for ``op``, once."""
        return self._op_metrics.setdefault(
            op,
            (
                self.registry.histogram("repro_op_latency_seconds", op=op),
                self.registry.counter("repro_queries_total", op=op, status="ok"),
            ),
        )

    def _count_error(self, op: str) -> None:
        counter = self._op_error_counters.get(op)
        if counter is None:
            counter = self._op_error_counters.setdefault(
                op,
                self.registry.counter(
                    "repro_queries_total", op=op, status="error"
                ),
            )
        counter.inc()

    def _spec_for(self, request) -> QuerySpec:
        """The backend-neutral query plan for a typed read request."""
        if isinstance(request, PointQuery):
            return QuerySpec.point(Point(request.x, request.y))
        if isinstance(request, WindowQuery):
            return QuerySpec.window(
                Rect(request.x1, request.y1, request.x2, request.y2),
                request.mode,
            )
        if isinstance(request, NearestQuery):
            return QuerySpec.nearest(Point(request.x, request.y), request.k)
        raise ProtocolError(f"not a read query: {type(request).__name__}")

    def _read_thunk(self, request) -> Tuple[Any, Any]:
        """(cache key, traversal thunk) for a typed read query.

        Shared by the plain dispatch path and EXPLAIN, so an explained
        query runs exactly the traversal the ordinary op would. The
        thunk executes the request's :class:`QuerySpec` through the
        engine's traversal backend; the cache key is the request's own
        (backend-free -- results are backend-invariant).
        """
        spec = self._spec_for(request)
        return request.cache_key(), lambda: self.backend.run(self.index, spec)

    def execute_reads_fused(
        self, requests, session: Optional[QuerySession] = None
    ) -> List[Any]:
        """Run a group of read queries through one fused backend descent.

        The cache is consulted per request exactly as in :meth:`_run`;
        only the misses reach :meth:`TraversalBackend.run_batch`, which
        (for a batch-capable backend) tests all of them against each
        shared upper-level node in a single pass. Results come back in
        argument order and are cached under the same keys a standalone
        run would use. Fused members are counted in the per-op request
        counters but share one traversal span -- the enclosing batch op
        carries the latency observation.
        """
        if session is None:
            session = self.session("default")
        results: List[Any] = [None] * len(requests)
        miss_ix: List[int] = []
        miss_keys: List[Optional[Tuple]] = []
        specs: List[QuerySpec] = []
        for i, request in enumerate(requests):
            session.queries += 1
            spec = self._spec_for(request)
            if request.use_cache:
                key = request.cache_key()
                hit, value = self.cache.lookup(key)
                if hit:
                    session.cache_hits += 1
                    if TRACER.enabled:
                        TRACER.event("cache_hit")
                    results[i] = value
                    continue
                if TRACER.enabled:
                    TRACER.event("cache_miss")
            else:
                key = None
            miss_ix.append(i)
            miss_keys.append(key)
            specs.append(spec)
        if specs:
            if TRACER.enabled:
                with TRACER.span("traverse", fused=len(specs)):
                    with self._attributed(session):
                        values = self.backend.run_batch(self.index, specs)
            else:
                with self._attributed(session):
                    values = self.backend.run_batch(self.index, specs)
            for i, key, value in zip(miss_ix, miss_keys, values):
                results[i] = value
                if key is not None:
                    self.cache.store(key, value)
        for request in requests:
            pair = self._op_metrics.get(request.OP)
            if pair is None:
                pair = self._metric_pair(request.OP)
            pair[1].inc()
        return results

    def _dispatch(self, request, session: Optional[QuerySession]):
        if isinstance(request, (PointQuery, WindowQuery, NearestQuery)):
            return self._run(request, session)
        if isinstance(request, BatchRequest):
            return self.batch.execute(
                list(request.requests),
                session=session,
                order=request.order,
                use_cache=request.use_cache,
            )
        if isinstance(request, Insert):
            segment = Segment(request.x1, request.y1, request.x2, request.y2)
            return self._apply_insert(segment, session)
        if isinstance(request, Delete):
            return self._apply_delete(request.seg_id, session)
        if isinstance(request, Checkpoint):
            return self._apply_checkpoint(session, None)
        if isinstance(request, Stats):
            return self.stats()
        if isinstance(request, Check):
            return self.check()
        if isinstance(request, Trace):
            if request.trace_id is not None:
                return {
                    "tracing": TRACER.stats(),
                    "trace": TRACER.find(request.trace_id),
                }
            return {"tracing": TRACER.stats(), "traces": TRACER.recent(request.n)}
        if isinstance(request, Metrics):
            self.sync_mirrored_counters()
            if request.format == "prom":
                # The prom export is the scrape path: serve the gauges
                # freshly recomputed, like every other family.
                self.refresh_health()
                return self.registry.render_prom()
            return self.registry.render_json()
        if isinstance(request, Explain):
            return self._explain(request, session)
        if isinstance(request, Health):
            return self.refresh_health()
        raise ProtocolError(
            f"unknown request type {type(request).__name__}", code="unknown_op"
        )

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    @contextmanager
    def _attributed(self, session: QuerySession):
        """Run index work under the pool latch, charging ``session``.

        The shared context's counters are swapped for a scratch set for
        the duration, then the scratch deltas are merged into both the
        session counters and the engine totals. The swap is safe because
        it happens under the same latch that serializes all pool traffic.

        Yields the scratch set: EXPLAIN reads the per-call deltas off it
        after the block exits (the merge leaves the scratch intact), so
        its "observed" figures are exactly what this query was charged --
        no second query, no race with concurrent sessions.
        """
        with self.latch:
            ctx, pool = self.ctx, self.ctx.pool
            scratch = MetricsCounters()
            saved_ctx, saved_pool = ctx.counters, pool.counters
            ctx.counters = pool.counters = scratch
            try:
                yield scratch
            finally:
                ctx.counters, pool.counters = saved_ctx, saved_pool
                session.counters.merge(scratch)
                self.totals.merge(scratch)

    def _run(self, request, session: Optional[QuerySession]):
        if session is None:
            session = self.session("default")
        session.queries += 1
        use_cache = request.use_cache
        if use_cache:
            # The cache keeps its own hit/miss tally under the lock it
            # takes anyway; the registry mirrors are synced at export.
            key = request.cache_key()
            hit, value = self.cache.lookup(key)
            if hit:
                session.cache_hits += 1
                if TRACER.enabled:
                    TRACER.event("cache_hit")
                return value
            if TRACER.enabled:
                TRACER.event("cache_miss")
        # Only a miss pays for building the traversal closure; a hit
        # returns above having allocated nothing but the cache key.
        _, thunk = self._read_thunk(request)
        if TRACER.enabled:
            with TRACER.span("traverse") as sp:
                with self._attributed(session) as scratch:
                    value = thunk()
                if sp.recording:
                    # Span cost attribution: the exact scratch deltas
                    # this traversal was charged -- what the router's
                    # stitched tree compares against engine counters.
                    sp.set_attr("counters", scratch.as_dict())
        else:
            with self._attributed(session):
                value = thunk()
        if use_cache:
            self.cache.store(key, value)
        return value

    # ------------------------------------------------------------------
    # EXPLAIN and structural health
    # ------------------------------------------------------------------
    def _explain(self, request: Explain, session: Optional[QuerySession]):
        """Run a read query with per-level attribution attached.

        The inner query executes through the *same* cache-key/thunk pair
        the plain dispatch uses, with an :class:`ExplainProfile` parked
        on this thread; the traversal hooks in the index code charge the
        live counters through the profile's windows, so the per-level
        figures are the real charges, not estimates. The cache is
        bypassed both ways (no lookup, no store) -- EXPLAIN exists to
        observe the traversal, and a cached answer has none.
        """
        if session is None:
            session = self.session("default")
        session.queries += 1
        inner = request.query
        key, thunk = self._read_thunk(inner)
        would_hit = self.cache.peek(key)
        prof = ExplainProfile(inner.OP, self.index.name)
        wal_before = self.store.stats() if self.store is not None else None
        start = time.perf_counter()
        TRACER.attach_profile(prof)
        try:
            if TRACER.enabled:
                with TRACER.span("traverse"):
                    with self._attributed(session) as scratch:
                        value = thunk()
            else:
                with self._attributed(session) as scratch:
                    value = thunk()
        finally:
            TRACER.detach_profile()
        elapsed = time.perf_counter() - start
        observed = scratch.snapshot()
        attributed = prof.attributed()
        observed_dict = observed.as_dict()
        exact = all(
            attributed[name] == observed_dict[name] for name in COUNTER_FIELDS
        )
        report = {
            "op": request.OP,
            "args": inner.describe(),
            "backend": self.backend.describe(),
            "plan": prof.to_dict(),
            "observed": observed_dict,
            "exact": exact,
            "result_count": len(value),
            "elapsed_ms": round(elapsed * 1e3, 3),
            "cache": {"would_hit": would_hit, "bypassed": True},
        }
        if not exact:
            report["unattributed"] = {
                name: observed_dict[name] - attributed[name]
                for name in COUNTER_FIELDS
                if observed_dict[name] != attributed[name]
            }
        if wal_before is not None:
            wal_after = self.store.stats()
            report["wal"] = {
                "appends": wal_after["log_appends"] - wal_before["log_appends"],
                "fsyncs": wal_after["fsyncs"] - wal_before["fsyncs"],
            }
        return report

    def refresh_health(self) -> dict:
        """Recompute and publish the structural-health gauges.

        Walks the index via the uncounted ``disk.peek`` bypass under the
        latch, so a refresh moves no session counter, no pool statistic,
        and no paper metric -- only the ``repro_index_*`` gauges.
        """
        with self.latch:
            return publish_health(self.index, self.registry)

    # ------------------------------------------------------------------
    # Read queries (thin wrappers over execute)
    # ------------------------------------------------------------------
    def point(
        self,
        x: float,
        y: float,
        session: Optional[QuerySession] = None,
        use_cache: bool = True,
    ) -> List[int]:
        """Query 1: ids of segments with an endpoint at ``(x, y)``."""
        return self.execute(PointQuery(x, y, use_cache=use_cache), session=session)

    def window(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        mode: str = "intersects",
        session: Optional[QuerySession] = None,
        use_cache: bool = True,
    ) -> List[int]:
        """Query 5: ids of segments meeting the (canonicalized) window."""
        return self.execute(
            WindowQuery(x1, y1, x2, y2, mode=mode, use_cache=use_cache),
            session=session,
        )

    def nearest(
        self,
        x: float,
        y: float,
        k: int = 1,
        session: Optional[QuerySession] = None,
        use_cache: bool = True,
    ) -> List[Tuple[int, float]]:
        """Query 3 (k-nearest): ``(seg_id, dist^2)`` pairs, nearest first."""
        return self.execute(
            NearestQuery(x, y, k=k, use_cache=use_cache), session=session
        )

    # ------------------------------------------------------------------
    # Mutations (invalidate the cache)
    # ------------------------------------------------------------------
    def insert_segment(
        self, segment: Segment, session: Optional[QuerySession] = None
    ) -> int:
        """Append a segment to the table, index it, invalidate the cache.

        Durable mode logs the record (under the latch, so the LSN order
        is the apply order) and group-commits after the latch drops --
        the mutation is durable before this method returns.
        """
        return self.execute(
            Insert(segment.x1, segment.y1, segment.x2, segment.y2),
            session=session,
        )

    def _apply_insert(
        self, segment: Segment, session: Optional[QuerySession]
    ) -> int:
        if session is None:
            session = self.session("maintenance")
        with TRACER.span("apply"):
            with self._attributed(session):
                seg_id = self.ctx.segments.append(segment)
                if self.store is not None:
                    self.store.log_insert(seg_id, segment)
                self.index.insert(seg_id)
        self._commit_barrier()
        self.cache.invalidate_all()
        self.backend.invalidate()
        return seg_id

    def insert(self, seg_id: int, session: Optional[QuerySession] = None) -> None:
        """Index an already-stored segment, invalidating the cache.

        Not a wire-protocol op: re-indexing an existing id is not
        representable in the WAL, so it stays a direct (local-only)
        maintenance method.
        """
        if self.store is not None:
            raise RuntimeError(
                "re-indexing an existing segment id is not representable "
                "in the WAL; durable mode accepts insert_segment/delete only"
            )
        if session is None:
            session = self.session("maintenance")
        with self._attributed(session):
            self.index.insert(seg_id)
        self.cache.invalidate_all()
        self.backend.invalidate()

    def delete(self, seg_id: int, session: Optional[QuerySession] = None) -> None:
        """Unindex a segment, invalidating the cache.

        An id outside the segment table raises ``KeyError`` *before*
        anything is logged; deleting a stored-but-unindexed segment
        (a double delete) logs the record first and then fails the
        apply -- replay treats such a record as the same no-op.
        """
        self.execute(Delete(int(seg_id)), session=session)

    def _apply_delete(
        self, seg_id: int, session: Optional[QuerySession]
    ) -> bool:
        if session is None:
            session = self.session("maintenance")
        with TRACER.span("apply"):
            with self._attributed(session):
                if not 0 <= seg_id < len(self.ctx.segments):
                    raise KeyError(
                        f"unknown segment id {seg_id}: the table holds "
                        f"0..{len(self.ctx.segments) - 1}"
                    )
                if self.store is not None:
                    self.store.log_delete(seg_id)
                self.index.delete(seg_id)
        self._commit_barrier()
        self.cache.invalidate_all()
        self.backend.invalidate()
        return True

    def checkpoint(self, session: Optional[QuerySession] = None, _crash_point=None):
        """Fold the WAL into a fresh snapshot (``{"op": "checkpoint"}``).

        Runs under the latch at a quiescent point, so the snapshot is
        transaction-consistent with the checkpoint LSN; the page writes
        the pool flush performs are attributed to ``session`` (default:
        a dedicated "checkpoint" session), keeping
        :meth:`counters_consistent` exact. Crash-injection runs
        (``_crash_point``) bypass ``execute`` -- they abort mid-protocol
        and must not leave half-open traces behind.
        """
        if _crash_point is not None:
            return self._apply_checkpoint(session, _crash_point)
        return self.execute(Checkpoint(), session=session)

    def _apply_checkpoint(
        self, session: Optional[QuerySession], _crash_point
    ):
        if self.store is None:
            raise NotDurableError("engine is not durable: serve with --wal")
        if session is None:
            session = self.session("checkpoint")
        with self._attributed(session):
            result = self.store.checkpoint(_crash_point=_crash_point)
        # The checkpoint just rewrote the snapshot from the live pages;
        # re-derive the structural gauges from the state it captured.
        self.refresh_health()
        return result

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def cold_start(self) -> None:
        """Flush and empty the shared pool (measurement hygiene)."""
        with self.latch:
            self.ctx.pool.clear()

    def check(self) -> dict:
        """Run the static index fsck under the latch (``{"op": "check"}``).

        The walk reads pages via the uncounted ``disk.peek`` bypass, so
        a check never shows up in any session's counters, the engine
        totals, or the pool statistics -- a live server can be fsck'd
        mid-traffic without skewing its measurements.
        """
        from repro.analysis import check_index, has_errors  # avoid import cycle

        with self.latch:
            findings = check_index(self.index)
        return {
            "clean": not has_errors(findings),
            "findings": [f.to_dict() for f in findings],
        }

    def sync_mirrored_counters(self) -> None:
        """Copy the result cache's own hit/miss tally into the registry.

        The cache counts lookups under the lock it already holds, so the
        request path pays nothing extra; exports call this to bring the
        ``repro_cache_events_total`` mirrors up to date.
        """
        self._cache_hit_counter.advance_to(self.cache.hits)
        self._cache_miss_counter.advance_to(self.cache.misses)
        tracing = TRACER.stats()
        self._trace_dropped_counter.advance_to(tracing["evicted"])
        self._trace_tail_counter.advance_to(tracing["tail_discarded"])
        self._trace_buffered_gauge.set(tracing["buffered"])

    def stats(self) -> dict:
        """A full observability snapshot for the server's stats op."""
        self.sync_mirrored_counters()
        with self.latch:
            pool = self.ctx.pool
            disk = self.ctx.disk
            snapshot = {
                "index": {
                    "kind": self.index.name,
                    "segments": len(self.ctx.segments),
                    "entries": self.index.entry_count(),
                    "height": self.index.height(),
                    "pages": self.index.page_count(),
                },
                "totals": self.totals.as_dict(),
                "backend": self.backend.describe(),
                "pool": {
                    "capacity": pool.capacity,
                    "resident": len(pool),
                    "dirty": len(pool.dirty_pages()),
                },
                "disk": {
                    "pages": len(disk),
                    "free_ids": disk.free_page_count,
                    "physical_reads": disk.physical_reads,
                    "physical_writes": disk.physical_writes,
                },
                "latch": self.latch.stats(),
                "cache": self.cache.stats(),
                "sessions": [s.stats() for s in self.sessions()],
                "counters_consistent": self.counters_consistent(),
                "durable": self.store is not None,
                "obs": {
                    "tracing": TRACER.stats(),
                    "slow_queries": self.slow_log.stats(),
                },
            }
            if SANITIZER.enabled:
                snapshot["sanitizer"] = SANITIZER.report()
            if self.store is not None:
                wal_stats = self.store.stats()
                snapshot["last_lsn"] = wal_stats["last_lsn"]
                snapshot["wal"] = wal_stats
        return snapshot
