"""A thread-safe, metered read path over one spatial index.

The storage substrate is single-threaded by design (the paper measures a
solitary structure); a server is not. The :class:`QueryEngine` makes the
shared stack safe and attributable:

* **Latching** -- every traversal (and every counter swap) runs under one
  :class:`~repro.storage.latch.Latch` guarding the shared buffer pool, so
  N worker threads can issue queries concurrently without corrupting
  frames, the replacement policy, or the counters. The latch counts
  contended acquisitions for the server's stats endpoint.
* **Per-session attribution** -- each session owns a
  :class:`~repro.storage.counters.MetricsCounters`. A query runs against
  a scratch counter set that is merged into both the session's counters
  and the engine totals, so at any instant the session counters sum
  exactly to the shared pool's totals (the ``counters_consistent`` check;
  the bench harness asserts it after every run).
* **Result caching** -- queries are memoized in an LRU
  (:class:`~repro.service.cache.ResultCache`) keyed on the canonicalized
  query; any ``insert``/``delete`` invalidates the whole cache.
* **Durability (optional)** -- constructed with a
  :class:`~repro.wal.store.DurableStore`, every mutation is logged to
  the write-ahead log *then* applied, both under the latch so LSN order
  matches apply order; the fsync (group-commit batched) happens after
  the latch is released, and only then is the caller acked. A crash at
  any point replays the logged suffix on recovery
  (:func:`repro.wal.open_durable`).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.core.queries import (
    nearest_k_segments,
    segments_at_point,
    window_query,
)
from repro.geometry import Point, Rect, Segment
from repro.storage.counters import MetricsCounters
from repro.storage.latch import Latch


class QuerySession:
    """One client's view of the service: counters and query tally."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters = MetricsCounters()
        self.queries = 0
        self.cache_hits = 0

    def stats(self) -> dict:
        return {
            "name": self.name,
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "disk_accesses": self.counters.disk_accesses,
            "disk_writes": self.counters.disk_writes,
            "buffer_hits": self.counters.buffer_hits,
            "segment_comps": self.counters.segment_comps,
            "bbox_comps": self.counters.bbox_comps,
        }


class QueryEngine:
    """Concurrent point/window/nearest service over one built index."""

    def __init__(self, index, cache_capacity: int = 256, store=None) -> None:
        from repro.service.cache import ResultCache  # avoid import cycle

        if store is not None and store.index is not index:
            raise ValueError(
                "durable engine must serve the store's own index: the WAL "
                "records mutations of exactly that table and structure"
            )
        self.index = index
        self.ctx = index.ctx
        self.store = store
        self.latch = Latch("buffer-pool")
        self.cache = ResultCache(cache_capacity)
        self.totals = MetricsCounters()
        self._sessions: Dict[str, QuerySession] = {}
        self._sessions_lock = threading.Lock()
        self._anon = itertools.count(1)

    @property
    def durable(self) -> bool:
        return self.store is not None

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, name: Optional[str] = None) -> QuerySession:
        """Create or fetch the session named ``name`` (fresh name if None)."""
        with self._sessions_lock:
            if name is None:
                name = f"session-{next(self._anon)}"
            session = self._sessions.get(name)
            if session is None:
                session = self._sessions[name] = QuerySession(name)
            return session

    def sessions(self) -> List[QuerySession]:
        with self._sessions_lock:
            return list(self._sessions.values())

    def counters_consistent(self) -> bool:
        """Do the per-session counters sum to the shared totals?"""
        total = MetricsCounters()
        for session in self.sessions():
            total.merge(session.counters)
        return total == self.totals

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    @contextmanager
    def _attributed(self, session: QuerySession):
        """Run index work under the pool latch, charging ``session``.

        The shared context's counters are swapped for a scratch set for
        the duration, then the scratch deltas are merged into both the
        session counters and the engine totals. The swap is safe because
        it happens under the same latch that serializes all pool traffic.
        """
        with self.latch:
            ctx, pool = self.ctx, self.ctx.pool
            scratch = MetricsCounters()
            saved_ctx, saved_pool = ctx.counters, pool.counters
            ctx.counters = pool.counters = scratch
            try:
                yield
            finally:
                ctx.counters, pool.counters = saved_ctx, saved_pool
                session.counters.merge(scratch)
                self.totals.merge(scratch)

    def _run(self, key, session: Optional[QuerySession], use_cache: bool, thunk):
        if session is None:
            session = self.session("default")
        session.queries += 1
        if use_cache:
            hit, value = self.cache.lookup(key)
            if hit:
                session.cache_hits += 1
                return value
        with self._attributed(session):
            value = thunk()
        if use_cache:
            self.cache.store(key, value)
        return value

    # ------------------------------------------------------------------
    # Read queries
    # ------------------------------------------------------------------
    def point(
        self,
        x: float,
        y: float,
        session: Optional[QuerySession] = None,
        use_cache: bool = True,
    ) -> List[int]:
        """Query 1: ids of segments with an endpoint at ``(x, y)``."""
        x, y = float(x), float(y)
        key = ("point", x, y)
        return self._run(
            key, session, use_cache, lambda: segments_at_point(self.index, Point(x, y))
        )

    def window(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        mode: str = "intersects",
        session: Optional[QuerySession] = None,
        use_cache: bool = True,
    ) -> List[int]:
        """Query 5: ids of segments meeting the (canonicalized) window."""
        lo_x, hi_x = sorted((float(x1), float(x2)))
        lo_y, hi_y = sorted((float(y1), float(y2)))
        key = ("window", lo_x, lo_y, hi_x, hi_y, mode)
        rect = Rect(lo_x, lo_y, hi_x, hi_y)
        return self._run(
            key, session, use_cache, lambda: window_query(self.index, rect, mode=mode)
        )

    def nearest(
        self,
        x: float,
        y: float,
        k: int = 1,
        session: Optional[QuerySession] = None,
        use_cache: bool = True,
    ) -> List[Tuple[int, float]]:
        """Query 3 (k-nearest): ``(seg_id, dist^2)`` pairs, nearest first."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        x, y = float(x), float(y)
        key = ("nearest", x, y, k)
        return self._run(
            key,
            session,
            use_cache,
            lambda: nearest_k_segments(self.index, Point(x, y), k),
        )

    # ------------------------------------------------------------------
    # Mutations (invalidate the cache)
    # ------------------------------------------------------------------
    def insert_segment(
        self, segment: Segment, session: Optional[QuerySession] = None
    ) -> int:
        """Append a segment to the table, index it, invalidate the cache.

        Durable mode logs the record (under the latch, so the LSN order
        is the apply order) and group-commits after the latch drops --
        the mutation is durable before this method returns.
        """
        if session is None:
            session = self.session("maintenance")
        with self._attributed(session):
            seg_id = self.ctx.segments.append(segment)
            if self.store is not None:
                self.store.log_insert(seg_id, segment)
            self.index.insert(seg_id)
        if self.store is not None:
            self.store.commit()
        self.cache.invalidate_all()
        return seg_id

    def insert(self, seg_id: int, session: Optional[QuerySession] = None) -> None:
        """Index an already-stored segment, invalidating the cache."""
        if self.store is not None:
            raise RuntimeError(
                "re-indexing an existing segment id is not representable "
                "in the WAL; durable mode accepts insert_segment/delete only"
            )
        if session is None:
            session = self.session("maintenance")
        with self._attributed(session):
            self.index.insert(seg_id)
        self.cache.invalidate_all()

    def delete(self, seg_id: int, session: Optional[QuerySession] = None) -> None:
        """Unindex a segment, invalidating the cache.

        An id outside the segment table raises ``KeyError`` *before*
        anything is logged; deleting a stored-but-unindexed segment
        (a double delete) logs the record first and then fails the
        apply -- replay treats such a record as the same no-op.
        """
        seg_id = int(seg_id)
        if session is None:
            session = self.session("maintenance")
        with self._attributed(session):
            if not 0 <= seg_id < len(self.ctx.segments):
                raise KeyError(
                    f"unknown segment id {seg_id}: the table holds "
                    f"0..{len(self.ctx.segments) - 1}"
                )
            if self.store is not None:
                self.store.log_delete(seg_id)
            self.index.delete(seg_id)
        if self.store is not None:
            self.store.commit()
        self.cache.invalidate_all()

    def checkpoint(self, session: Optional[QuerySession] = None, _crash_point=None):
        """Fold the WAL into a fresh snapshot (``{"op": "checkpoint"}``).

        Runs under the latch at a quiescent point, so the snapshot is
        transaction-consistent with the checkpoint LSN; the page writes
        the pool flush performs are attributed to ``session`` (default:
        a dedicated "checkpoint" session), keeping
        :meth:`counters_consistent` exact.
        """
        if self.store is None:
            raise RuntimeError("engine is not durable: serve with --wal")
        if session is None:
            session = self.session("checkpoint")
        with self._attributed(session):
            return self.store.checkpoint(_crash_point=_crash_point)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def cold_start(self) -> None:
        """Flush and empty the shared pool (measurement hygiene)."""
        with self.latch:
            self.ctx.pool.clear()

    def check(self) -> dict:
        """Run the static index fsck under the latch (``{"op": "check"}``).

        The walk reads pages via the uncounted ``disk.peek`` bypass, so
        a check never shows up in any session's counters, the engine
        totals, or the pool statistics -- a live server can be fsck'd
        mid-traffic without skewing its measurements.
        """
        from repro.analysis import check_index, has_errors  # avoid import cycle

        with self.latch:
            findings = check_index(self.index)
        return {
            "clean": not has_errors(findings),
            "findings": [f.to_dict() for f in findings],
        }

    def stats(self) -> dict:
        """A full observability snapshot for the server's stats op."""
        with self.latch:
            pool = self.ctx.pool
            disk = self.ctx.disk
            snapshot = {
                "index": {
                    "kind": self.index.name,
                    "segments": len(self.ctx.segments),
                    "entries": self.index.entry_count(),
                    "height": self.index.height(),
                    "pages": self.index.page_count(),
                },
                "totals": {
                    "disk_accesses": self.totals.disk_accesses,
                    "disk_writes": self.totals.disk_writes,
                    "buffer_hits": self.totals.buffer_hits,
                    "segment_comps": self.totals.segment_comps,
                    "bbox_comps": self.totals.bbox_comps,
                },
                "pool": {
                    "capacity": pool.capacity,
                    "resident": len(pool),
                    "dirty": len(pool.dirty_pages()),
                },
                "disk": {
                    "pages": len(disk),
                    "free_ids": disk.free_page_count,
                    "physical_reads": disk.physical_reads,
                    "physical_writes": disk.physical_writes,
                },
                "latch": self.latch.stats(),
                "cache": self.cache.stats(),
                "sessions": [s.stats() for s in self.sessions()],
                "counters_consistent": self.counters_consistent(),
                "durable": self.store is not None,
            }
            if self.store is not None:
                wal_stats = self.store.stats()
                snapshot["last_lsn"] = wal_stats["last_lsn"]
                snapshot["wal"] = wal_stats
        return snapshot
