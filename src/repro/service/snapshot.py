"""Queryable snapshots: persist a built index, reopen it without rebuilding.

:func:`repro.storage.codec.dump_database` persists raw pages;  that alone
is not a *snapshot*, because nothing records which pages form the index:
a reloaded disk could only be queried by re-inserting every segment. This
module adds the missing manifest. :func:`save_index` flushes the buffer
pool and writes the pages together with the index kind, its construction
parameters, its navigational state (root page id, height, counts, page
inventory), and the segment-table head; :func:`open_index` rebuilds the
exact index object over the reloaded disk -- zero inserts, zero page
writes, identical query answers and statistics.

Supported kinds are the paper's three structures plus the Guttman
baseline: ``R*``, ``R+``, ``PMR``, and ``R``. The PMR quadtree snapshot
additionally records the in-memory block directory (the linear-quadtree
navigation state) and the B-tree head.
"""

from __future__ import annotations

import os
from typing import Any, BinaryIO, Dict, List, Optional, Union

from repro.core.pmr import PMRQuadtree
from repro.core.pmr.blocks import PMRBlock
from repro.core.rplus import RPlusTree
from repro.core.rtree import GuttmanRTree, RStarTree
from repro.geometry import Rect
from repro.errors import SnapshotError
from repro.storage.codec import dump_database, load_snapshot, read_header
from repro.storage.context import StorageContext
from repro.storage.policies import ReplacementPolicy

MANIFEST_VERSION = 1

#: Exact-type registry: subclasses (PM1/PM2/PM3, TrueRPlusTree) have
#: state this module does not capture, so they are rejected explicitly.
_KINDS = {
    RStarTree: "R*",
    RPlusTree: "R+",
    PMRQuadtree: "PMR",
    GuttmanRTree: "R",
}


# ----------------------------------------------------------------------
# PMR block-directory (de)serialization
# ----------------------------------------------------------------------
def _block_to_json(block: PMRBlock) -> Dict[str, Any]:
    node: Dict[str, Any] = {"d": block.depth, "x": block.bx, "y": block.by}
    if block.is_leaf:
        node["c"] = block.count
    else:
        node["ch"] = [_block_to_json(child) for child in block.children]
    return node


def _block_from_json(node: Dict[str, Any]) -> PMRBlock:
    block = PMRBlock(node["d"], node["x"], node["y"])
    if "ch" in node:
        block.children = [_block_from_json(child) for child in node["ch"]]
    else:
        block.count = node["c"]
    return block


# ----------------------------------------------------------------------
# Manifest construction
# ----------------------------------------------------------------------
def _build_manifest(index) -> Dict[str, Any]:
    kind = _KINDS.get(type(index))
    if kind is None:
        raise SnapshotError(
            f"no snapshot support for {type(index).__name__}; supported "
            f"kinds: {sorted(_KINDS.values())}"
        )
    table = index.ctx.segments
    manifest: Dict[str, Any] = {
        "version": MANIFEST_VERSION,
        "kind": kind,
        "segments": {"page_ids": list(table._page_ids), "count": len(table)},
    }
    if kind in ("R", "R*"):
        manifest["params"] = {
            "capacity": index.capacity,
            "min_entries": index.min_entries,
        }
        manifest["state"] = {
            "root_id": index._root_id,
            "height": index._height,
            "count": index._count,
            "page_ids": sorted(index._page_ids),
        }
    elif kind == "R+":
        manifest["params"] = {
            "capacity": index.capacity,
            "split_rule": index.split_rule,
            "world": list(index.world),
        }
        manifest["state"] = {
            "root_id": index._root_id,
            "height": index._height,
            "seg_count": index._seg_count,
            "entry_count": index._entry_count,
            "page_ids": sorted(index._page_ids),
        }
    else:  # PMR
        if index.store_bboxes:
            raise SnapshotError(
                "PMR snapshots require store_bboxes=False: the on-disk "
                "B-tree codec stores (code, pointer) 2-tuples only"
            )
        manifest["params"] = {
            "threshold": index.threshold,
            "max_depth": index.max_depth,
            "world_size": index.world_size,
            "curve": index.curve,
        }
        manifest["state"] = {"seg_count": index._seg_count}
        manifest["btree"] = {
            "root_id": index.btree._root_id,
            "height": index.btree._height,
            "count": index.btree._count,
            "page_ids": sorted(index.btree._page_ids),
        }
        manifest["blocks"] = _block_to_json(index.root)
    return manifest


def save_index(
    index,
    dest: Union[str, os.PathLike, BinaryIO],
    extra: Optional[Dict[str, Any]] = None,
) -> int:
    """Persist a built index as a queryable snapshot.

    Flushes the buffer pool, then writes every disk page plus a manifest
    recording the index kind, parameters, root page id, height, page
    inventory, and segment-table head. Returns the number of pages
    written. Raises :class:`~repro.errors.SnapshotError` (a ``CodecError``)
    for unsupported index types.

    ``extra`` merges additional top-level keys into the manifest; the
    durability layer embeds ``{"wal": {"checkpoint_lsn": ...}}`` so a
    checkpoint carries its log position atomically with its pages.
    """
    manifest = _build_manifest(index)
    if extra:
        for key in extra:
            if key in manifest:
                raise SnapshotError(f"extra manifest key {key!r} collides")
        manifest.update(extra)
    ctx = index.ctx
    ctx.pool.flush()
    if hasattr(dest, "write"):
        return dump_database(ctx.disk, dest, manifest=manifest, pool=ctx.pool)
    with open(dest, "wb") as fh:
        return dump_database(ctx.disk, fh, manifest=manifest, pool=ctx.pool)


# ----------------------------------------------------------------------
# Reopening
# ----------------------------------------------------------------------
def _discard_bootstrap(ctx: StorageContext, page_id: int) -> None:
    """Throw away the root page a constructor allocates.

    The page was born dirty in the pool and never flushed, so dropping it
    costs no disk write; freeing recycles its id for later allocations.
    """
    ctx.pool.drop(page_id)
    ctx.disk.free(page_id)


def _check_pages(ctx: StorageContext, page_ids: List[int], what: str) -> None:
    for pid in page_ids:
        if not ctx.disk.is_allocated(pid):
            raise SnapshotError(f"{what} page {pid} is missing from the snapshot")


def open_index(
    src: Union[str, os.PathLike, BinaryIO],
    pool_pages: int = 16,
    policy: Optional[ReplacementPolicy] = None,
):
    """Reopen a snapshot written by :func:`save_index` as a live index.

    The returned index is immediately queryable: no segment is
    re-inserted and no page is written. It owns a fresh
    :class:`~repro.storage.context.StorageContext` (cold buffer pool,
    zeroed logical counters) over the reloaded disk.
    """
    if hasattr(src, "read"):
        disk, manifest = load_snapshot(src)
    else:
        with open(src, "rb") as fh:
            disk, manifest = load_snapshot(fh)
    if manifest is None:
        raise SnapshotError(
            "snapshot has no index manifest (written by dump_database "
            "rather than save_index?)"
        )
    if manifest.get("version") != MANIFEST_VERSION:
        raise SnapshotError(f"unsupported manifest version {manifest.get('version')!r}")
    kind = manifest.get("kind")
    seg = manifest["segments"]
    ctx = StorageContext.from_disk(
        disk,
        pool_pages=pool_pages,
        policy=policy,
        segment_page_ids=seg["page_ids"],
        segment_count=seg["count"],
    )
    params = manifest.get("params", {})
    state = manifest.get("state", {})

    if kind in ("R", "R*"):
        cls = RStarTree if kind == "R*" else GuttmanRTree
        index = cls(ctx, capacity=params["capacity"])
        index.min_entries = params["min_entries"]
        _discard_bootstrap(ctx, index._root_id)
        _check_pages(ctx, state["page_ids"], kind)
        index._root_id = state["root_id"]
        index._height = state["height"]
        index._count = state["count"]
        index._page_ids = set(state["page_ids"])
    elif kind == "R+":
        index = RPlusTree(
            ctx,
            world=Rect(*params["world"]),
            capacity=params["capacity"],
            split_rule=params["split_rule"],
        )
        _discard_bootstrap(ctx, index._root_id)
        _check_pages(ctx, state["page_ids"], kind)
        index._root_id = state["root_id"]
        index._height = state["height"]
        index._seg_count = state["seg_count"]
        index._entry_count = state["entry_count"]
        index._page_ids = set(state["page_ids"])
    elif kind == "PMR":
        index = PMRQuadtree(
            ctx,
            threshold=params["threshold"],
            max_depth=params["max_depth"],
            world_size=params["world_size"],
            curve=params["curve"],
        )
        _discard_bootstrap(ctx, index.btree._root_id)
        btree_state = manifest["btree"]
        _check_pages(ctx, btree_state["page_ids"], "PMR B-tree")
        index.btree._root_id = btree_state["root_id"]
        index.btree._height = btree_state["height"]
        index.btree._count = btree_state["count"]
        index.btree._page_ids = set(btree_state["page_ids"])
        index.root = _block_from_json(manifest["blocks"])
        index._seg_count = state["seg_count"]
    else:
        raise SnapshotError(f"unknown index kind {kind!r} in manifest")
    return index


def empty_index_like(index, ctx: StorageContext):
    """A fresh, empty index of the same kind and construction parameters
    as ``index``, over the caller's new :class:`StorageContext`.

    The shard rebalancer uses this to build each child of a split: same
    capacity/split-rule/threshold/world as the parent, zero entries.
    """
    kind = _KINDS.get(type(index))
    if kind is None:
        raise SnapshotError(
            f"no snapshot support for {type(index).__name__}; supported "
            f"kinds: {sorted(_KINDS.values())}"
        )
    if kind in ("R", "R*"):
        cls = RStarTree if kind == "R*" else GuttmanRTree
        clone = cls(ctx, capacity=index.capacity)
        clone.min_entries = index.min_entries
        return clone
    if kind == "R+":
        return RPlusTree(
            ctx,
            world=index.world,
            capacity=index.capacity,
            split_rule=index.split_rule,
        )
    return PMRQuadtree(
        ctx,
        threshold=index.threshold,
        max_depth=index.max_depth,
        world_size=index.world_size,
        curve=index.curve,
    )


def snapshot_info(src: Union[str, os.PathLike, BinaryIO]) -> Dict[str, Any]:
    """Read only the manifest of a snapshot (no page decoding)."""
    if hasattr(src, "read"):
        manifest = read_header(src).get("manifest")
    else:
        with open(src, "rb") as fh:
            manifest = read_header(fh).get("manifest")
    if manifest is None:
        raise SnapshotError("snapshot has no index manifest")
    return manifest
