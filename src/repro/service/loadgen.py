"""``python -m repro bench-serve``: a concurrent load generator.

Builds (or reopens from a snapshot) one index, starts a
:class:`~repro.service.server.MapServer` on an ephemeral port, then
drives it with K client threads issuing a mixed point/window/nearest
workload over real TCP connections. Reports throughput, latency
percentiles, cache hit rate, disk accesses, latch contention, and the
per-session/total counter consistency check, then measures the batch
executor's Morton-order scheduling against arrival order on a cold pool.

``connect`` mode (``bench-serve --connect host:port [--connect ...]``)
drives *running* servers instead of building one: client thread ``i``
connects to address ``i mod N`` (round-robin), so one generator can load
a shard router, the routed and unrouted endpoints side by side, or
several workers at once. Engine-side statistics (cache, latch, batch
scheduling) are whatever the target's ``stats`` op reports.
"""

from __future__ import annotations

import json
import math
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.metric_names import BUFFER_HITS, DISK_ACCESSES
from repro.obs.trace import TRACER
from repro.service.batch import BatchExecutor, Request
from repro.service.engine import QueryEngine
from repro.service.server import MapServer
from repro.service.snapshot import open_index


def percentile(sorted_values: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending list (nearest-rank)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class BenchReport:
    """Everything one ``bench-serve`` run measured."""

    structure: str
    source: str
    segments: int
    threads: int
    requests: int
    errors: int
    elapsed_seconds: float
    throughput_qps: float
    latency_ms: Dict[str, float]
    cache: Dict[str, Any]
    latch: Dict[str, Any]
    totals: Dict[str, int]
    counters_consistent: bool
    batch_comparison: Dict[str, int] = field(default_factory=dict)
    obs: Dict[str, Any] = field(default_factory=dict)

    @property
    def batch_improvement(self) -> float:
        """Fractional disk-access reduction of Morton over arrival order."""
        arrival = self.batch_comparison.get("arrival", 0)
        morton = self.batch_comparison.get("morton", 0)
        return (arrival - morton) / arrival if arrival else 0.0


def _workload(
    index, n: int, rng: random.Random, window_frac: float = 0.03
) -> List[Request]:
    """A mixed workload drawn from the served map itself.

    Query sites come from stored segments via :meth:`SegmentTable.peek`
    (no pool traffic, so generation does not perturb the measurements);
    the mix is 50% point, 30% window, 20% nearest.
    """
    table = index.ctx.segments
    count = len(table)
    if count == 0:
        raise ValueError("cannot generate a workload over an empty index")
    sample = [table.peek(rng.randrange(count)) for _ in range(min(count, 256))]
    xs = [c for s in sample for c in (s.x1, s.x2)]
    ys = [c for s in sample for c in (s.y1, s.y2)]
    extent = max(max(xs) - min(xs), max(ys) - min(ys), 1.0)
    half = extent * window_frac / 2.0

    requests: List[Request] = []
    for _ in range(n):
        seg = table.peek(rng.randrange(count))
        roll = rng.random()
        if roll < 0.5:
            x, y = (seg.x1, seg.y1) if rng.random() < 0.5 else (seg.x2, seg.y2)
            requests.append({"op": "point", "x": x, "y": y})
        elif roll < 0.8:
            cx = (seg.x1 + seg.x2) / 2.0
            cy = (seg.y1 + seg.y2) / 2.0
            requests.append(
                {
                    "op": "window",
                    "x1": cx - half,
                    "y1": cy - half,
                    "x2": cx + half,
                    "y2": cy + half,
                }
            )
        else:
            requests.append(
                {
                    "op": "nearest",
                    "x": seg.x1 + rng.uniform(-half, half),
                    "y": seg.y1 + rng.uniform(-half, half),
                    "k": rng.randint(1, 3),
                }
            )
    return requests


def parse_address(spec: str) -> Tuple[str, int]:
    """``host:port`` -> ``(host, port)`` (the ``--connect`` CLI shape)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must look like host:port, got {spec!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"bad port in address {spec!r}") from None


def _uniform_workload(
    n: int, rng: random.Random, world_size: float, window_frac: float = 0.03
) -> List[Request]:
    """The same point/window/nearest mix as :func:`_workload`, drawn
    uniformly over the world square (connect mode has no local table to
    sample sites from)."""
    half = world_size * window_frac / 2.0
    requests: List[Request] = []
    for _ in range(n):
        x, y = rng.uniform(0, world_size), rng.uniform(0, world_size)
        roll = rng.random()
        if roll < 0.5:
            requests.append({"op": "point", "x": x, "y": y})
        elif roll < 0.8:
            requests.append(
                {
                    "op": "window",
                    "x1": x - half,
                    "y1": y - half,
                    "x2": x + half,
                    "y2": y + half,
                }
            )
        else:
            requests.append(
                {"op": "nearest", "x": x, "y": y, "k": rng.randint(1, 3)}
            )
    return requests


def _client(
    address: Tuple[str, int],
    requests: List[Request],
    latencies: List[float],
    errors: List[int],
) -> None:
    """One client thread: a single connection, requests in sequence.

    Always terminates and always appends to ``errors`` exactly once:
    a dead or dying server turns the unsent remainder into counted
    failures instead of killing the thread with a traceback (the
    spawner joins unconditionally and must be able to trust the
    accounting it joins on).
    """
    failed = 0
    sent = 0
    try:
        with socket.create_connection(address, timeout=60.0) as sock:
            with sock.makefile("rwb") as fh:
                for request in requests:
                    start = time.perf_counter()
                    fh.write(json.dumps(request, separators=(",", ":")).encode("utf-8") + b"\n")
                    fh.flush()
                    line = fh.readline()
                    sent += 1
                    latencies.append(time.perf_counter() - start)
                    if not line or not json.loads(line).get("ok"):
                        failed += 1
    except OSError:
        failed += len(requests) - sent  # connection lost: rest never ran
    errors.append(failed)


def _connect_bench(
    addresses: List[Tuple[str, int]],
    threads: int,
    requests: int,
    seed: int,
    world_size: Optional[float],
) -> BenchReport:
    """Drive already-running servers, round-robin across ``addresses``."""
    import threading as _threading

    from repro.core.interface import WORLD_SIZE
    from repro.metric_names import COUNTER_FIELDS
    from repro.service.server import send_request

    if world_size is None:
        world_size = float(WORLD_SIZE)
    rng = random.Random(seed)
    workload = _uniform_workload(requests, rng, world_size)
    shares = [workload[i::threads] for i in range(threads)]
    errors: List[int] = []
    per_thread: List[List[float]] = [[] for _ in range(threads)]
    workers = [
        _threading.Thread(
            target=_client,
            name=f"loadgen-{i}",
            args=(
                addresses[i % len(addresses)],
                shares[i],
                per_thread[i],
                errors,
            ),
        )
        for i in range(threads)
    ]
    start = time.perf_counter()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    elapsed = time.perf_counter() - start
    latencies = sorted(lat for bucket in per_thread for lat in bucket)

    # Whatever the first target's stats op reports: a single server and
    # the shard router both expose "totals" and "counters_consistent".
    structure, segments = "remote", 0
    totals = dict.fromkeys([*COUNTER_FIELDS, DISK_ACCESSES], 0)
    consistent = True
    try:
        stats = send_request(addresses[0], {"op": "stats"})
    except OSError:
        stats = {"ok": False}
    if stats.get("ok"):
        result = stats["result"]
        totals = dict(result.get("totals", totals))
        consistent = bool(result.get("counters_consistent", True))
        if "index" in result:
            structure = result["index"]["kind"]
            segments = result["index"]["segments"]
        elif "shards" in result:
            structure = f"routed[{len(result['shards'])}]"
            segments = max(
                (s["index"]["segments"] for s in result["shards"].values()),
                default=0,
            )
    return BenchReport(
        structure=structure,
        source="connect:" + ",".join(f"{h}:{p}" for h, p in addresses),
        segments=segments,
        threads=threads,
        requests=len(latencies),
        errors=sum(errors),
        elapsed_seconds=elapsed,
        throughput_qps=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_ms={
            "p50": percentile(latencies, 0.50) * 1e3,
            "p90": percentile(latencies, 0.90) * 1e3,
            "p99": percentile(latencies, 0.99) * 1e3,
            "max": (latencies[-1] if latencies else 0.0) * 1e3,
        },
        cache={"hits": 0, "misses": 0, "hit_rate": 0.0, "invalidations": 0},
        latch={"acquisitions": 0, "contended": 0},
        totals=totals,
        counters_consistent=consistent,
    )


def bench_serve(
    county: str = "charles",
    scale: float = 0.02,
    structure: str = "R*",
    threads: int = 4,
    requests: int = 200,
    snapshot: Optional[str] = None,
    cache_capacity: int = 256,
    batch_queries: int = 120,
    seed: int = 0,
    trace: bool = False,
    slow_ms: Optional[float] = None,
    connect: Optional[List[Tuple[str, int]]] = None,
    world_size: Optional[float] = None,
) -> BenchReport:
    """Run the full closed-loop benchmark; see the module docstring.

    With ``trace=True`` the process tracer is enabled for the run (and
    restored afterwards), so the report's ``obs`` section shows how many
    traces the workload produced; ``slow_ms`` arms the engine's
    slow-query log at that threshold. A non-empty ``connect`` list
    switches to connect mode: no server is built, and the client threads
    round-robin over the given addresses.
    """
    import threading as _threading

    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if connect:
        return _connect_bench(connect, threads, requests, seed, world_size)
    if snapshot is not None:
        index = open_index(snapshot)
        source = f"snapshot:{snapshot}"
    else:
        from repro.data import generate_county
        from repro.harness.experiment import build_structure

        built = build_structure(structure, generate_county(county, scale=scale))
        index = built.index
        source = f"built:{county}@{scale}"

    engine = QueryEngine(index, cache_capacity=cache_capacity, slow_ms=slow_ms)
    server = MapServer(engine)
    server.start_background()
    was_tracing = TRACER.enabled
    if trace:
        TRACER.enable()
    try:
        rng = random.Random(seed)
        workload = _workload(index, requests, rng)
        shares = [workload[i::threads] for i in range(threads)]
        latencies: List[float] = []
        errors: List[int] = []
        per_thread: List[List[float]] = [[] for _ in range(threads)]
        workers = [
            _threading.Thread(
                target=_client,
                name=f"loadgen-{i}",
                args=(server.address, shares[i], per_thread[i], errors),
            )
            for i in range(threads)
        ]
        start = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - start
        for bucket in per_thread:
            latencies.extend(bucket)
        latencies.sort()

        # Batch scheduling study: same requests, cold pool, cache off.
        compare_load = [
            r for r in _workload(index, batch_queries, random.Random(seed + 1))
            if r["op"] in ("point", "window")
        ]
        comparison = BatchExecutor(engine).compare_orders(compare_load)

        report = BenchReport(
            structure=index.name,
            source=source,
            segments=len(index.ctx.segments),
            threads=threads,
            requests=len(latencies),
            errors=sum(errors),
            elapsed_seconds=elapsed,
            throughput_qps=len(latencies) / elapsed if elapsed > 0 else 0.0,
            latency_ms={
                "p50": percentile(latencies, 0.50) * 1e3,
                "p90": percentile(latencies, 0.90) * 1e3,
                "p99": percentile(latencies, 0.99) * 1e3,
                "max": (latencies[-1] if latencies else 0.0) * 1e3,
            },
            cache=engine.cache.stats(),
            latch=engine.latch.stats(),
            totals=dict(engine.stats()["totals"]),
            counters_consistent=engine.counters_consistent(),
            batch_comparison={
                order: result.disk_accesses
                for order, result in comparison.items()
            },
            obs={
                "tracing": TRACER.stats(),
                "slow_queries": engine.slow_log.stats(),
            },
        )
    finally:
        if trace and not was_tracing:
            TRACER.disable()
        server.stop()  # joins the accept thread: nothing outlives the bench
    return report


def format_bench_report(report: BenchReport) -> str:
    lat = report.latency_ms
    lines = [
        f"map server benchmark -- {report.structure} over {report.source}",
        f"  segments        {report.segments}",
        f"  clients         {report.threads} threads, 1 connection each",
        f"  requests        {report.requests} ({report.errors} errors)",
        f"  elapsed         {report.elapsed_seconds:.3f} s "
        f"({report.throughput_qps:.0f} q/s)",
        f"  latency (ms)    p50={lat['p50']:.2f}  p90={lat['p90']:.2f}  "
        f"p99={lat['p99']:.2f}  max={lat['max']:.2f}",
        f"  cache           {report.cache['hits']} hits / "
        f"{report.cache['misses']} misses "
        f"(hit rate {report.cache['hit_rate']:.0%}, "
        f"{report.cache['invalidations']} invalidations)",
        f"  disk accesses   {report.totals[DISK_ACCESSES]} "
        f"(buffer hits {report.totals[BUFFER_HITS]})",
        f"  latch           {report.latch['acquisitions']} acquisitions, "
        f"{report.latch['contended']} contended",
        f"  counters        per-session sums match totals: "
        f"{report.counters_consistent}",
    ]
    if report.batch_comparison:
        arrival = report.batch_comparison["arrival"]
        morton = report.batch_comparison["morton"]
        lines.append(
            f"  batch order     arrival={arrival} vs morton={morton} disk "
            f"accesses ({report.batch_improvement:.0%} fewer via Morton sort)"
        )
    tracing = report.obs.get("tracing", {})
    if tracing.get("enabled"):
        slow = report.obs.get("slow_queries", {})
        lines.append(
            f"  tracing         {tracing['finished']} traces captured "
            f"({tracing['buffered']} buffered, "
            f"{slow.get('recorded', 0)} slow queries)"
        )
    return "\n".join(lines)
