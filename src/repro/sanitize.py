"""Runtime lock-order sanitizer: lockdep for the map service.

The static pass (:mod:`repro.analysis.concurrency`) proves discipline
over the code that exists; this module watches the code that *runs*. It
is the dynamic half of the concurrency sanitizer: every instrumented
lock acquisition is recorded against the set of locks the acquiring
thread already holds, building a global lock-ordering graph across the
whole process. A **potential deadlock** is reported the moment an
acquisition closes a cycle in that graph — two threads never have to
actually collide, one thread taking A→B on Monday and another taking
B→A on Tuesday is enough — which is exactly what a crash-injection or
shard-smoke run needs: the hazard is caught on any schedule, not just
the unlucky one.

Design constraints, in order:

1. **Zero cost when disabled.** The service takes several locks per
   request (latch, cache, histogram); the sanitizer must not tax the
   hot path when off. Instrumented call sites are guarded by a single
   ``if SANITIZER.enabled:`` attribute test (the same pattern as
   ``TRACER.enabled`` in :mod:`repro.obs.trace`), and
   :class:`TrackedLock` delegates straight to the underlying
   ``threading`` primitive on the disabled path.
2. **No repro imports.** Every layer (``storage``, ``wal``, ``obs``,
   ``service``, ``shard``) hooks into this module, so it must sit below
   all of them: stdlib only, no cycles.
3. **Observation, not enforcement.** The sanitizer never blocks, never
   raises from a hook, and keeps serving after recording a cycle; the
   report is consumed at the end of a test (the ``lock_sanitizer``
   pytest fixture asserts no potential deadlocks) or scraped from
   ``stats()``/Prometheus during a smoke run.

Enable with ``REPRO_SANITIZE=1`` in the environment (picked up at
import, so worker subprocesses inherit it) or the ``--sanitize`` flag on
``serve`` / ``route`` / ``shard-worker`` / ``bench-serve``.

What is recorded:

* ``acquisitions`` — total tracked lock acquisitions.
* ``edges`` — distinct ordered pairs (A held while B acquired), each
  with the thread name and ``file:line`` of the acquisition that first
  created it.
* ``potential_deadlocks`` — cycles in the edge graph, reported once per
  distinct cycle with both edges' provenance.
* ``held_across_blocking`` — counts of blocking operations (fsync,
  socket I/O, …) executed while holding a tracked lock, keyed by
  ``(operation, site, held-locks)``. These are *counters*, not
  failures: the WAL's group-commit fsync under its lock and the
  checkpoint's fsyncs under the buffer-pool latch are sanctioned (and
  carry static-pass pragmas); the runtime tally makes the cost visible
  in docs/metrics.md rather than silently absorbed.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SANITIZER",
    "LockOrderSanitizer",
    "TrackedLock",
    "TrackedCondition",
    "enabled_from_env",
    "make_condition",
    "make_lock",
]

#: Environment switch; truthy values ("1", "true", "yes", "on") enable.
ENV_VAR = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def enabled_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    env = os.environ if environ is None else environ
    return env.get(ENV_VAR, "").strip().lower() in _TRUTHY


def _call_site(depth: int) -> str:
    """``file:line`` of the instrumented caller (best effort, cheap)."""
    try:
        frame = sys._getframe(depth)
    except ValueError:  # shallower stack than expected (embedded use)
        return "?"
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


class LockOrderSanitizer:
    """Process-wide acquisition recorder and ordering-graph keeper.

    Thread-safety: per-thread held stacks live in a ``threading.local``;
    the shared graph and report lists are guarded by one internal mutex
    that is only ever taken by sanitizer hooks (never while a hook holds
    it calls out), so the sanitizer itself cannot deadlock or invert.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._local = threading.local()
        self._mutex = threading.Lock()
        # (held_name, acquired_name) -> {"count", "thread", "site"}
        self._edges: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self._succ: Dict[str, List[str]] = {}  # adjacency for cycle search
        self._cycles: List[Dict[str, Any]] = []
        self._cycle_keys: set = set()
        # (op, site, held) -> count
        self._blocking: Dict[Tuple[str, str, str], int] = {}
        self.acquisitions = 0

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded state (per-test isolation)."""
        with self._mutex:
            self._edges.clear()
            self._succ.clear()
            self._cycles.clear()
            self._cycle_keys.clear()
            self._blocking.clear()
            self.acquisitions = 0

    # -- per-thread held stack -----------------------------------------
    def _held(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def held_locks(self) -> Tuple[str, ...]:
        """Names of locks the calling thread currently holds (oldest first)."""
        return tuple(self._held())

    # -- hooks (called from instrumented primitives) -------------------
    def note_acquire(self, name: str) -> None:
        """Record that the calling thread now holds ``name``."""
        held = self._held()
        site = _call_site(3)  # note_acquire <- TrackedLock/Latch <- caller
        with self._mutex:
            self.acquisitions += 1
            for prior in held:
                if prior == name:
                    continue  # reentrant hold, not an ordering edge
                edge = (prior, name)
                if edge in self._edges:
                    self._edges[edge]["count"] += 1
                    continue
                self._edges[edge] = {
                    "count": 1,
                    "thread": threading.current_thread().name,
                    "site": site,
                }
                self._succ.setdefault(prior, []).append(name)
                path = self._find_path(name, prior)
                if path is not None:
                    self._record_cycle(path + [name], edge)
        held.append(name)

    def note_release(self, name: str) -> None:
        """Record that the calling thread dropped ``name``.

        Tolerates unknown names (the sanitizer may be enabled while
        locks are already held, or disabled between acquire/release).
        """
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    def note_blocking(self, op: str, where: str) -> None:
        """Record a blocking operation (fsync, socket I/O) at ``where``.

        Only tallied when the calling thread holds a tracked lock; the
        unlocked case is ordinary I/O and not the sanitizer's business.
        """
        held = self._held()
        if not held:
            return
        key = (op, where, "+".join(held))
        with self._mutex:
            self._blocking[key] = self._blocking.get(key, 0) + 1

    # -- graph ---------------------------------------------------------
    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS path start→goal over recorded edges (``None`` if absent)."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self._succ.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def _record_cycle(self, cycle: List[str], closing: Tuple[str, str]) -> None:
        """Report ``cycle`` (first == last) once per distinct node set."""
        key = frozenset(cycle)
        if key in self._cycle_keys:
            return
        self._cycle_keys.add(key)
        edges = []
        for a, b in zip(cycle, cycle[1:]):
            info = self._edges.get((a, b), {})
            edges.append(
                {
                    "from": a,
                    "to": b,
                    "thread": info.get("thread", "?"),
                    "site": info.get("site", "?"),
                }
            )
        self._cycles.append(
            {
                "cycle": cycle,
                "edges": edges,
                "closed_by": f"{closing[0]} -> {closing[1]}",
            }
        )

    # -- reporting -----------------------------------------------------
    def report(self) -> Dict[str, Any]:
        with self._mutex:
            return {
                "enabled": self.enabled,
                "acquisitions": self.acquisitions,
                "edges": len(self._edges),
                "potential_deadlocks": [dict(c) for c in self._cycles],
                "held_across_blocking": {
                    f"{op}@{where} holding {held}": count
                    for (op, where, held), count in sorted(self._blocking.items())
                },
            }

    def format_report(self) -> str:
        rep = self.report()
        lines = [
            f"lock sanitizer: {rep['acquisitions']} acquisitions, "
            f"{rep['edges']} ordering edge(s), "
            f"{len(rep['potential_deadlocks'])} potential deadlock(s)"
        ]
        for cyc in rep["potential_deadlocks"]:
            lines.append("  POTENTIAL DEADLOCK: " + " -> ".join(cyc["cycle"]))
            for e in cyc["edges"]:
                lines.append(
                    f"    {e['from']} held while acquiring {e['to']} "
                    f"[thread {e['thread']} at {e['site']}]"
                )
        for desc, count in rep["held_across_blocking"].items():
            lines.append(f"  blocking under lock: {desc} x{count}")
        return "\n".join(lines)


#: The process-wide sanitizer all instrumented primitives report to.
SANITIZER = LockOrderSanitizer()
if enabled_from_env():  # inherited by worker subprocesses via the env
    SANITIZER.enable()


class TrackedLock:
    """A named ``threading.Lock``/``RLock`` that reports to the sanitizer.

    Drop-in for the module-level locks across ``wal``/``obs``/``service``/
    ``shard``: supports ``with``, ``acquire``/``release``, and ``locked``.
    The name is the lock's identity in the ordering graph, so it should
    be unique per *role* (``wal.log``, ``service.cache``) — two instances
    of the same role sharing a name is fine (they share an ordering
    contract), two roles sharing a name is not.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = name
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got and SANITIZER.enabled:
            SANITIZER.note_acquire(self.name)
        return got

    def release(self) -> None:
        if SANITIZER.enabled:
            SANITIZER.note_release(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TrackedLock":
        self._inner.acquire()
        if SANITIZER.enabled:
            SANITIZER.note_acquire(self.name)
        return self

    def __exit__(self, *exc: Any) -> None:
        if SANITIZER.enabled:
            SANITIZER.note_release(self.name)
        self._inner.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TrackedLock({self.name!r})"


def make_lock(name: str, reentrant: bool = False) -> Any:
    """A role lock: tracked iff the sanitizer is enabled *right now*.

    The sanitizer is switched on before any lock-owning object exists --
    at import via ``REPRO_SANITIZE`` or by ``--sanitize`` before the
    engine/store/router is constructed -- so deciding per *construction*
    rather than per *acquisition* is sound, and it buys back the entire
    disabled-path cost: an untracked role lock is a plain C
    ``threading.Lock`` again, not a Python wrapper that re-checks a flag
    it will never see flip. (Enabling the sanitizer after an object was
    built leaves that object's locks untracked; every supported entry
    point enables first.)
    """
    if SANITIZER.enabled:
        return TrackedLock(name, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()


def make_condition(name: str) -> Any:
    """A role condition variable: tracked iff enabled now (see make_lock)."""
    if SANITIZER.enabled:
        return TrackedCondition(name)
    return threading.Condition()


class TrackedCondition:
    """A named ``threading.Condition`` that reports to the sanitizer.

    ``wait()`` releases the underlying lock, but for ordering purposes
    the thread still *owns* the monitor — any lock it acquires after
    waking is ordered after this one, which is exactly the conservative
    edge we want for the router's drain gate.
    """

    __slots__ = ("name", "_cond")

    def __init__(self, name: str) -> None:
        self.name = name
        self._cond = threading.Condition()

    def __enter__(self) -> "TrackedCondition":
        self._cond.__enter__()
        if SANITIZER.enabled:
            SANITIZER.note_acquire(self.name)
        return self

    def __exit__(self, *exc: Any) -> None:
        if SANITIZER.enabled:
            SANITIZER.note_release(self.name)
        self._cond.__exit__(*exc)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._cond.wait(timeout)

    def wait_for(self, predicate: Any, timeout: Optional[float] = None) -> Any:
        return self._cond.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TrackedCondition({self.name!r})"
