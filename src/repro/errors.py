"""The project-wide exception hierarchy.

Every layer used to define its own root error (``CodecError`` in
:mod:`repro.storage.codec`, ``WalError`` in :mod:`repro.wal.records`),
which made "did *our* stack fail, or did Python?" an unanswerable
question at the service boundary. This module is the single home:

* :class:`ReproError` -- the root; anything raised *by design* anywhere
  in the package derives from it, so the server can distinguish a
  structured failure (serve an error envelope) from a genuine bug
  (serve ``internal`` and keep the stack trace).
* :class:`CodecError` -- a page payload or snapshot cannot be
  (de)serialized. Also a :class:`ValueError`, as it always was.
* :class:`SnapshotError` -- a snapshot *manifest* is missing, corrupt,
  or unsupported. A subclass of :class:`CodecError` so existing
  ``except CodecError`` recovery paths keep catching it.
* :class:`WalError` -- the write-ahead log or checkpoint directory
  cannot be trusted. Also a :class:`ValueError`, as it always was.
* :class:`ProtocolError` -- a client request is malformed: unknown op,
  bad arguments, an operation the server cannot honour. Carries the
  wire-protocol error ``code`` served in the error envelope (see
  ``docs/architecture.md`` for the code table).
* :class:`NotDurableError` -- a durability-only operation (checkpoint)
  was asked of a non-durable engine. Subclasses both
  :class:`ProtocolError` (it maps to the ``not_durable`` wire code) and
  :class:`RuntimeError` (its historical type, so existing callers'
  ``except RuntimeError`` still works).
* :class:`ShardUnavailableError` -- the scatter-gather router could not
  reach a shard worker. A :class:`ProtocolError` carrying the
  ``shard_unavailable`` wire code plus the failing ``shard_id``, so the
  error envelope can attribute the failure to the right process.

The old import locations (``repro.storage.CodecError``,
``repro.wal.WalError``, ...) re-export these classes, so no caller
breaks; new code should import from here.
"""

from __future__ import annotations

#: Wire-protocol error codes served in the error envelope
#: ``{"ok": false, "error": {"code": ..., "message": ...}}``.
ERROR_CODES = (
    "unknown_op",    # the request's "op" names no operation
    "bad_args",      # a required field is missing or mis-typed
    "unknown_seg",   # a segment id outside the segment table
    "not_durable",   # checkpoint asked of a server without --wal
    "shard_unavailable",  # the router could not reach a shard worker
    "server_overloaded",  # admission control: in-flight high-water mark hit
    "frame_too_large",    # request line/frame exceeds the server's cap
    "internal",      # anything else: a server-side bug, not the client
)


class ReproError(Exception):
    """Root of every exception this package raises by design."""


class CodecError(ReproError, ValueError):
    """A page payload or snapshot cannot be (de)serialized."""


class SnapshotError(CodecError):
    """A snapshot manifest is missing, corrupt, or unsupported."""


class WalError(ReproError, ValueError):
    """The write-ahead log (or checkpoint manifest) cannot be trusted."""


class ProtocolError(ReproError, ValueError):
    """A malformed or unsupported client request.

    ``code`` is the wire-protocol error code (one of :data:`ERROR_CODES`)
    the server puts in the error envelope.
    """

    def __init__(self, message: str, code: str = "bad_args") -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code


class NotDurableError(ProtocolError, RuntimeError):
    """A durability-only operation was asked of a non-durable engine."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="not_durable")


class ShardUnavailableError(ProtocolError):
    """The router could not reach (or got no reply from) a shard worker.

    ``shard_id`` names the failing shard so the error envelope can
    attribute the failure; the router serves this as a structured
    partial-result error rather than hanging the client connection.
    """

    def __init__(self, message: str, shard_id: str) -> None:
        super().__init__(message, code="shard_unavailable")
        self.shard_id = shard_id


class ServerOverloadedError(ProtocolError):
    """Admission control rejected the request.

    Served when a connection (or the whole server) already has its
    maximum number of requests in flight. The request was *not*
    executed; a client should back off and retry. Maps to the
    ``server_overloaded`` wire code.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, code="server_overloaded")


class FrameTooLargeError(ProtocolError):
    """A request line (v1) or frame (v2) exceeds the server's size cap.

    The oversized payload is drained and discarded, the client gets this
    as a structured ``frame_too_large`` error, and the connection stays
    usable -- one huge request must not kill the stream behind it (nor
    the server's memory).
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, code="frame_too_large")
