"""Plain-text rendering of maps and decompositions.

Figure-1-style ASCII pictures for terminals, docs, and debugging: a
segment map rasterized onto a character grid, optionally with the PMR
quadtree's block boundaries or an R-tree's leaf MBRs drawn over it.

These renderers read geometry through the instrumentation bypasses
(``peek`` / direct directory access), so drawing a picture never
perturbs an experiment's counters or buffer pool.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.geometry import Rect, Segment


def _blank(width: int, height: int) -> List[List[str]]:
    return [[" "] * width for _ in range(height)]


def _to_cell(x: float, y: float, world: float, width: int, height: int):
    cx = min(int(x / world * width), width - 1)
    cy = min(int(y / world * height), height - 1)
    return cx, height - 1 - cy  # y axis points up


def _draw_segment(grid, seg: Segment, world, width, height, ch="*") -> None:
    """Rasterize with a simple DDA walk."""
    x1, y1 = _to_cell(seg.x1, seg.y1, world, width, height)
    x2, y2 = _to_cell(seg.x2, seg.y2, world, width, height)
    steps = max(abs(x2 - x1), abs(y2 - y1), 1)
    for i in range(steps + 1):
        t = i / steps
        cx = round(x1 + t * (x2 - x1))
        cy = round(y1 + t * (y2 - y1))
        if 0 <= cy < height and 0 <= cx < width:
            grid[cy][cx] = ch


def _draw_rect_outline(grid, r: Rect, world, width, height) -> None:
    x1, y1 = _to_cell(r.xmin, r.ymin, world, width, height)
    x2, y2 = _to_cell(r.xmax, r.ymax, world, width, height)
    top, bottom = min(y1, y2), max(y1, y2)
    left, right = min(x1, x2), max(x1, x2)
    for cx in range(left, right + 1):
        for cy in (top, bottom):
            if grid[cy][cx] == " ":
                grid[cy][cx] = "-"
    for cy in range(top, bottom + 1):
        for cx in (left, right):
            if grid[cy][cx] == " ":
                grid[cy][cx] = "|"
            elif grid[cy][cx] == "-":
                grid[cy][cx] = "+"


def render_segments(
    segments: Sequence[Segment],
    world_size: float,
    width: int = 64,
    height: int = 32,
    overlay_rects: Optional[Iterable[Rect]] = None,
) -> str:
    """An ASCII picture of a segment map, optionally with rectangles.

    Returns ``height`` lines of ``width`` characters, framed.
    """
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    grid = _blank(width, height)
    if overlay_rects is not None:
        for r in overlay_rects:
            _draw_rect_outline(grid, r, world_size, width, height)
    for seg in segments:
        _draw_segment(grid, seg, world_size, width, height)
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}"


def render_pmr_blocks(pmr, width: int = 64, height: int = 32) -> str:
    """Map plus the PMR (or PM) quadtree's leaf-block boundaries."""
    segments = [
        pmr.ctx.segments.peek(i) for i in range(len(pmr.ctx.segments))
    ]
    rects = [b.rect(pmr.world_size) for b in pmr.leaf_blocks()]
    return render_segments(
        segments, pmr.world_size, width, height, overlay_rects=rects
    )


def render_rtree_leaves(tree, world_size: float, width: int = 64, height: int = 32) -> str:
    """Map plus the R-tree's leaf-node MBRs (Figure 2b style)."""
    segments = [
        tree.ctx.segments.peek(i) for i in range(len(tree.ctx.segments))
    ]
    rects = []
    stack = [tree._root_id]
    while stack:
        node = tree.ctx.disk.peek(stack.pop())
        if node.is_leaf:
            if node.entries:
                rects.append(Rect.union_of(r for r, _ in node.entries))
        else:
            stack.extend(child for _, child in node.entries)
    return render_segments(
        segments, world_size, width, height, overlay_rects=rects
    )
