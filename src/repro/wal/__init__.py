"""Durability for the map server: write-ahead log, checkpoints, recovery.

The paper's structures are disk-resident indexes over *dynamic* maps --
road segments are inserted and deleted as maps change -- but a snapshot
alone loses every mutation since it was written. This package closes the
gap:

* :mod:`repro.wal.records` -- logical mutation records (insert/delete
  with monotonically increasing LSNs), length-prefixed and CRC-checked.
* :mod:`repro.wal.log` -- :class:`WriteAheadLog`: append-only file,
  fsynced group-commit batching, torn-tail-tolerant scanning.
* :mod:`repro.wal.store` -- :class:`DurableStore`: the checkpoint +
  manifest + log directory, atomic checkpointing that folds the log
  into a fresh snapshot, and :func:`open_durable` crash recovery that
  replays the log suffix (net inserts bulk-applied in Morton/Hilbert
  order, the space-filling-curve packing argument of bulk loading).
* :mod:`repro.wal.crashtest` -- the crash-injection harness (imported
  on demand; it pulls in the analysis and service layers).

Wire-up: ``QueryEngine(index, store=...)`` logs then applies mutations,
``MapServer`` exposes ``{"op": "checkpoint"}``, and the CLI grows
``serve --wal DIR``, ``checkpoint``, and ``recover`` commands. The fsck
(``python -m repro check --wal DIR``) validates a store end to end with
rules FS07..FS10.
"""

from repro.wal.log import LogScan, WriteAheadLog, scan_log
from repro.wal.records import (
    DeleteRecord,
    InsertRecord,
    WalError,
    WalRecord,
    decode_record,
    encode_record,
    frame_record,
)
from repro.wal.store import (
    DurableStore,
    ReplayResult,
    SimulatedCrash,
    open_durable,
    replay_records,
)

__all__ = [
    "DeleteRecord",
    "DurableStore",
    "InsertRecord",
    "LogScan",
    "ReplayResult",
    "SimulatedCrash",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "decode_record",
    "encode_record",
    "frame_record",
    "open_durable",
    "replay_records",
    "scan_log",
]
