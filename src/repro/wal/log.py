"""The append-only, CRC-checked, group-committed write-ahead log.

One log file (``repro.wal``) per durable store. The file starts with a
16-byte header -- magic + the *base LSN*, i.e. the LSN of the checkpoint
this log's records follow -- and then holds framed records
(:mod:`repro.wal.records`) with LSNs ``base_lsn + 1, base_lsn + 2, ...``.

Durability protocol:

* :meth:`WriteAheadLog.append` assigns the next LSN and writes the frame
  to the OS; it counts as one ``log_appends``.
* :meth:`WriteAheadLog.commit` makes everything appended so far durable.
  With ``group_commit == 1`` every commit fsyncs; with a larger batch
  size the fsync is deferred until ``group_commit`` records are pending
  (or someone calls :meth:`sync` explicitly), trading a bounded number
  of acknowledged-but-lost records on power failure for far fewer
  fsyncs. ``fsyncs`` counts the actual syscalls.
* :func:`scan_log` reads a log back tolerating a *torn tail*: a final
  record cut mid-frame, mid-payload, or failing its CRC ends the scan at
  the last good boundary instead of failing recovery.
  :meth:`WriteAheadLog.open` truncates the torn bytes away (repair) so
  the next append extends a clean log.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.geometry import Segment
from repro.obs.trace import TRACER
from repro.sanitize import SANITIZER, make_lock
from repro.wal.records import (
    FRAME,
    MAX_PAYLOAD,
    DeleteRecord,
    InsertRecord,
    WalError,
    WalRecord,
    decode_record,
    frame_record,
)

MAGIC = b"RPWAL1\x00\x00"
HEADER = struct.Struct("<8sQ")  # magic, base_lsn


@dataclass
class LogScan:
    """Everything a reader can learn from one pass over a log file."""

    base_lsn: int
    records: List[WalRecord]
    #: File offset of each intact record's frame (crash-injection anchor).
    offsets: List[int]
    #: File offset just past the last intact record (truncation target).
    valid_bytes: int
    file_size: int
    #: ``None`` for a clean log, else why the scan stopped early.
    tail_error: Optional[str] = None

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else self.base_lsn

    @property
    def torn_bytes(self) -> int:
        return self.file_size - self.valid_bytes


def read_log_header(buf: bytes) -> int:
    """Validate the header bytes, returning the base LSN."""
    if len(buf) < HEADER.size:
        raise WalError(
            f"log header truncated: {len(buf)} bytes, need {HEADER.size}"
        )
    magic, base_lsn = HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise WalError(f"bad log magic {magic!r} (not a repro.wal file?)")
    return base_lsn


def scan_log(path: str) -> LogScan:
    """Scan a log file, stopping (not failing) at a torn or corrupt tail.

    Only a damaged *header* raises: without the magic and base LSN there
    is nothing to recover. Any record-level damage -- a frame cut short,
    a payload CRC mismatch, an undecodable payload -- marks everything
    from that offset on as the torn tail; framing cannot be resynced
    past a bad length field, so the scan cannot continue.
    """
    with open(path, "rb") as fh:
        buf = fh.read()
    base_lsn = read_log_header(buf)
    records: List[WalRecord] = []
    offsets: List[int] = []
    offset = HEADER.size
    tail_error: Optional[str] = None
    while offset < len(buf):
        if len(buf) - offset < FRAME.size:
            tail_error = "torn frame header"
            break
        length, crc = FRAME.unpack_from(buf, offset)
        if length > MAX_PAYLOAD:
            tail_error = f"implausible payload length {length} (corrupt frame)"
            break
        if offset + FRAME.size + length > len(buf):
            tail_error = "torn payload"
            break
        payload = buf[offset + FRAME.size : offset + FRAME.size + length]
        if zlib.crc32(payload) != crc:
            tail_error = "payload CRC mismatch"
            break
        try:
            records.append(decode_record(payload))
        except WalError as exc:
            tail_error = str(exc)
            break
        offsets.append(offset)
        offset += FRAME.size + length
    return LogScan(
        base_lsn=base_lsn,
        records=records,
        offsets=offsets,
        valid_bytes=offset,
        file_size=len(buf),
        tail_error=tail_error,
    )


def ensure_contiguous(scan: LogScan, path: str) -> None:
    """Raise unless the scanned LSNs run ``base_lsn + 1, +2, ...``."""
    expected = scan.base_lsn + 1
    for record in scan.records:
        if record.lsn != expected:
            raise WalError(
                f"{path}: LSN {record.lsn} where {expected} was expected; "
                f"refusing to replay a log with gaps"
            )
        expected += 1


class WriteAheadLog:
    """One append-only log file with group-commit batching.

    Thread-safe: appends, commits, and rotation serialize on an internal
    lock (the engine additionally orders appends against index applies
    under its latch, so LSN order always matches apply order).
    """

    def __init__(
        self, path: str, base_lsn: int, last_lsn: int, group_commit: int = 1
    ) -> None:
        if group_commit < 1:
            raise ValueError(f"group_commit must be >= 1, got {group_commit}")
        self.path = os.fspath(path)
        self.base_lsn = base_lsn
        self.last_lsn = last_lsn
        self.group_commit = group_commit
        self.log_appends = 0
        self.fsyncs = 0
        self._pending = 0
        self._lock = make_lock("wal.log")
        self._fh = open(self.path, "ab")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, path: str, base_lsn: int = 0, group_commit: int = 1
    ) -> "WriteAheadLog":
        """Create a fresh log whose records will follow ``base_lsn``."""
        path = os.fspath(path)
        with open(path, "xb") as fh:
            fh.write(HEADER.pack(MAGIC, base_lsn))
            fh.flush()
            os.fsync(fh.fileno())
        return cls(path, base_lsn=base_lsn, last_lsn=base_lsn, group_commit=group_commit)

    @classmethod
    def open(
        cls, path: str, group_commit: int = 1, repair: bool = True
    ) -> "WriteAheadLog":
        """Reopen an existing log for appending.

        A torn tail is truncated away when ``repair`` is true (the
        default); with ``repair=False`` a torn log raises, for callers
        that must not modify the store. LSN gaps always raise.
        """
        path = os.fspath(path)
        scan = scan_log(path)
        ensure_contiguous(scan, path)
        if scan.tail_error is not None:
            if not repair:
                raise WalError(f"{path}: torn tail ({scan.tail_error})")
            with open(path, "r+b") as fh:
                fh.truncate(scan.valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        return cls(
            path,
            base_lsn=scan.base_lsn,
            last_lsn=scan.last_lsn,
            group_commit=group_commit,
        )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _append(self, record: WalRecord) -> int:
        self._fh.write(frame_record(record))
        self.last_lsn = record.lsn
        self.log_appends += 1
        self._pending += 1
        if TRACER.enabled:
            TRACER.event("wal_append", lsn=record.lsn)
        return record.lsn

    def log_insert(self, seg_id: int, segment: Segment) -> int:
        """Append an insert record, returning its assigned LSN."""
        with self._lock:
            return self._append(InsertRecord(self.last_lsn + 1, seg_id, segment))

    def log_delete(self, seg_id: int) -> int:
        """Append a delete record, returning its assigned LSN."""
        with self._lock:
            return self._append(DeleteRecord(self.last_lsn + 1, seg_id))

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def commit(self) -> bool:
        """Make appends durable per the group-commit policy.

        Returns whether an fsync actually ran: with ``group_commit > 1``
        the records ride along with a later batch's sync instead.
        """
        with self._lock:
            if self._pending >= self.group_commit:
                self._sync_locked()
                return True
        return False

    def sync(self) -> None:
        """Unconditionally fsync anything pending (checkpoint/close path)."""
        with self._lock:
            if self._pending:
                self._sync_locked()

    def _sync_locked(self) -> None:
        if SANITIZER.enabled:
            SANITIZER.note_blocking("fsync", "wal.log:_sync_locked")
        with TRACER.span("wal_fsync", pending=self._pending):
            self._fh.flush()
            os.fsync(self._fh.fileno())  # repro-lint: disable=CC02 -- group commit: the fsync under the log lock is the mechanism that lets concurrent committers ride one syscall; appends queue behind it by design
        self.fsyncs += 1
        self._pending = 0

    # ------------------------------------------------------------------
    # Rotation & teardown
    # ------------------------------------------------------------------
    def rotate(self, base_lsn: int) -> None:
        """Atomically replace the log with an empty one based at ``base_lsn``.

        The checkpoint path calls this after the snapshot and manifest
        are durable: every record at or below ``base_lsn`` is folded in,
        so the tail restarts empty. The swap is tmp-write + ``os.replace``,
        so a crash mid-rotation leaves the full old log (recovery then
        simply skips the already-checkpointed prefix).
        """
        with self._lock:
            if self._pending:
                self._sync_locked()
            tmp = self.path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(HEADER.pack(MAGIC, base_lsn))
                fh.flush()
                os.fsync(fh.fileno())  # repro-lint: disable=CC02 -- rotation must be atomic w.r.t. appends: the empty log's durability and the handle swap happen under the same lock that orders appends
            os.replace(tmp, self.path)
            self._fh.close()
            self._fh = open(self.path, "ab")
            self.base_lsn = base_lsn
            self.last_lsn = max(self.last_lsn, base_lsn)

    def close(self) -> None:
        if self._fh.closed:
            return
        self.sync()
        self._fh.close()

    def abandon(self) -> None:
        """Close the handle WITHOUT syncing (crash simulation only):
        whatever the OS already has is what a dead process leaves."""
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def stats(self) -> dict:
        return {
            "base_lsn": self.base_lsn,
            "last_lsn": self.last_lsn,
            "group_commit": self.group_commit,
            "log_appends": self.log_appends,
            "fsyncs": self.fsyncs,
            "pending": self._pending,
        }
