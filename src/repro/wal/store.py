"""The durable store: checkpoint + log directory, and crash recovery.

A durable store is one directory holding three files::

    repro.service.snapshot   the latest checkpoint (a queryable snapshot,
                             its manifest embedding the checkpoint LSN)
    repro.checkpoint         a tiny JSON manifest naming that checkpoint
    repro.wal                the log of mutations since the checkpoint

**Checkpoint protocol** (:meth:`DurableStore.checkpoint`): sync the log,
write the snapshot to a temp file and ``os.replace`` it in, then the
manifest the same way, then rotate the log to an empty file based at the
checkpoint LSN. Every step is atomic and ordered so that a crash at any
point leaves a recoverable store: the snapshot's *embedded* LSN is
authoritative for where replay starts (it travels atomically with the
page data), the manifest is a cross-checkable pointer, and an
un-rotated log merely makes recovery skip an already-folded prefix.

**Recovery** (:func:`open_durable` / :meth:`DurableStore.open`): reopen
the snapshot, scan the log tolerating a torn final record (truncating it
away), and replay the suffix of records with LSNs above the checkpoint.
Replay is idempotent -- already-stored inserts and already-gone deletes
are skipped -- and applies the net-surviving inserts in Morton (or
Hilbert) order of their centroids, the same space-filling-curve packing
argument as bulk loading: neighbouring segments are inserted together so
the rebuild touches far fewer pages than log order would.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.sanitize import SANITIZER
from repro.core.interface import WORLD_DEPTH, WORLD_SIZE
from repro.core.pmr.locational import hilbert_index, interleave
from repro.geometry import Point, Segment
from repro.wal.log import WriteAheadLog, ensure_contiguous, scan_log
from repro.wal.records import InsertRecord, WalError, WalRecord

SNAPSHOT_NAME = "repro.service.snapshot"
LOG_NAME = "repro.wal"
MANIFEST_NAME = "repro.checkpoint"
MANIFEST_VERSION = 1

#: Replay orders for the net-insert bulk apply.
REPLAY_ORDERS = ("morton", "hilbert", "lsn")


class SimulatedCrash(RuntimeError):
    """Raised by the checkpoint crash hooks (crash-injection tests only)."""


def _fsync_dir(root: str) -> None:
    if SANITIZER.enabled:
        # The checkpoint path runs these fsyncs under the engine latch
        # (a sanctioned quiescent point); the tally makes that visible.
        SANITIZER.note_blocking("fsync", "wal.store:_fsync_dir")
    fd = os.open(root, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_json(path: str, obj: Dict[str, Any]) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(obj, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")


def _clamp(v: float) -> int:
    return min(max(int(v), 0), WORLD_SIZE - 1)


def _curve_key(order: str) -> Callable[[Segment], int]:
    if order == "morton":
        return lambda s: interleave(
            _clamp((s.x1 + s.x2) / 2), _clamp((s.y1 + s.y2) / 2)
        )
    if order == "hilbert":
        return lambda s: hilbert_index(
            WORLD_DEPTH, _clamp((s.x1 + s.x2) / 2), _clamp((s.y1 + s.y2) / 2)
        )
    raise ValueError(f"replay order must be one of {REPLAY_ORDERS}, got {order!r}")


@dataclass
class ReplayResult:
    """What one replay pass did (``replayed_records`` is the acceptance
    counter: records applied because they post-date the checkpoint)."""

    replayed_records: int = 0
    skipped_records: int = 0
    inserted: int = 0
    deleted: int = 0
    noop_deletes: int = 0


def replay_records(
    index,
    records: List[WalRecord],
    checkpoint_lsn: int,
    order: str = "morton",
    index_filter: Optional[Callable[[int, Segment], bool]] = None,
) -> ReplayResult:
    """Apply a log's records on top of a checkpointed index, idempotently.

    Records at or below ``checkpoint_lsn`` are skipped (they are already
    folded into the snapshot). Table appends happen in LSN order -- ids
    are positional, so order is the contract -- then the net-surviving
    inserts are indexed in space-filling-curve order, then deletes of
    checkpointed segments are applied. Replaying the same records twice
    converges: an insert already present in both table and index is a
    no-op, as is a delete of an already-deleted segment.

    ``index_filter(seg_id, segment)`` decides which replayed inserts are
    *indexed*; the table append always happens regardless (positional ids
    are a global contract). Shard workers pass their region predicate
    here so recovery rebuilds the full replicated table but only the
    locally-owned index entries; filtered-out deletes likewise become
    no-ops instead of errors.
    """
    result = ReplayResult()
    table = index.ctx.segments
    preexisting = len(table)
    pending: Dict[int, Segment] = {}
    deletes: List[int] = []
    for record in records:
        if record.lsn <= checkpoint_lsn:
            result.skipped_records += 1
            continue
        result.replayed_records += 1
        if isinstance(record, InsertRecord):
            if record.seg_id > len(table):
                raise WalError(
                    f"insert record LSN {record.lsn} names segment "
                    f"{record.seg_id} but the table holds {len(table)}; "
                    f"the log and checkpoint disagree"
                )
            if record.seg_id == len(table):
                table.append(record.segment)
            pending[record.seg_id] = record.segment
        else:
            if pending.pop(record.seg_id, None) is None:
                deletes.append(record.seg_id)
    if order == "lsn":
        to_insert = list(pending)
    else:
        key = _curve_key(order)
        to_insert = sorted(pending, key=lambda sid: key(pending[sid]))
    for seg_id in to_insert:
        if index_filter is not None and not index_filter(seg_id, pending[seg_id]):
            continue
        if seg_id < preexisting and _already_indexed(index, seg_id, pending[seg_id]):
            continue
        index.insert(seg_id)
        result.inserted += 1
    for seg_id in deletes:
        try:
            index.delete(seg_id)
            result.deleted += 1
        except KeyError:
            result.noop_deletes += 1  # already gone: duplicate replay
    return result


def _already_indexed(index, seg_id: int, segment: Segment) -> bool:
    """Is ``seg_id`` already in the index? Candidate generation at one of
    the segment's endpoints has no false negatives, so membership there
    is authoritative."""
    return seg_id in index.candidate_ids_at_point(Point(segment.x1, segment.y1))


class DurableStore:
    """One directory of checkpoint + manifest + log, and the live index."""

    def __init__(
        self,
        root: str,
        index,
        wal: WriteAheadLog,
        checkpoint_lsn: int,
        replay: Optional[ReplayResult] = None,
    ) -> None:
        self.root = os.fspath(root)
        self.index = index
        self.wal = wal
        self.checkpoint_lsn = checkpoint_lsn
        self.replay_result = replay if replay is not None else ReplayResult()
        self.checkpoints = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @classmethod
    def paths(cls, root: str) -> Dict[str, str]:
        root = os.fspath(root)
        return {
            "snapshot": os.path.join(root, SNAPSHOT_NAME),
            "log": os.path.join(root, LOG_NAME),
            "manifest": os.path.join(root, MANIFEST_NAME),
        }

    @classmethod
    def exists(cls, root: str) -> bool:
        return os.path.exists(cls.paths(root)["manifest"])

    @property
    def last_lsn(self) -> int:
        return self.wal.last_lsn

    @property
    def replayed_records(self) -> int:
        return self.replay_result.replayed_records

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, root: str, index, group_commit: int = 1, base_lsn: int = 0
    ) -> "DurableStore":
        """Make ``root`` a durable store holding ``index`` at ``base_lsn``.

        A non-zero ``base_lsn`` continues an existing LSN lineage: a
        shard split materializes each child at the parent's last LSN so
        the children's logs stay comparable with their peers' (the
        replicated mutation stream numbers every store identically).
        """
        root = os.fspath(root)
        os.makedirs(root, exist_ok=True)
        if cls.exists(root):
            raise FileExistsError(
                f"{root} already holds a durable store; open it instead"
            )
        paths = cls.paths(root)
        store = cls(
            root,
            index,
            wal=WriteAheadLog.create(
                paths["log"], base_lsn=base_lsn, group_commit=group_commit
            ),
            checkpoint_lsn=base_lsn,
        )
        store._write_snapshot(base_lsn)
        store._write_manifest(base_lsn)
        return store

    @classmethod
    def open(
        cls,
        root: str,
        pool_pages: int = 16,
        group_commit: int = 1,
        repair: bool = True,
        replay_order: str = "morton",
        index_filter: Optional[Callable[[int, Segment], bool]] = None,
    ) -> "DurableStore":
        """Recover a durable store: latest checkpoint + log-suffix replay.

        The snapshot's embedded checkpoint LSN decides where replay
        starts; a torn final log record is truncated away (``repair``),
        and a log that was never rotated after a checkpoint merely gets
        its already-folded prefix skipped.
        """
        from repro.service.snapshot import open_index, snapshot_info

        root = os.fspath(root)
        paths = cls.paths(root)
        if not os.path.exists(paths["manifest"]):
            raise FileNotFoundError(f"{root} holds no durable store manifest")
        with open(paths["manifest"], "r", encoding="utf-8") as fh:
            try:
                manifest = json.load(fh)
            except json.JSONDecodeError as exc:
                raise WalError(f"checkpoint manifest is corrupt: {exc}") from exc
        if manifest.get("version") != MANIFEST_VERSION:
            raise WalError(
                f"unsupported checkpoint manifest version "
                f"{manifest.get('version')!r}"
            )
        if not os.path.exists(paths["snapshot"]):
            raise WalError(f"checkpoint snapshot {paths['snapshot']} is missing")
        info = snapshot_info(paths["snapshot"])
        embedded = info.get("wal", {}).get("checkpoint_lsn")
        if embedded is None:
            raise WalError(
                "snapshot carries no embedded checkpoint LSN (not written "
                "by a durable store?)"
            )
        index = open_index(paths["snapshot"], pool_pages=pool_pages)
        if not os.path.exists(paths["log"]):
            # A crash between checkpoint and log creation: nothing to
            # replay; start a fresh tail at the checkpoint.
            wal = WriteAheadLog.create(
                paths["log"], base_lsn=embedded, group_commit=group_commit
            )
            return cls(root, index, wal, checkpoint_lsn=embedded)
        scan = scan_log(paths["log"])
        ensure_contiguous(scan, paths["log"])
        if scan.base_lsn > embedded:
            raise WalError(
                f"log starts at LSN {scan.base_lsn} but the checkpoint "
                f"holds only up to {embedded}: records are missing"
            )
        replay = replay_records(
            index,
            scan.records,
            embedded,
            order=replay_order,
            index_filter=index_filter,
        )
        wal = WriteAheadLog.open(
            paths["log"], group_commit=group_commit, repair=repair
        )
        return cls(root, index, wal, checkpoint_lsn=embedded, replay=replay)

    # ------------------------------------------------------------------
    # Logging (called by the engine under its latch)
    # ------------------------------------------------------------------
    def log_insert(self, seg_id: int, segment: Segment) -> int:
        return self.wal.log_insert(seg_id, segment)

    def log_delete(self, seg_id: int) -> int:
        return self.wal.log_delete(seg_id)

    def commit(self) -> bool:
        """Group-commit barrier: durable before the client is acked."""
        return self.wal.commit()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, _crash_point: Optional[str] = None) -> Dict[str, Any]:
        """Fold the log into a fresh snapshot and truncate the tail.

        ``_crash_point`` is a crash-injection hook ("snapshot-tmp",
        "snapshot", "manifest"): the harness aborts the protocol after
        that step to prove every intermediate state recovers.
        """
        lsn = self.wal.last_lsn
        self.wal.sync()
        folded = lsn - self.checkpoint_lsn
        pages = self._write_snapshot(lsn, _crash_point=_crash_point)
        if _crash_point == "snapshot":
            raise SimulatedCrash("crash after snapshot replace")
        self._write_manifest(lsn)
        if _crash_point == "manifest":
            raise SimulatedCrash("crash after manifest replace")
        self.wal.rotate(lsn)
        self.checkpoint_lsn = lsn
        self.checkpoints += 1
        return {"checkpoint_lsn": lsn, "pages": pages, "folded_records": folded}

    def _write_snapshot(
        self, lsn: int, _crash_point: Optional[str] = None
    ) -> int:
        from repro.service.snapshot import save_index

        snap = self.paths(self.root)["snapshot"]
        tmp = snap + ".tmp"
        with open(tmp, "wb") as fh:
            pages = save_index(
                self.index, fh, extra={"wal": {"checkpoint_lsn": lsn}}
            )
            fh.flush()
            os.fsync(fh.fileno())
        if _crash_point == "snapshot-tmp":
            raise SimulatedCrash("crash before snapshot replace")
        os.replace(tmp, snap)
        _fsync_dir(self.root)
        return pages

    def _write_manifest(self, lsn: int) -> None:
        _atomic_write_json(
            self.paths(self.root)["manifest"],
            {
                "version": MANIFEST_VERSION,
                "checkpoint_lsn": lsn,
                "snapshot": SNAPSHOT_NAME,
                "kind": self.index.name,
                "segments": len(self.index.ctx.segments),
            },
        )

    # ------------------------------------------------------------------
    # Observability & teardown
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        out = self.wal.stats()
        out["checkpoint_lsn"] = self.checkpoint_lsn
        out["checkpoints"] = self.checkpoints
        out["replayed_records"] = self.replay_result.replayed_records
        out["skipped_records"] = self.replay_result.skipped_records
        return out

    def close(self) -> None:
        self.wal.close()


def open_durable(
    root: str,
    pool_pages: int = 16,
    group_commit: int = 1,
    repair: bool = True,
    replay_order: str = "morton",
    index_filter: Optional[Callable[[int, Segment], bool]] = None,
) -> DurableStore:
    """The recovery entry point: alias for :meth:`DurableStore.open`."""
    return DurableStore.open(
        root,
        pool_pages=pool_pages,
        group_commit=group_commit,
        repair=repair,
        replay_order=replay_order,
        index_filter=index_filter,
    )
