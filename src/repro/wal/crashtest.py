"""Crash-injection harness: prove recovery converges at every crash point.

The harness builds a small durable store, drives a deterministic mutation
script through a durable :class:`~repro.service.engine.QueryEngine`
(including a mid-script checkpoint), and then simulates crashes:

* **log truncation** at every byte-boundary class of every record --
  clean record boundary, mid-frame-header, mid-payload -- plus CRC
  corruption of a mid-log and the final record (a flipped byte);
* **checkpoint interruption** at each step of the checkpoint protocol
  (after the snapshot temp write, after the snapshot replace, after the
  manifest replace, i.e. before log rotation);
* **snapshot corruption** (a truncated checkpoint file), which must fail
  recovery *cleanly* -- a diagnosable error, never silent bad data.

For every survivable crash point the recovered index must (a) answer
point / window / nearest probes identically to a never-crashed oracle
built from the surviving mutation prefix, (b) have replayed exactly the
log records past the checkpoint (the ``replayed_records`` counter), and
(c) fsck clean -- both the live index walk and, after re-checkpointing,
the whole durable store. Used by ``tests/test_wal_crash.py`` over all
three paper structures.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.pmr import PMRQuadtree
from repro.core.rplus import RPlusTree
from repro.core.rtree import RStarTree
from repro.geometry import Point, Rect, Segment
from repro.storage.codec import CodecError
from repro.storage.context import StorageContext
from repro.wal.log import FRAME, HEADER, scan_log
from repro.wal.records import WalError
from repro.wal.store import DurableStore, SimulatedCrash, replay_records

#: Small world so the matrix runs deep decompositions quickly.
SMALL_WORLD = 1024
SMALL_DEPTH = 10

STRUCTURES = ("R*", "R+", "PMR")

#: A mutation script step: ("insert", Segment) | ("delete", seg_id) |
#: ("checkpoint", None). Mutation steps get LSNs 1, 2, ... in order;
#: checkpoint steps consume no LSN.
Step = Tuple[str, Any]


def make_index(kind: str, ctx: StorageContext):
    if kind == "R*":
        return RStarTree(ctx)
    if kind == "R+":
        return RPlusTree(ctx, world=Rect(0, 0, SMALL_WORLD, SMALL_WORLD))
    if kind == "PMR":
        return PMRQuadtree(ctx, max_depth=SMALL_DEPTH, world_size=SMALL_WORLD)
    raise KeyError(f"crash matrix supports {STRUCTURES}, not {kind!r}")


def base_map(n: int = 5, pitch: int = 120) -> List[Segment]:
    """A planar n x n lattice inside the small world."""
    segs: List[Segment] = []
    for i in range(n):
        for j in range(n):
            x, y = (i + 1) * pitch, (j + 1) * pitch
            if i + 1 < n:
                segs.append(Segment(x, y, x + pitch, y))
            if j + 1 < n:
                segs.append(Segment(x, y, x, y + pitch))
    return segs


def default_script(base_count: int) -> List[Step]:
    """A deterministic mixed script: inserts, deletes of base and of
    freshly inserted segments, a double delete (logged but a no-op on
    apply), and a mid-script checkpoint."""
    steps: List[Step] = []
    diag = [
        Segment(40 + 90 * i, 40 + 70 * i, 40 + 90 * (i + 1), 40 + 70 * (i + 1))
        for i in range(6)
    ]
    steps.extend(("insert", s) for s in diag[:3])
    steps.append(("delete", 0))  # a base segment
    steps.append(("delete", base_count + 1))  # a fresh segment
    steps.append(("checkpoint", None))
    steps.extend(("insert", s) for s in diag[3:])
    steps.append(("delete", 3))  # another base segment
    steps.append(("delete", base_count + 1))  # double delete: no-op
    steps.append(("insert", Segment(500, 500, 620, 560)))
    steps.append(("delete", base_count + 4))  # post-checkpoint insert
    return steps


def mutation_steps(steps: List[Step]) -> List[Step]:
    return [s for s in steps if s[0] != "checkpoint"]


# ----------------------------------------------------------------------
# Oracle: the never-crashed reference state
# ----------------------------------------------------------------------
def oracle_index(kind: str, base: List[Segment], mutations: List[Step]):
    """Apply base + a mutation prefix to a fresh, non-durable index."""
    ctx = StorageContext.create()
    index = make_index(kind, ctx)
    for seg_id in ctx.load_segments(base):
        index.insert(seg_id)
    for op, arg in mutations:
        if op == "insert":
            index.insert(ctx.segments.append(arg))
        else:
            try:
                index.delete(int(arg))
            except KeyError:
                continue  # same no-op semantics as replay
    return index


def probe_results(index, max_points: int = 40) -> Dict[str, Any]:
    """Deterministic probe battery; comparable across index structures.

    Point and window answers are exact id sets. Nearest answers compare
    by distance multiset (rounded), which is invariant under the
    tie-breaking freedom different tree shapes legitimately have.
    """
    from repro.core.queries.spec import QuerySpec, execute_spec

    table = index.ctx.segments
    points = []
    step = max(1, len(table) // max_points)
    for seg_id in range(0, len(table), step):
        seg = table.peek(seg_id)
        # Coerce: a snapshot round-trips coordinates through float32, an
        # in-memory oracle keeps whatever the script passed in.
        points.append((float(seg.x1), float(seg.y1)))
    out: Dict[str, Any] = {}
    for x, y in points:
        out[f"point:{x}:{y}"] = sorted(
            execute_spec(index, QuerySpec.point(Point(x, y)))
        )
    for rect in (
        Rect(0, 0, 300, 300),
        Rect(200, 200, 700, 700),
        Rect(0, 0, SMALL_WORLD, SMALL_WORLD),
    ):
        out[f"window:{rect}"] = sorted(
            execute_spec(index, QuerySpec.window(rect, "intersects"))
        )
    for x, y in ((50, 50), (430, 410), (900, 120)):
        pairs = execute_spec(index, QuerySpec.nearest(Point(x, y), 3))
        out[f"nearest:{x}:{y}"] = sorted(round(d, 6) for _, d in pairs)
    return out


# ----------------------------------------------------------------------
# Building the live (to-be-crashed) store
# ----------------------------------------------------------------------
def build_live_store(
    root: str,
    kind: str,
    steps: List[Step],
    group_commit: int = 1,
    crash_checkpoint_at: Optional[str] = None,
) -> Tuple[DurableStore, List[Segment], bool]:
    """Create a durable store and drive the script through an engine.

    With ``crash_checkpoint_at`` set, the (single) checkpoint step raises
    :class:`SimulatedCrash` at that protocol point; the script stops
    there, the log handle is abandoned unsynced, and the third return
    value is True -- exactly what a killed process leaves behind.
    """
    from repro.service.engine import QueryEngine

    base = base_map()
    ctx = StorageContext.create()
    index = make_index(kind, ctx)
    for seg_id in ctx.load_segments(base):
        index.insert(seg_id)
    store = DurableStore.create(root, index, group_commit=group_commit)
    engine = QueryEngine(index, store=store)
    crashed = False
    for op, arg in steps:
        if op == "insert":
            engine.insert_segment(arg)
        elif op == "delete":
            try:
                engine.delete(int(arg))
            except KeyError:
                continue  # double delete: logged, applied as no-op
        else:
            try:
                engine.checkpoint(_crash_point=crash_checkpoint_at)
            except SimulatedCrash:
                crashed = True
                break
    store.wal.abandon()  # drop the handle as a dead process would
    return store, base, crashed


# ----------------------------------------------------------------------
# Crash cases
# ----------------------------------------------------------------------
@dataclass
class CrashOutcome:
    case: str
    ok: bool
    survived_lsn: int = -1
    replayed_records: int = -1
    detail: str = ""


@dataclass
class CrashMatrixReport:
    kind: str
    outcomes: List[CrashOutcome] = field(default_factory=list)

    @property
    def failures(self) -> List[CrashOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def summary(self) -> str:
        return (
            f"{self.kind}: {len(self.outcomes)} crash cases, "
            f"{len(self.failures)} failure(s)"
        )


def _copy_store(src: str, dst: str) -> None:
    shutil.copytree(src, dst)


def _truncate(path: str, size: int) -> None:
    with open(path, "r+b") as fh:
        fh.truncate(size)


def _flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


def _verify_recovery(
    case: str,
    root: str,
    kind: str,
    base: List[Segment],
    mutations: List[Step],
    replay_order: str,
) -> CrashOutcome:
    """Open a damaged store and hold it to the acceptance criteria."""
    from repro.analysis import check_index, has_errors
    from repro.analysis.fsck_wal import check_durable

    store = DurableStore.open(root, replay_order=replay_order)
    try:
        survived = store.last_lsn
        expected_replay = survived - store.checkpoint_lsn
        if store.replayed_records != expected_replay:
            return CrashOutcome(
                case,
                False,
                survived,
                store.replayed_records,
                f"replayed {store.replayed_records} records, expected the "
                f"post-checkpoint suffix of {expected_replay}",
            )
        oracle = oracle_index(kind, base, mutations[:survived])
        got = probe_results(store.index)
        want = probe_results(oracle)
        if got != want:
            diff = [k for k in want if got.get(k) != want[k]][:3]
            return CrashOutcome(
                case, False, survived, store.replayed_records,
                f"probe mismatch vs oracle at {diff}",
            )
        findings = check_index(store.index)
        if findings:
            return CrashOutcome(
                case, False, survived, store.replayed_records,
                f"recovered index fsck: {findings[0].rule} {findings[0].detail}",
            )
        store.checkpoint()
        dir_findings = check_durable(root)
        if has_errors(dir_findings):
            bad = [f for f in dir_findings if f.severity == "error"][0]
            return CrashOutcome(
                case, False, survived, store.replayed_records,
                f"store fsck after re-checkpoint: {bad.rule} {bad.detail}",
            )
        return CrashOutcome(case, True, survived, store.replayed_records)
    finally:
        store.close()


def run_crash_matrix(
    workdir: str,
    kind: str = "R*",
    steps: Optional[List[Step]] = None,
    replay_order: str = "morton",
) -> CrashMatrixReport:
    """Run the full crash matrix for one structure under ``workdir``."""
    steps = default_script(len(base_map())) if steps is None else steps
    mutations = mutation_steps(steps)
    report = CrashMatrixReport(kind)
    live = os.path.join(workdir, "live")
    _, base, _ = build_live_store(live, kind, steps)
    log_path = DurableStore.paths(live)["log"]
    snap_path_name = os.path.basename(DurableStore.paths(live)["snapshot"])
    scan = scan_log(log_path)

    cases: List[Tuple[str, str, int]] = []  # (name, damage, offset)
    for i, off in enumerate(scan.offsets):
        end = (
            scan.offsets[i + 1] if i + 1 < len(scan.offsets) else scan.valid_bytes
        )
        cases.append((f"cut-boundary@{scan.records[i].lsn}", "truncate", end))
        cases.append((f"cut-frame@{scan.records[i].lsn}", "truncate", off + 3))
        cases.append(
            (f"cut-payload@{scan.records[i].lsn}", "truncate", off + FRAME.size + 2)
        )
    if scan.offsets:
        mid = scan.offsets[len(scan.offsets) // 2]
        last = scan.offsets[-1]
        cases.append(("crc-flip@mid", "flip", mid + FRAME.size + 1))
        cases.append(("crc-flip@last", "flip", last + FRAME.size + 1))
    cases.append(("cut-header", "truncate", HEADER.size // 2))

    for n, (name, damage, offset) in enumerate(cases):
        root = os.path.join(workdir, f"case-{n}")
        _copy_store(live, root)
        target = DurableStore.paths(root)["log"]
        if damage == "truncate":
            _truncate(target, offset)
        else:
            _flip_byte(target, offset)
        if name == "cut-header":
            # Unrecoverable by design: the scan must refuse loudly.
            try:
                DurableStore.open(root)
                report.outcomes.append(
                    CrashOutcome(name, False, detail="damaged header not detected")
                )
            except WalError:
                report.outcomes.append(CrashOutcome(name, True))
            continue
        report.outcomes.append(
            _verify_recovery(name, root, kind, base, mutations, replay_order)
        )

    # Checkpoint-protocol interruptions: the process dies mid-checkpoint.
    for crash_point in ("snapshot-tmp", "snapshot", "manifest"):
        root = os.path.join(workdir, f"ckpt-{crash_point}")
        _, base_c, crashed = build_live_store(
            root, kind, steps, crash_checkpoint_at=crash_point
        )
        if not crashed:
            report.outcomes.append(
                CrashOutcome(
                    f"ckpt-{crash_point}", False, detail="crash hook never fired"
                )
            )
            continue
        report.outcomes.append(
            _verify_recovery(
                f"ckpt-{crash_point}", root, kind, base_c, mutations, replay_order
            )
        )

    # A truncated checkpoint snapshot is media corruption, not a crash
    # state our atomic-replace protocol can produce: recovery must fail
    # with a diagnosable error rather than serve bad data.
    root = os.path.join(workdir, "snapshot-truncated")
    _copy_store(live, root)
    snap = os.path.join(root, snap_path_name)
    _truncate(snap, os.path.getsize(snap) // 2)
    try:
        DurableStore.open(root)
        report.outcomes.append(
            CrashOutcome(
                "snapshot-truncated", False, detail="corrupt snapshot not detected"
            )
        )
    except (WalError, CodecError):
        report.outcomes.append(CrashOutcome("snapshot-truncated", True))
    return report
