"""Logical WAL records and their byte-level framing.

The write-ahead log records *logical* mutations, not page images: the
simulated disk only persists at checkpoints, so redo needs exactly what a
client asked for -- "insert this segment (it was assigned id N)" and
"delete segment N". Each record carries a monotonically increasing log
sequence number (LSN); the LSN of the last record folded into a
checkpoint is the checkpoint's LSN, and recovery replays only records
with a larger one.

On disk a record is framed as::

    <I payload length> <I crc32(payload)> <payload>

and the payload is (little-endian)::

    insert:  <B op=1> <Q lsn> <i seg_id> <4f x1 y1 x2 y2>
    delete:  <B op=2> <Q lsn> <i seg_id>

Endpoints are float32, the same precision as the segment-table page
codec (:mod:`repro.storage.codec`), so a segment replayed from the log
is bit-identical to the same segment reloaded from a checkpoint.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Union

from repro.geometry import Segment

#: Record type tags (the payload's first byte).
OP_INSERT = 1
OP_DELETE = 2

FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_INSERT = struct.Struct("<BQi4f")
_DELETE = struct.Struct("<BQi")

#: Sanity bound while scanning: no legal payload is near this large, so a
#: length field above it means the frame header itself is garbage.
MAX_PAYLOAD = 1 << 16


# Historically defined here; now part of the consolidated hierarchy in
# repro.errors (still a ValueError, so existing handlers keep working).
from repro.errors import WalError  # noqa: E402  (re-export)


@dataclass(frozen=True)
class InsertRecord:
    """``seg_id`` is the table id the segment was assigned at apply time;
    replay verifies the append produces the same id (the table is
    append-only, so ids encode the apply order)."""

    lsn: int
    seg_id: int
    segment: Segment

    op = OP_INSERT


@dataclass(frozen=True)
class DeleteRecord:
    lsn: int
    seg_id: int

    op = OP_DELETE


WalRecord = Union[InsertRecord, DeleteRecord]


def encode_record(record: WalRecord) -> bytes:
    """Serialize a record payload (no frame)."""
    if isinstance(record, InsertRecord):
        s = record.segment
        return _INSERT.pack(
            OP_INSERT, record.lsn, record.seg_id, s.x1, s.y1, s.x2, s.y2
        )
    if isinstance(record, DeleteRecord):
        return _DELETE.pack(OP_DELETE, record.lsn, record.seg_id)
    raise WalError(f"no codec for record of type {type(record).__name__}")


def decode_record(payload: bytes) -> WalRecord:
    """Parse one payload; raises :class:`WalError` on any malformation."""
    if not payload:
        raise WalError("empty record payload")
    op = payload[0]
    try:
        if op == OP_INSERT:
            _, lsn, seg_id, x1, y1, x2, y2 = _INSERT.unpack(payload)
            return InsertRecord(lsn, seg_id, Segment(x1, y1, x2, y2))
        if op == OP_DELETE:
            _, lsn, seg_id = _DELETE.unpack(payload)
            return DeleteRecord(lsn, seg_id)
    except struct.error as exc:
        raise WalError(f"record payload malformed: {exc}") from None
    raise WalError(f"unknown record op {op}")


def frame_record(record: WalRecord) -> bytes:
    """Serialize a record with its length + CRC frame."""
    payload = encode_record(record)
    return FRAME.pack(len(payload), zlib.crc32(payload)) + payload
