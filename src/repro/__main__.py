"""Command-line reproduction driver: ``python -m repro <experiment>``.

Regenerates any of the paper's tables and figures from the terminal:

    python -m repro table1                     # build statistics
    python -m repro table2 --county charles    # per-query metrics
    python -m repro figure6                    # page/buffer sweep
    python -m repro figure7|figure8|figure9    # normalized ranges
    python -m repro occupancy                  # Concluding Remarks
    python -m repro generate --county cecil    # inspect a synthetic map

``--scale`` is the fraction of the paper's ~50 000 segments per county
(default 0.05); ``--queries`` the number of queries per workload
(default 100; the paper used 1000).

The service layer adds three more subcommands::

    python -m repro snapshot --out county.snap   # build + save an index
    python -m repro serve --snapshot county.snap # JSON-over-TCP server
    python -m repro bench-serve --threads 4      # concurrent load test

The durability layer (:mod:`repro.wal`) adds write-ahead logging::

    python -m repro serve --wal store/           # durable server (creates
                                                 # or recovers the store)
    python -m repro checkpoint --wal store/      # fold the log offline
    python -m repro recover --wal store/         # replay + re-checkpoint

The observability layer (:mod:`repro.obs`) adds tracing and metrics::

    python -m repro serve --trace --slow-ms 5    # trace spans + slow log
    python -m repro stats --port 8765            # live server metrics
    python -m repro stats --format prom          # Prometheus exposition
    python -m repro bench-serve --trace          # traced load test
    python -m repro explain window --x1 0 --y1 0 --x2 500 --y2 500
                                                 # per-level query profile
    python -m repro bench --json BENCH_run.json  # perf-baseline record
    python -m repro bench --compare benchmarks/results/BENCH_baseline.json
                                                 # regression gate (exit 1)

The sharding layer (:mod:`repro.shard`) splits the map across workers::

    python -m repro shard-init --root shards/ --n-shards 4
                                                 # manifest + one store per shard
    python -m repro shard-worker --root shards/ --shard s1
                                                 # serve one shard (writes shard.addr)
    python -m repro route --root shards/ --port 8765
                                                 # scatter-gather router
    python -m repro shard-split --root shards/ --shard s1
                                                 # split a hot shard (epoch + 1)
    python -m repro shard-catchup --root shards/ --shard s1
                                                 # replay missed mutations from a peer
    python -m repro bench-serve --connect 127.0.0.1:8765
                                                 # drive running server(s), round-robin
    python -m repro bench --routed --json BENCH_shard.json
                                                 # routed perf-baseline record

The async layer (:mod:`repro.aio`) serves the same engine from one
event loop, with the pipelined wire protocol v2::

    python -m repro serve --snapshot county.snap --async
                                                 # asyncio server (v1 + v2)
    python -m repro route --root shards/ --async # asyncio scatter-gather
    python -m repro bench-serve --async --threads 20 --pipeline 8
                                                 # pipelined connections
    python -m repro bench-serve --async --mutate-frac 0.2 --wal store/
                                                 # measures group commit
    python -m repro bench --serve --json BENCH_serve.json
                                                 # threaded-vs-async record

The static-analysis layer adds two::

    python -m repro check county.snap            # index fsck (snapshot)
    python -m repro check --wal store/           # durable-store fsck
    python -m repro check --shards shards/       # shard-set fsck (SH rules)
    python -m repro check --county cecil --structure PMR   # fsck a build
    python -m repro lint src/                    # project AST lint

Exit codes for both: 0 = clean, 1 = findings (``check``: at least one
*error*-severity finding; warnings alone exit 0), 2 = the target could
not be analysed at all (missing/corrupt snapshot, unknown path).
"""

from __future__ import annotations

import argparse
import sys


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--queries", type=int, default=100)
    parser.add_argument("--county", default="charles")


def _build_or_open(args):
    """An index for the service commands: open a snapshot or build fresh."""
    from repro.service import open_index
    from repro.storage import CodecError

    if getattr(args, "snapshot", None):
        try:
            return open_index(args.snapshot)
        except FileNotFoundError:
            sys.exit(f"error: snapshot not found: {args.snapshot}")
        except CodecError as exc:
            sys.exit(f"error: cannot open {args.snapshot}: {exc}")
    from repro.data import generate_county
    from repro.harness.experiment import build_structure

    built = build_structure(
        args.structure, generate_county(args.county, scale=args.scale)
    )
    return built.index


def _cmd_snapshot(args) -> int:
    from repro.data import generate_county
    from repro.harness.experiment import build_structure
    from repro.service import save_index

    built = build_structure(
        args.structure, generate_county(args.county, scale=args.scale)
    )
    pages = save_index(built.index, args.out)
    print(
        f"saved {args.structure} over {args.county} (scale {args.scale}): "
        f"{pages} pages -> {args.out}"
    )
    return 0


def _open_or_create_store(args):
    """The durable store behind ``--wal DIR``: recover it, or create it
    around a freshly built (or snapshot-loaded) index."""
    from repro.wal import DurableStore, WalError

    try:
        if DurableStore.exists(args.wal):
            store = DurableStore.open(args.wal, group_commit=args.group_commit)
            print(
                f"recovered durable store {args.wal}: checkpoint LSN "
                f"{store.checkpoint_lsn}, last LSN {store.last_lsn}, "
                f"{store.replayed_records} record(s) replayed",
                flush=True,
            )
            return store
        index = _build_or_open(args)
        store = DurableStore.create(
            args.wal, index, group_commit=args.group_commit
        )
        print(f"created durable store {args.wal} at LSN 0", flush=True)
        return store
    except WalError as exc:
        sys.exit(f"error: cannot recover {args.wal}: {exc}")


def _maybe_enable_sanitizer(args) -> bool:
    """Honor ``--sanitize`` (REPRO_SANITIZE=1 enables it at import time)."""
    from repro.sanitize import SANITIZER

    if getattr(args, "sanitize", False):
        SANITIZER.enable()
    return SANITIZER.enabled


def _sanitizer_verdict() -> int:
    """Print the sanitizer report; returns the potential-deadlock count."""
    from repro.sanitize import SANITIZER

    if not SANITIZER.enabled:
        return 0
    report = SANITIZER.report()
    print(SANITIZER.format_report(), flush=True)
    return len(report["potential_deadlocks"])


def _arm_tracing(args) -> None:
    """Apply ``--trace`` / ``--trace-sample`` to the process-wide tracer.

    ``--trace-sample RATE`` arms distributed tail-based sampling (trace
    ids on the wire, head decision at RATE, errored/slow retention);
    plain ``--trace`` keeps the legacy record-everything mode.
    """
    sample = getattr(args, "trace_sample", None)
    if sample is None and not getattr(args, "trace", False):
        return
    from repro.obs import TRACER

    capacity = getattr(args, "trace_capacity", None)
    if sample is not None:
        try:
            TRACER.arm(
                sample,
                slow_ms=getattr(args, "slow_ms", None),
                capacity=capacity,
            )
        except ValueError as exc:
            sys.exit(f"error: {exc}")
    else:
        TRACER.enable(capacity=capacity)


def _cmd_serve(args) -> int:
    from repro.service import MapServer, QueryEngine

    _maybe_enable_sanitizer(args)

    store = None
    if args.wal:
        store = _open_or_create_store(args)
        index = store.index
    else:
        index = _build_or_open(args)
    _arm_tracing(args)
    engine = QueryEngine(
        index,
        cache_capacity=args.cache_size,
        store=store,
        slow_ms=args.slow_ms,
        backend=args.backend,
    )
    idle_timeout = args.idle_timeout if args.idle_timeout > 0 else None
    if args.use_async:
        import asyncio

        from repro.aio import AsyncMapServer

        server = AsyncMapServer(
            engine,
            host=args.host,
            port=args.port,
            idle_timeout=idle_timeout,
            max_inflight_per_conn=args.max_inflight_conn,
            max_inflight_total=args.max_inflight,
            executor_workers=args.executor_workers,
        )

        async def _serve() -> None:
            await server.start()
            host, port = server.address
            print(
                f"serving {index.name} ({len(index.ctx.segments)} segments) "
                f"on {host}:{port} -- asyncio front end: v1 newline JSON "
                f'plus pipelined wire protocol v2 (pin {{"v": 2}})',
                flush=True,
            )
            await server.serve_forever()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            if store is not None:
                store.close()
        return 1 if _sanitizer_verdict() else 0
    server = MapServer(
        engine, host=args.host, port=args.port, idle_timeout=idle_timeout
    )
    host, port = server.address
    print(
        f"serving {index.name} ({len(index.ctx.segments)} segments) "
        f"on {host}:{port} -- newline-delimited JSON, e.g. "
        f'{{"op": "window", "x1": 0, "y1": 0, "x2": 500, "y2": 500}}',
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
        if store is not None:
            store.close()
    return 1 if _sanitizer_verdict() else 0


def _cmd_checkpoint(args) -> int:
    from repro.wal import DurableStore, WalError

    try:
        store = DurableStore.open(args.wal, group_commit=args.group_commit)
    except (FileNotFoundError, WalError) as exc:
        sys.exit(f"error: cannot open durable store {args.wal}: {exc}")
    try:
        result = store.checkpoint()
    finally:
        store.close()
    print(
        f"checkpointed {args.wal} at LSN {result['checkpoint_lsn']}: "
        f"{result['folded_records']} record(s) folded into "
        f"{result['pages']} pages"
    )
    return 0


def _cmd_recover(args) -> int:
    from repro.wal import DurableStore, WalError

    try:
        store = DurableStore.open(args.wal, group_commit=args.group_commit)
    except (FileNotFoundError, WalError) as exc:
        sys.exit(f"error: cannot recover {args.wal}: {exc}")
    try:
        print(
            f"recovered {args.wal}: checkpoint LSN {store.checkpoint_lsn}, "
            f"last LSN {store.last_lsn}, {store.replayed_records} record(s) "
            f"replayed, {store.replay_result.skipped_records} skipped"
        )
        result = store.checkpoint()
        print(
            f"re-checkpointed at LSN {result['checkpoint_lsn']} "
            f"({result['folded_records']} record(s) folded); log tail is empty"
        )
    finally:
        store.close()
    return 0


def _cmd_bench_serve(args) -> int:
    from repro.service import bench_serve, format_bench_report
    from repro.storage import CodecError

    _maybe_enable_sanitizer(args)
    connect = None
    if args.connect:
        from repro.service.loadgen import parse_address

        try:
            connect = [parse_address(spec) for spec in args.connect]
        except ValueError as exc:
            sys.exit(f"error: {exc}")
    if args.use_async:
        from repro.aio import bench_serve_async, format_async_bench_report

        try:
            areport = bench_serve_async(
                county=args.county,
                scale=args.scale,
                structure=args.structure,
                connections=args.threads,
                pipeline=args.pipeline,
                requests=args.requests,
                snapshot=args.snapshot,
                cache_capacity=args.cache_size,
                seed=args.seed,
                connect=connect,
                wal_dir=args.wal,
                mutate_frac=args.mutate_frac,
            )
        except FileNotFoundError:
            sys.exit(f"error: snapshot not found: {args.snapshot}")
        except CodecError as exc:
            sys.exit(f"error: cannot open {args.snapshot}: {exc}")
        print(format_async_bench_report(areport))
        deadlocks = _sanitizer_verdict()
        if areport.errors or not areport.counters_consistent or deadlocks:
            return 1
        return 0
    try:
        report = bench_serve(
            county=args.county,
            scale=args.scale,
            structure=args.structure,
            threads=args.threads,
            requests=args.requests,
            snapshot=args.snapshot,
            cache_capacity=args.cache_size,
            seed=args.seed,
            trace=args.trace,
            slow_ms=args.slow_ms,
            connect=connect,
        )
    except FileNotFoundError:
        sys.exit(f"error: snapshot not found: {args.snapshot}")
    except CodecError as exc:
        sys.exit(f"error: cannot open {args.snapshot}: {exc}")
    print(format_bench_report(report))
    deadlocks = _sanitizer_verdict()
    if report.errors or not report.counters_consistent or deadlocks:
        return 1
    return 0


def _cmd_shard_init(args) -> int:
    from repro.data import generate_county
    from repro.errors import CodecError
    from repro.shard import init_shard_set

    map_data = generate_county(args.county, scale=args.scale)
    try:
        smap = init_shard_set(
            args.root,
            args.structure,
            map_data=map_data,
            n_shards=args.n_shards,
            order=args.order,
            page_size=args.page_size,
            pool_pages=args.pool_pages,
        )
    except (ValueError, CodecError) as exc:
        sys.exit(f"error: cannot initialise shard set: {exc}")
    print(
        f"initialised {len(smap.shards)}-shard {args.structure} set over "
        f"{args.county} (scale {args.scale}) at {args.root} "
        f"(epoch {smap.epoch}, Hilbert order {smap.order})"
    )
    for spec in smap.shards:
        print(f"  {spec.shard_id}: cells [{spec.lo}, {spec.hi})")
    return 0


def _cmd_shard_worker(args) -> int:
    from repro.errors import WalError
    from repro.shard import serve_shard

    _maybe_enable_sanitizer(args)
    _arm_tracing(args)
    try:
        server = serve_shard(
            args.root,
            args.shard,
            host=args.host,
            port=args.port,
            group_commit=args.group_commit,
            slow_ms=args.slow_ms,
            backend=args.backend,
        )
    except (FileNotFoundError, KeyError, WalError) as exc:
        sys.exit(f"error: cannot open shard {args.shard}: {exc}")
    host, port = server.address
    print(
        f"shard {args.shard} of {args.root} serving on {host}:{port} "
        f"(address published to shard.addr)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
        server.engine.store.close()
    return 1 if _sanitizer_verdict() else 0


def _cmd_route(args) -> int:
    from repro.errors import WalError
    from repro.shard import ShardRouter

    _maybe_enable_sanitizer(args)
    _arm_tracing(args)
    if args.use_async:
        import asyncio

        from repro.aio import AsyncShardRouter

        try:
            router = AsyncShardRouter(
                args.root, host=args.host, port=args.port, timeout=args.timeout
            )
        except (FileNotFoundError, ValueError, WalError) as exc:
            sys.exit(f"error: cannot open shard set {args.root}: {exc}")

        async def _serve() -> None:
            await router.start()
            host, port = router.address
            print(
                f"routing {len(router.clients)} shard(s) of {args.root} on "
                f"{host}:{port} (epoch {router.shard_map.epoch}) -- asyncio "
                f"front end: v1 newline JSON plus pipelined wire protocol v2",
                flush=True,
            )
            await router.serve_forever()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        return 1 if _sanitizer_verdict() else 0
    try:
        router = ShardRouter(
            args.root, host=args.host, port=args.port, timeout=args.timeout
        )
    except (FileNotFoundError, ValueError, WalError) as exc:
        sys.exit(f"error: cannot open shard set {args.root}: {exc}")
    host, port = router.address
    print(
        f"routing {len(router.clients)} shard(s) of {args.root} on "
        f"{host}:{port} (epoch {router.shard_map.epoch}) -- "
        f"newline-delimited JSON, same ops as a single server",
        flush=True,
    )
    try:
        router.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        router.close()
    return 1 if _sanitizer_verdict() else 0


def _cmd_shard_split(args) -> int:
    from repro.errors import WalError
    from repro.shard import split_shard

    try:
        result = split_shard(args.root, args.shard)
    except (FileNotFoundError, KeyError, ValueError, WalError) as exc:
        sys.exit(f"error: cannot split shard {args.shard}: {exc}")
    print(
        f"split {result['parent']} -> "
        f"{', '.join(c['id'] for c in result['children'])} "
        f"(epoch {result['epoch']})"
    )
    for child in result["children"]:
        print(
            f"  {child['id']}: cells [{child['range'][0]}, "
            f"{child['range'][1]}), {child['indexed']} indexed, "
            f"{child['replayed_records']} log record(s) replayed"
        )
    print(
        f"retired store left at {result['retired_store']}; start workers "
        f"for the children and send the router {{\"op\": \"reload\"}}"
    )
    return 0


def _cmd_shard_catchup(args) -> int:
    from repro.errors import WalError
    from repro.shard import catch_up_shard

    try:
        result = catch_up_shard(
            args.root, args.shard, donor=args.donor
        )
    except (FileNotFoundError, KeyError, ValueError, WalError) as exc:
        sys.exit(f"error: cannot catch up shard {args.shard}: {exc}")
    print(
        f"caught up {result['shard']} from {result['donor']}: "
        f"{result['caught_up_records']} record(s) above LSN "
        f"{result['behind_from_lsn']}, {result['indexed']} indexed"
    )
    return 0


def _cmd_stats(args) -> int:
    """Fetch metrics (and optionally traces) from a *running* server."""
    import json

    from repro.service import send_request

    address = (args.host, args.port)
    try:
        if args.format == "prom":
            response = send_request(
                address, {"op": "metrics", "format": "prom", "v": 1}
            )
        elif args.format == "json":
            response = send_request(address, {"op": "metrics", "v": 1})
        else:  # traces
            payload: dict = {"op": "trace", "v": 1}
            if args.trace_id is not None:
                payload["trace_id"] = args.trace_id
            response = send_request(address, payload)
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach server at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    if not response.get("ok"):
        error = response.get("error", {})
        print(
            f"error: server refused: {error.get('code')}: "
            f"{error.get('message')}",
            file=sys.stderr,
        )
        return 1
    if args.format == "prom":
        sys.stdout.write(response["result"])
    elif args.format == "traces":
        print(_render_traces(response["result"]))
    else:
        print(json.dumps(response["result"], indent=2))
    return 0


def _render_traces(result) -> str:
    """Render a trace response (single-node, routed, or by-id) as trees."""
    from repro.obs.trace import format_trace_tree

    records: list = []

    def collect(res) -> None:
        if not isinstance(res, dict):
            return
        if isinstance(res.get("trace"), dict):
            records.append(res["trace"])
        for rec in res.get("traces") or []:
            if isinstance(rec, dict):
                records.append(rec)
        for sub in (res.get("shards") or {}).values():
            collect(sub)

    collect(result)
    if not records:
        return "(no buffered traces)"
    blocks = []
    for rec in records:
        header = ""
        if rec.get("trace_id"):
            bits = [f"trace {rec['trace_id']}"]
            if rec.get("retained"):
                bits.append(f"retained={rec['retained']}")
            header = "  ".join(bits) + "\n"
        blocks.append(header + format_trace_tree(rec))
    return "\n\n".join(blocks)


def _cmd_profile(args) -> int:
    """Sample a running server's (or routed shard set's) thread stacks."""
    from repro.obs.profile import collapsed_text
    from repro.service import send_request

    host, sep, port_text = args.address.rpartition(":")
    if not sep or not port_text.isdigit():
        sys.exit(f"error: address must be host:port, got {args.address!r}")
    address = (host or "127.0.0.1", int(port_text))
    payload = {"op": "profile", "seconds": args.seconds, "hz": args.hz, "v": 1}
    try:
        # A routed profile takes the window on every shard plus its own:
        # allow the window twice over, plus transport slack.
        response = send_request(
            address, payload, timeout=args.seconds * 2 + 15.0
        )
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach server at {address[0]}:{address[1]}: {exc}",
            file=sys.stderr,
        )
        return 2
    if not response.get("ok"):
        error = response.get("error", {})
        print(
            f"error: server refused: {error.get('code')}: "
            f"{error.get('message')}",
            file=sys.stderr,
        )
        return 1
    profile = response["result"]
    summary = (
        f"{profile['samples']} samples over {profile['seconds']:.1f}s "
        f"at {profile['hz']}Hz ({len(profile['stacks'])} distinct stacks)"
    )
    parts = profile.get("parts")
    if parts:
        summary += f" across {', '.join(parts)}"
    # Keep stdout pure collapsed-stack format (flamegraph.pl input);
    # the human summary goes to stderr.
    print(summary, file=sys.stderr)
    text = collapsed_text(profile)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        print(f"wrote collapsed stacks to {args.out}", file=sys.stderr)
    elif text:
        print(text)
    return 0


def _cmd_explain(args) -> int:
    """Per-level query profile: local build/snapshot or a live server."""
    import json

    from repro.obs import format_explain

    if args.query_op == "point":
        if args.x is None or args.y is None:
            sys.exit("error: explain point requires --x and --y")
        query = {"op": "point", "x": args.x, "y": args.y}
    elif args.query_op == "window":
        if None in (args.x1, args.y1, args.x2, args.y2):
            sys.exit("error: explain window requires --x1 --y1 --x2 --y2")
        query = {
            "op": "window",
            "x1": args.x1,
            "y1": args.y1,
            "x2": args.x2,
            "y2": args.y2,
            "mode": args.mode,
        }
    else:  # nearest
        if args.x is None or args.y is None:
            sys.exit("error: explain nearest requires --x and --y")
        query = {"op": "nearest", "x": args.x, "y": args.y, "k": args.k}

    if args.port is not None:
        from repro.service import send_request

        try:
            response = send_request(
                (args.host, args.port), {"op": "explain", "query": query, "v": 1}
            )
        except (ConnectionError, OSError) as exc:
            print(
                f"error: cannot reach server at {args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 2
        if not response.get("ok"):
            error = response.get("error", {})
            print(
                f"error: server refused: {error.get('code')}: "
                f"{error.get('message')}",
                file=sys.stderr,
            )
            return 1
        report = response["result"]
    else:
        from repro.service import QueryEngine
        from repro.service.api import parse_request

        index = _build_or_open(args)
        engine = QueryEngine(index)
        report = engine.execute(parse_request({"op": "explain", "query": query}))
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(format_explain(report))
    return 0


def _cmd_bench(args) -> int:
    """Run the fixed benchmark workload; optionally gate on a baseline."""
    import json

    from repro.bench import (
        run_bench,
        run_serve_bench,
        run_shard_bench,
        run_vector_bench,
        write_record,
    )
    from repro.bench.compare import (
        EXIT_INCOMPARABLE,
        compare_records,
        load_record,
    )
    from repro.metric_names import PAPER_METRICS

    if args.serve:
        record = run_serve_bench({"seed": args.seed})
    elif args.backend == "vector":
        if args.routed:
            print(
                "error: --backend vector and --routed are separate benches",
                file=sys.stderr,
            )
            return 2
        # The backend bench has its own (larger) default scale and query
        # count; only forward knobs the user actually changed.
        from repro.bench import DEFAULT_PARAMS

        params = {"county": args.county, "seed": args.seed}
        if args.scale != DEFAULT_PARAMS["scale"]:
            params["scale"] = args.scale
        if args.queries != DEFAULT_PARAMS["n_queries"]:
            params["n_queries"] = args.queries
        record = run_vector_bench(params)
    else:
        params = {
            "county": args.county,
            "scale": args.scale,
            "n_queries": args.queries,
            "seed": args.seed,
        }
        if args.routed:
            params["n_shards"] = args.n_shards
            record = run_shard_bench(params)
        else:
            record = run_bench(params)
    if args.json:
        write_record(record, args.json)
        print(f"wrote {args.json} ({record['git_sha']})")
    if args.serve:
        for mode, entry in record["modes"].items():
            wall = entry["wall"]
            print(
                f"  {mode}: {entry['connections']} conns, "
                f"{entry['requests']} requests, {entry['errors']} errors, "
                f"p50={wall['p50_ms']:.2f}ms p99={wall['p99_ms']:.2f}ms"
            )
        gc = record["modes"]["async"].get("group_commit") or {}
        if gc.get("mutations"):
            print(
                f"  group commit: {gc['mutations']} mutations -> "
                f"{gc['fsyncs']} fsyncs "
                f"({gc['fsyncs_per_mutation']:.2f} fsyncs/mutation)"
            )
    else:
        for name, entry in record["structures"].items():
            totals = entry["totals"]
            summary = ", ".join(f"{m}={totals[m]}" for m in PAPER_METRICS)
            print(f"  {name}: {summary}")
            if args.backend == "vector":
                for wname, w in entry["workloads"].items():
                    print(
                        f"    {wname}: scalar {w['scalar']['wall_ms']:.1f}ms"
                        f" -> vector {w['vector_ms']:.1f}ms"
                        f" ({w['speedup']:.2f}x, parity ok)"
                    )
    if args.compare:
        try:
            baseline = load_record(args.compare)
        except FileNotFoundError:
            print(f"error: baseline not found: {args.compare}", file=sys.stderr)
            return EXIT_INCOMPARABLE
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"error: cannot read baseline {args.compare}: {exc}",
                file=sys.stderr,
            )
            return EXIT_INCOMPARABLE
        code, lines = compare_records(baseline, record, tolerance=args.tolerance)
        print("\n".join(lines))
        return code
    return 0


def _cmd_check(args) -> int:
    from repro.analysis import check_index, check_snapshot, format_findings, has_errors
    from repro.analysis.findings import FSCK_RULES
    from repro.storage import CodecError

    if args.rules:
        print(FSCK_RULES.describe())
        return 0
    if getattr(args, "shards", None):
        import os

        from repro.analysis import check_shard_set

        if not os.path.isdir(args.shards):
            print(f"error: no such directory: {args.shards}", file=sys.stderr)
            return 2
        findings = check_shard_set(args.shards)
        print(format_findings(findings, title=f"fsck shard set {args.shards}"))
        return 1 if has_errors(findings) else 0
    if getattr(args, "wal", None):
        from repro.analysis import check_durable

        import os

        if not os.path.isdir(args.wal):
            print(f"error: no such directory: {args.wal}", file=sys.stderr)
            return 2
        findings = check_durable(args.wal)
        print(format_findings(findings, title=f"fsck durable store {args.wal}"))
        return 1 if has_errors(findings) else 0
    if args.snapshot:
        try:
            findings = check_snapshot(args.snapshot)
        except FileNotFoundError:
            print(f"error: snapshot not found: {args.snapshot}", file=sys.stderr)
            return 2
        except CodecError as exc:
            print(f"error: cannot read {args.snapshot}: {exc}", file=sys.stderr)
            return 2
        title = f"fsck {args.snapshot}"
    else:
        from repro.data import generate_county
        from repro.harness.experiment import build_structure

        built = build_structure(
            args.structure, generate_county(args.county, scale=args.scale)
        )
        findings = check_index(built.index)
        title = f"fsck {args.structure} over {args.county} (scale {args.scale})"
    print(format_findings(findings, title=title))
    return 1 if has_errors(findings) else 0


def _cmd_lint(args) -> int:
    from repro.analysis import format_findings, lint_paths
    from repro.analysis.findings import LINT_RULES
    from repro.analysis.lint import iter_python_files

    if args.rules:
        print(LINT_RULES.describe())
        return 0
    import os

    for path in args.paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    if not iter_python_files(args.paths):
        print(f"error: no python files under {args.paths}", file=sys.stderr)
        return 2
    if args.concurrency:
        from repro.analysis import lint_concurrency_paths

        findings = lint_concurrency_paths(args.paths)
        title = f"concurrency lint {' '.join(args.paths)}"
    else:
        findings = lint_paths(args.paths)
        title = f"lint {' '.join(args.paths)}"
    print(format_findings(findings, title=title))
    return 1 if findings else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of Hoel & Samet, SIGMOD 1992.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in (
        "table1",
        "table2",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "occupancy",
        "generate",
        "report",
    ):
        p = sub.add_parser(name)
        _add_common(p)
        if name == "report":
            p.add_argument("--out", default=None, help="write markdown here")

    p = sub.add_parser("snapshot", help="build an index and save it to disk")
    _add_common(p)
    p.add_argument("--structure", default="R*", choices=["R*", "R+", "PMR", "R"])
    p.add_argument("--out", required=True, help="snapshot file to write")

    p = sub.add_parser("serve", help="serve an index over JSON-over-TCP")
    _add_common(p)
    p.add_argument("--structure", default="R*", choices=["R*", "R+", "PMR", "R"])
    p.add_argument("--snapshot", default=None, help="open this snapshot instead of building")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--cache-size", type=int, default=256)
    p.add_argument(
        "--wal",
        default=None,
        help="durable-store directory: create it (or recover it) and "
        "write-ahead log every mutation",
    )
    p.add_argument(
        "--group-commit",
        type=int,
        default=1,
        help="fsync once per N logged records (1 = every commit)",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="capture per-query trace spans (read back via 'op': 'trace')",
    )
    p.add_argument(
        "--trace-capacity",
        type=int,
        default=64,
        help="finished traces kept in the ring buffer",
    )
    p.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="arm distributed tail-based trace sampling at this head "
        "rate in [0, 1]; errored (and, with --slow-ms, slow) requests "
        "are retained regardless",
    )
    p.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="log queries slower than this many milliseconds",
    )
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime lock-order sanitizer (report on exit; "
        "exit 1 on a potential deadlock)",
    )
    p.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve from one asyncio event loop instead of a thread per "
        "connection; adds the pipelined wire protocol v2",
    )
    p.add_argument(
        "--backend",
        default="scalar",
        choices=["scalar", "vector"],
        help="traversal backend for query execution ('vector' falls "
        "back to scalar when numpy is unavailable; see stats())",
    )
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        help="close a connection idle for this many seconds (0 = never)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=1024,
        help="global in-flight request cap before server_overloaded "
        "(--async only)",
    )
    p.add_argument(
        "--max-inflight-conn",
        type=int,
        default=64,
        help="per-connection in-flight cap before server_overloaded "
        "(--async only)",
    )
    p.add_argument(
        "--executor-workers",
        type=int,
        default=4,
        help="engine executor threads behind the event loop (--async only)",
    )

    for name, helptext in (
        ("checkpoint", "fold a durable store's log into a fresh snapshot"),
        ("recover", "replay a durable store's log and re-checkpoint it"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--wal", required=True, help="durable-store directory")
        p.add_argument("--group-commit", type=int, default=1)

    p = sub.add_parser("bench-serve", help="drive a server with K client threads")
    _add_common(p)
    p.add_argument("--structure", default="R*", choices=["R*", "R+", "PMR", "R"])
    p.add_argument("--snapshot", default=None, help="open this snapshot instead of building")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--cache-size", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--trace",
        action="store_true",
        help="enable tracing for the run (reported, and stresses the "
        "instrumented path)",
    )
    p.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="arm the slow-query log at this threshold",
    )
    p.add_argument(
        "--connect",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="drive running server(s) instead of building locally; repeat "
        "the flag to round-robin client threads across addresses (e.g. a "
        "shard router plus direct workers)",
    )
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="run the bench under the lock-order sanitizer (exit 1 on a "
        "potential deadlock)",
    )
    p.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="drive an AsyncMapServer with pipelined v2 connections "
        "(--threads becomes the connection count)",
    )
    p.add_argument(
        "--pipeline",
        type=int,
        default=8,
        help="requests kept in flight per connection (--async only)",
    )
    p.add_argument(
        "--mutate-frac",
        type=float,
        default=0.0,
        help="share of requests that are inserts (--async only; pair with "
        "--wal to measure group commit)",
    )
    p.add_argument(
        "--wal",
        default=None,
        help="serve durably from this directory for the async bench "
        "(enables the group-commit measurement)",
    )

    p = sub.add_parser(
        "shard-init",
        help="create a shard set: manifest + one durable store per shard",
    )
    _add_common(p)
    p.add_argument("--structure", default="R*", choices=["R*", "R+", "PMR", "R"])
    p.add_argument("--root", required=True, help="shard-set directory")
    p.add_argument("--n-shards", type=int, default=4)
    p.add_argument(
        "--order",
        type=int,
        default=None,
        help="Hilbert curve order (default: sized from the segment count)",
    )
    p.add_argument("--page-size", type=int, default=1024)
    p.add_argument("--pool-pages", type=int, default=16)

    p = sub.add_parser(
        "shard-worker", help="serve one shard of a set (publishes shard.addr)"
    )
    p.add_argument("--root", required=True, help="shard-set directory")
    p.add_argument("--shard", required=True, help="shard id from the manifest")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    p.add_argument("--group-commit", type=int, default=1)
    p.add_argument("--slow-ms", type=float, default=None)
    p.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="arm distributed tail-based trace sampling at this head rate",
    )
    p.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        help="finished traces kept in the ring buffer",
    )
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime lock-order sanitizer for this worker",
    )
    p.add_argument(
        "--backend",
        default="scalar",
        choices=["scalar", "vector"],
        help="traversal backend for this worker's query execution",
    )

    p = sub.add_parser(
        "route", help="scatter-gather router over a shard set's workers"
    )
    p.add_argument("--root", required=True, help="shard-set directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-shard request timeout in seconds",
    )
    p.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="arm distributed tail-based trace sampling at this head "
        "rate; sampled requests return a stitched cross-shard trace tree",
    )
    p.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        help="finished traces kept in the router's ring buffer",
    )
    p.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="tail-retain traces at least this slow even when unsampled",
    )
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime lock-order sanitizer for the router",
    )
    p.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve the router from one asyncio event loop; adds the "
        "pipelined wire protocol v2 in front of the shard set",
    )

    p = sub.add_parser(
        "shard-split",
        help="split a hot shard into two children (stop its worker first)",
    )
    p.add_argument("--root", required=True, help="shard-set directory")
    p.add_argument("--shard", required=True, help="shard id to split")

    p = sub.add_parser(
        "shard-catchup",
        help="replay a lagging shard's missed mutations from a peer's WAL",
    )
    p.add_argument("--root", required=True, help="shard-set directory")
    p.add_argument("--shard", required=True, help="lagging shard id")
    p.add_argument(
        "--donor",
        default=None,
        help="peer to copy from (default: the peer with the highest LSN)",
    )

    p = sub.add_parser(
        "stats", help="fetch metrics/traces from a running server"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument(
        "--format",
        default="json",
        choices=["json", "prom", "traces"],
        help="json = metrics registry, prom = Prometheus text exposition, "
        "traces = recent trace trees, rendered",
    )
    p.add_argument(
        "--trace-id",
        default=None,
        help="with --format traces: fetch one trace by id (the 'tc.t' a "
        "sampled response carried); against a router this returns the "
        "stitched cross-shard tree",
    )

    p = sub.add_parser(
        "profile",
        help="sampling-profile a running server or router (collapsed "
        "flamegraph stacks on stdout)",
    )
    p.add_argument("address", help="host:port of a running server/router")
    p.add_argument(
        "--seconds", type=float, default=1.0, help="sampling window"
    )
    p.add_argument("--hz", type=int, default=97, help="sampling frequency")
    p.add_argument(
        "-o",
        "--out",
        default=None,
        help="write collapsed stacks to this file instead of stdout",
    )

    p = sub.add_parser(
        "explain", help="per-level query profile (EXPLAIN) for one read query"
    )
    _add_common(p)
    p.add_argument("query_op", choices=["point", "window", "nearest"])
    p.add_argument("--structure", default="R*", choices=["R*", "R+", "PMR", "R"])
    p.add_argument("--snapshot", default=None, help="open this snapshot instead of building")
    p.add_argument("--x", type=float, default=None)
    p.add_argument("--y", type=float, default=None)
    p.add_argument("--x1", type=float, default=None)
    p.add_argument("--y1", type=float, default=None)
    p.add_argument("--x2", type=float, default=None)
    p.add_argument("--y2", type=float, default=None)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--mode", default="intersects", choices=["intersects", "contains"])
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=None,
        help="send the explain to a running server instead of building locally",
    )
    p.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="text = rendered plan, json = the raw report object",
    )

    p = sub.add_parser(
        "bench",
        help="run the fixed perf-baseline workload (BENCH_*.json records)",
    )
    p.add_argument("--county", default="cecil")
    p.add_argument("--scale", type=float, default=0.02)
    p.add_argument("--queries", type=int, default=25)
    p.add_argument("--seed", type=int, default=1992)
    p.add_argument("--json", default=None, help="write the record here")
    p.add_argument(
        "--compare",
        default=None,
        help="baseline BENCH_*.json to gate against (exit 1 on regression, "
        "2 if the records are not comparable)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative headroom for gated counters (default 10%%)",
    )
    p.add_argument(
        "--routed",
        action="store_true",
        help="drive the workloads through a sharded service (one shard "
        "set per structure) instead of bare indexes; emits a "
        "repro-shard-bench record",
    )
    p.add_argument(
        "--n-shards",
        type=int,
        default=4,
        help="shard count for --routed (part of the record's params)",
    )
    p.add_argument(
        "--serve",
        action="store_true",
        help="bench the serving path instead: threaded vs async front "
        "ends under load; emits a repro-serve-bench record",
    )
    p.add_argument(
        "--backend",
        default="scalar",
        choices=["scalar", "vector"],
        help="'vector' runs the backend comparison bench instead "
        "(scalar vs vectorized traversal with in-run parity checks; "
        "emits a repro-bench-vector record with its own larger "
        "default scale/queries)",
    )

    p = sub.add_parser("check", help="static index fsck (no queries executed)")
    _add_common(p)
    p.add_argument(
        "snapshot",
        nargs="?",
        default=None,
        help="snapshot file to check; omit to build --structure fresh",
    )
    p.add_argument("--structure", default="R*", choices=["R*", "R+", "PMR", "R"])
    p.add_argument("--rules", action="store_true", help="list fsck rules and exit")
    p.add_argument(
        "--wal",
        default=None,
        help="fsck a durable-store directory (rules FS07..FS10 plus the "
        "full checkpoint-snapshot walk)",
    )
    p.add_argument(
        "--shards",
        default=None,
        help="fsck a shard-set directory (rules SH01..SH05 plus the "
        "durable-store walk on every member)",
    )

    p = sub.add_parser("lint", help="project AST lint (RP measurement rules, CC concurrency rules)")
    p.add_argument("paths", nargs="*", default=["src/"], help="files or directories")
    p.add_argument("--rules", action="store_true", help="list lint rules and exit")
    p.add_argument(
        "--concurrency",
        action="store_true",
        help="run the lock-discipline pass (CC01..CC05) instead of the RP rules",
    )

    args = parser.parse_args(argv)

    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bench-serve":
        return _cmd_bench_serve(args)
    if args.command == "shard-init":
        return _cmd_shard_init(args)
    if args.command == "shard-worker":
        return _cmd_shard_worker(args)
    if args.command == "route":
        return _cmd_route(args)
    if args.command == "shard-split":
        return _cmd_shard_split(args)
    if args.command == "shard-catchup":
        return _cmd_shard_catchup(args)
    if args.command == "checkpoint":
        return _cmd_checkpoint(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "lint":
        return _cmd_lint(args)

    # Imports deferred so `--help` stays instant.
    from repro.data import generate_county
    from repro.harness import (
        figure6_sweep,
        format_figure6,
        format_normalized,
        format_occupancy,
        format_table1,
        format_table2,
        normalized_ranges,
        occupancy_report,
        table1,
    )
    from repro.harness.normalized import collect_all_counties
    from repro.harness.query_stats import county_query_stats
    from repro.metric_names import BBOX_COMPS, DISK_ACCESSES, SEGMENT_COMPS

    if args.command == "table1":
        print(format_table1(table1(scale=args.scale)))
    elif args.command == "table2":
        stats = county_query_stats(
            args.county, scale=args.scale, n_queries=args.queries
        )
        print(format_table2(stats, county=args.county))
    elif args.command == "figure6":
        cells = figure6_sweep(county=args.county, scale=args.scale)
        print(format_figure6(cells))
    elif args.command in ("figure7", "figure8", "figure9"):
        per_county = collect_all_counties(scale=args.scale, n_queries=args.queries)
        if args.command == "figure7":
            ranges = normalized_ranges(
                per_county, BBOX_COMPS, structures=("R+",), baseline="R*"
            )
            print(
                format_normalized(
                    ranges, "Figure 7: relative bounding box computations",
                    baseline="R*",
                )
            )
        elif args.command == "figure8":
            ranges = normalized_ranges(per_county, DISK_ACCESSES)
            print(format_normalized(ranges, "Figure 8: relative disk accesses"))
        else:
            ranges = normalized_ranges(per_county, SEGMENT_COMPS)
            print(
                format_normalized(ranges, "Figure 9: relative segment comparisons")
            )
    elif args.command == "occupancy":
        print(format_occupancy(occupancy_report(county=args.county, scale=args.scale)))
    elif args.command == "generate":
        from repro.data.stats import map_statistics

        m = generate_county(args.county, scale=args.scale)
        print(map_statistics(m))
    elif args.command == "report":
        from repro.harness.report import full_report

        text = full_report(
            scale=args.scale, n_queries=args.queries, out_path=args.out
        )
        if args.out:
            print(f"report written to {args.out}")
        else:
            print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
