"""Command-line reproduction driver: ``python -m repro <experiment>``.

Regenerates any of the paper's tables and figures from the terminal:

    python -m repro table1                     # build statistics
    python -m repro table2 --county charles    # per-query metrics
    python -m repro figure6                    # page/buffer sweep
    python -m repro figure7|figure8|figure9    # normalized ranges
    python -m repro occupancy                  # Concluding Remarks
    python -m repro generate --county cecil    # inspect a synthetic map

``--scale`` is the fraction of the paper's ~50 000 segments per county
(default 0.05); ``--queries`` the number of queries per workload
(default 100; the paper used 1000).
"""

from __future__ import annotations

import argparse
import sys


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--queries", type=int, default=100)
    parser.add_argument("--county", default="charles")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of Hoel & Samet, SIGMOD 1992.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in (
        "table1",
        "table2",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "occupancy",
        "generate",
        "report",
    ):
        p = sub.add_parser(name)
        _add_common(p)
        if name == "report":
            p.add_argument("--out", default=None, help="write markdown here")
    args = parser.parse_args(argv)

    # Imports deferred so `--help` stays instant.
    from repro.data import generate_county
    from repro.harness import (
        figure6_sweep,
        format_figure6,
        format_normalized,
        format_occupancy,
        format_table1,
        format_table2,
        normalized_ranges,
        occupancy_report,
        table1,
    )
    from repro.harness.normalized import collect_all_counties
    from repro.harness.query_stats import county_query_stats

    if args.command == "table1":
        print(format_table1(table1(scale=args.scale)))
    elif args.command == "table2":
        stats = county_query_stats(
            args.county, scale=args.scale, n_queries=args.queries
        )
        print(format_table2(stats, county=args.county))
    elif args.command == "figure6":
        cells = figure6_sweep(county=args.county, scale=args.scale)
        print(format_figure6(cells))
    elif args.command in ("figure7", "figure8", "figure9"):
        per_county = collect_all_counties(scale=args.scale, n_queries=args.queries)
        if args.command == "figure7":
            ranges = normalized_ranges(
                per_county, "bbox_comps", structures=("R+",), baseline="R*"
            )
            print(
                format_normalized(
                    ranges, "Figure 7: relative bounding box computations",
                    baseline="R*",
                )
            )
        elif args.command == "figure8":
            ranges = normalized_ranges(per_county, "disk_accesses")
            print(format_normalized(ranges, "Figure 8: relative disk accesses"))
        else:
            ranges = normalized_ranges(per_county, "segment_comps")
            print(
                format_normalized(ranges, "Figure 9: relative segment comparisons")
            )
    elif args.command == "occupancy":
        print(format_occupancy(occupancy_report(county=args.county, scale=args.scale)))
    elif args.command == "generate":
        from repro.data.stats import map_statistics

        m = generate_county(args.county, scale=args.scale)
        print(map_statistics(m))
    elif args.command == "report":
        from repro.harness.report import full_report

        text = full_report(
            scale=args.scale, n_queries=args.queries, out_path=args.out
        )
        if args.out:
            print(f"report written to {args.out}")
        else:
            print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
