"""repro -- a reproduction of Hoel & Samet, "A Qualitative Comparison
Study of Data Structures for Large Line Segment Databases" (SIGMOD 1992).

The package implements, from scratch, the three disk-resident spatial
indexes the paper compares (the R*-tree, the hybrid R+-tree, and the PMR
quadtree stored as a linear quadtree in a paged B-tree), the storage
substrate whose buffer-pool misses are the paper's "disk accesses", the
five spatial queries of the study, a synthetic TIGER-like map generator,
and a harness that regenerates every table and figure of the evaluation.

Quickstart::

    from repro import (
        PMRQuadtree, QuerySpec, Rect, StorageContext, execute_spec,
        generate_county,
    )

    county = generate_county("baltimore", scale=0.05)
    ctx = StorageContext.create()          # 1 KiB pages, 16-page LRU pool
    index = PMRQuadtree(ctx)               # or RStarTree / RPlusTree
    for seg_id in ctx.load_segments(county.segments):
        index.insert(seg_id)

    spec = QuerySpec.window(Rect(1000, 1000, 1160, 1160))
    hits = execute_spec(index, spec)       # scalar reference backend
    print(ctx.counters.disk_accesses, "potential disk accesses")

    # Same query, numpy struct-of-arrays traversal (identical counters):
    from repro.core.backends import resolve_backend
    hits = resolve_backend("vector").run(index, spec)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    GuttmanRTree,
    KDBTree,
    NNItem,
    PM1Quadtree,
    PM2Quadtree,
    PM3Quadtree,
    PMRQuadtree,
    RPlusTree,
    RStarTree,
    SpatialIndex,
    TrueRPlusTree,
    UniformGrid,
)
from repro.core.interface import WORLD_DEPTH, WORLD_SIZE
from repro.core.backends import ScalarBackend, resolve_backend
from repro.core.interface import TraversalBackend
from repro.core.queries import (
    PolygonResult,
    QuerySpec,
    enclosing_polygon,
    execute_spec,
    iter_nearest,
    nearest_segment,
    segments_at_other_endpoint,
    segments_at_point,
    window_query,
)
from repro.data import (
    COUNTY_NAMES,
    MapData,
    generate_county,
    generate_map,
    normalize_segments,
)
from repro.errors import (
    CodecError,
    NotDurableError,
    ProtocolError,
    ReproError,
    SnapshotError,
    WalError,
)
from repro.geometry import Point, Rect, Segment
from repro.storage import BufferPool, DiskManager, MetricsCounters, StorageContext

__version__ = "1.0.0"

__all__ = [
    "BufferPool",
    "COUNTY_NAMES",
    "CodecError",
    "DiskManager",
    "GuttmanRTree",
    "KDBTree",
    "MapData",
    "MetricsCounters",
    "NNItem",
    "NotDurableError",
    "PM1Quadtree",
    "PM2Quadtree",
    "PM3Quadtree",
    "PMRQuadtree",
    "Point",
    "PolygonResult",
    "QuerySpec",
    "ProtocolError",
    "RPlusTree",
    "RStarTree",
    "Rect",
    "ReproError",
    "Segment",
    "SnapshotError",
    "SpatialIndex",
    "StorageContext",
    "WalError",
    "TrueRPlusTree",
    "UniformGrid",
    "WORLD_DEPTH",
    "WORLD_SIZE",
    "ScalarBackend",
    "TraversalBackend",
    "enclosing_polygon",
    "execute_spec",
    "generate_county",
    "generate_map",
    "iter_nearest",
    "nearest_segment",
    "normalize_segments",
    "segments_at_other_endpoint",
    "segments_at_point",
    "resolve_backend",
    "window_query",
    "__version__",
]
