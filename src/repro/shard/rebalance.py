"""Checkpointed rebalancing: split a hot shard, catch up a lagging one.

Both operations work on the durable state on disk and end with an
atomic manifest swap (epoch + 1 for a split), so the running router
picks up the new world with one ``{"op": "reload"}`` -- the drain gate
in :class:`~repro.shard.router.ShardRouter` guarantees no request is in
flight across the swap.

**Split** (:func:`split_shard`): the parent's Hilbert range is cut at
the weighted midpoint (per-cell live-segment counts), and each child is
materialized through the existing durability machinery: reopen the
parent's *snapshot*, copy the replicated table, index the child's own
region, then :func:`~repro.wal.store.replay_records` the parent's WAL
suffix with the child's ownership predicate as ``index_filter`` --
exactly the recovery path, pointed at a narrower region. Each child
becomes a fresh :class:`~repro.wal.store.DurableStore` based at the
parent's last LSN -- continuing the lineage keeps every shard's log
numbered by the same global mutation stream, which is what makes
catch-up's LSN comparisons sound. The parent's directory is left
behind, unreferenced by the new manifest.

**Catch-up** (:func:`catch_up_shard`): the replicated-table contract
means every shard logs the *same* mutation stream, so per-shard LSNs
are comparable. A worker that was down while the router kept applying
mutations is behind by exactly the donor records with
``lsn > target.last_lsn``. Those records are re-logged into the target's
WAL (same LSNs, by construction) and replayed with the target's region
filter. The donor must not have checkpointed past the target's LSN --
folding the log destroys the catch-up suffix, the classic reason
replicated logs are retained until every replica acks.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import WalError
from repro.geometry import Rect
from repro.service.snapshot import empty_index_like, open_index, snapshot_info
from repro.shard.manifest import ShardMap, cell_weights
from repro.storage.context import StorageContext
from repro.wal.log import ensure_contiguous, scan_log
from repro.wal.records import InsertRecord
from repro.wal.store import DurableStore, open_durable, replay_records


def _scan_store(store_root: str) -> Tuple[int, List[Any]]:
    """(checkpoint LSN, post-checkpoint log records) of a store on disk."""
    paths = DurableStore.paths(store_root)
    info = snapshot_info(paths["snapshot"])
    embedded = info.get("wal", {}).get("checkpoint_lsn")
    if embedded is None:
        raise WalError(f"{store_root} snapshot has no embedded checkpoint LSN")
    records: List[Any] = []
    if os.path.exists(paths["log"]):
        scan = scan_log(paths["log"])
        ensure_contiguous(scan, paths["log"])
        records = [r for r in scan.records if r.lsn > embedded]
    return embedded, records


def _last_lsn(store_root: str) -> int:
    embedded, records = _scan_store(store_root)
    return records[-1].lsn if records else embedded


def split_shard(
    root: str,
    shard_id: str,
    pool_pages: int = 16,
    group_commit: int = 1,
    replay_order: str = "morton",
) -> Dict[str, Any]:
    """Split ``shard_id`` into two children and swap in the new epoch.

    Run against the on-disk store while the worker for ``shard_id`` is
    stopped (its WAL must be quiescent); other workers keep serving.
    After the manifest swap, start workers for the children and send the
    router ``{"op": "reload"}``.
    """
    root = os.fspath(root)
    smap = ShardMap.load(root)
    smap.shard(shard_id)  # raises KeyError for an unknown shard
    parent_root = smap.store_path(root, shard_id)
    paths = DurableStore.paths(parent_root)
    checkpoint_lsn, records = _scan_store(parent_root)
    snap_index = open_index(paths["snapshot"], pool_pages=pool_pages)
    table = snap_index.ctx.segments
    world = Rect(0.0, 0.0, smap.world_size, smap.world_size)
    live = sorted(set(snap_index.candidate_ids_in_rect(world)))
    weights = cell_weights(
        [table.peek(sid) for sid in live], smap.order, smap.world_size
    )
    new_map = smap.split(shard_id, weights=weights)
    parent_ids = {s.shard_id for s in smap.shards}
    children = [s for s in new_map.shards if s.shard_id not in parent_ids]
    parent_last = records[-1].lsn if records else checkpoint_lsn

    results = []
    for child in children:
        ctx = StorageContext.create(
            page_size=snap_index.ctx.page_size, pool_pages=pool_pages
        )
        child_index = empty_index_like(snap_index, ctx)
        for seg_id in range(len(table)):
            ctx.segments.append(table.peek(seg_id))
        covers = new_map.index_filter(child.shard_id)
        for seg_id in live:
            if covers(seg_id, table.peek(seg_id)):
                child_index.insert(seg_id)
        replay = replay_records(
            child_index,
            records,
            checkpoint_lsn,
            order=replay_order,
            index_filter=covers,
        )
        store = DurableStore.create(
            new_map.store_path(root, child.shard_id),
            child_index,
            group_commit=group_commit,
            base_lsn=parent_last,
        )
        store.close()
        results.append(
            {
                "id": child.shard_id,
                "range": [child.lo, child.hi],
                "indexed": child_index.entry_count(),
                "replayed_records": replay.replayed_records,
            }
        )
    new_map.save(root)
    return {
        "parent": shard_id,
        "children": results,
        "epoch": new_map.epoch,
        "retired_store": parent_root,
    }


def catch_up_shard(
    root: str,
    shard_id: str,
    donor: Optional[str] = None,
    pool_pages: int = 16,
    group_commit: int = 1,
    replay_order: str = "morton",
    checkpoint: bool = True,
) -> Dict[str, Any]:
    """Replay a lagging shard's missed mutations from a peer's WAL.

    Run while the worker for ``shard_id`` is stopped. ``donor`` defaults
    to the peer with the highest last LSN. The donor's records above the
    target's last LSN are appended to the target's own WAL (the
    replicated stream means the LSNs line up exactly) and applied with
    the target's region filter; ``checkpoint=True`` folds the result so
    the next open is clean.
    """
    root = os.fspath(root)
    smap = ShardMap.load(root)
    smap.shard(shard_id)
    target_root = smap.store_path(root, shard_id)
    if donor is None:
        peers = [s.shard_id for s in smap.shards if s.shard_id != shard_id]
        if not peers:
            raise ValueError("a single-shard set has no donor to catch up from")
        donor = max(
            peers, key=lambda sid: _last_lsn(smap.store_path(root, sid))
        )
    elif donor == shard_id:
        raise ValueError("a shard cannot donate to itself")
    donor_root = smap.store_path(root, donor)
    donor_checkpoint, donor_records = _scan_store(donor_root)

    store = open_durable(
        target_root,
        pool_pages=pool_pages,
        group_commit=group_commit,
        replay_order=replay_order,
        index_filter=smap.index_filter(shard_id),
    )
    try:
        behind_from = store.last_lsn
        needed = [r for r in donor_records if r.lsn > behind_from]
        if donor_checkpoint > behind_from:
            # Even with an empty log suffix the donor is ahead: records
            # in (behind_from, donor_checkpoint] were folded into its
            # snapshot and cannot be replayed.
            raise WalError(
                f"donor {donor} checkpointed at LSN {donor_checkpoint}, past "
                f"the target's LSN {behind_from}: the catch-up records were "
                f"folded away (checkpoint only when all shards are caught up)"
            )
        for record in needed:
            if isinstance(record, InsertRecord):
                lsn = store.log_insert(record.seg_id, record.segment)
            else:
                lsn = store.log_delete(record.seg_id)
            if lsn != record.lsn:
                raise WalError(
                    f"catch-up LSN skew: donor record {record.lsn} landed at "
                    f"{lsn}; the shard logs have diverged beyond catch-up"
                )
        store.commit()
        replay = replay_records(
            store.index,
            needed,
            behind_from,
            order=replay_order,
            index_filter=smap.index_filter(shard_id),
        )
        folded = store.checkpoint() if checkpoint and needed else None
    finally:
        store.close()
    return {
        "shard": shard_id,
        "donor": donor,
        "behind_from_lsn": behind_from,
        "caught_up_records": len(needed),
        "indexed": replay.inserted,
        "checkpoint": folded,
    }
