"""One shard: a full durable engine that indexes only its own region.

Every shard worker is an ordinary :class:`~repro.wal.store.DurableStore`
plus a :class:`ShardEngine` behind the standard JSON wire protocol
(:class:`~repro.service.server.MapServer`) -- the process split adds no
new protocol. The sharding contract is **replicated table, partitioned
index**:

* The segment *table* is identical in every shard: the router fans every
  insert to all shards, each appends in the same order, so positional
  seg_ids agree globally. That is what makes the router's cross-shard
  dedup (and delete routing) by seg_id sound.
* The *index* holds only segments whose bounding box touches the
  shard's Hilbert-cell region, so queries and their counters scale down
  with the shard, which is the point of sharding.

Recovery honours the same split: the WAL logs every mutation (the table
is rebuilt in full) while :func:`repro.wal.store.replay_records` gets
the shard's ownership predicate as ``index_filter`` so replay re-indexes
only the shard's own segments.

Workers bind an ephemeral port and publish ``{"host", "port", "pid"}``
in ``shard.addr`` inside their store directory; the router re-reads the
file on every reconnect, so a worker restarted on a new port is found
without touching the manifest.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Any, Dict, Optional

from repro.geometry import Rect
from repro.harness.experiment import STRUCTURE_FACTORIES
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER
from repro.sanitize import make_lock
from repro.service.engine import QueryEngine, QuerySession
from repro.service.server import MapServer
from repro.shard.manifest import ShardMap, cell_weights, segment_mbr
from repro.storage.context import StorageContext
from repro.wal.store import DurableStore, open_durable

SHARD_ADDR_NAME = "shard.addr"

#: Index kinds a shard set can serve: the snapshot-supported structures.
SHARD_STRUCTURES = ("R*", "R+", "PMR", "R")


class ShardEngine(QueryEngine):
    """A :class:`QueryEngine` that indexes only its shard's region.

    ``covers`` is the ownership predicate (a :class:`Rect` -> bool over
    the shard's Hilbert-cell union). Inserts always append to the table
    and always hit the WAL -- keeping positional ids and replay in
    lockstep with every other shard -- but only owned segments are
    indexed. Deletes of segments another shard owns are logged no-ops
    returning ``False`` (the single-node engine would raise
    ``unknown_seg``; the router restores that behaviour when *no* shard
    deleted).
    """

    def __init__(self, index, shard_id: str, covers, **kwargs: Any) -> None:
        super().__init__(index, **kwargs)
        self.shard_id = shard_id
        self.covers = covers

    def _apply_insert(
        self, segment, session: Optional[QuerySession]
    ) -> int:
        if session is None:
            session = self.session("maintenance")
        owned = self.covers(segment_mbr(segment))
        with TRACER.span("apply"):
            with self._attributed(session):
                seg_id = self.ctx.segments.append(segment)
                if self.store is not None:
                    self.store.log_insert(seg_id, segment)
                if owned:
                    self.index.insert(seg_id)
        self._commit_barrier()
        self.cache.invalidate_all()
        self.backend.invalidate()
        return seg_id

    def _apply_delete(
        self, seg_id: int, session: Optional[QuerySession]
    ) -> bool:
        if session is None:
            session = self.session("maintenance")
        with TRACER.span("apply"):
            with self._attributed(session):
                if not 0 <= seg_id < len(self.ctx.segments):
                    raise KeyError(
                        f"unknown segment id {seg_id}: the table holds "
                        f"0..{len(self.ctx.segments) - 1}"
                    )
                if self.store is not None:
                    self.store.log_delete(seg_id)
                try:
                    self.index.delete(seg_id)
                    deleted = True
                except KeyError:
                    deleted = False  # not locally indexed: a peer owns it
        self._commit_barrier()
        self.cache.invalidate_all()
        self.backend.invalidate()
        return deleted

    def stats(self) -> dict:
        out = super().stats()
        out["shard"] = {"id": self.shard_id}
        return out


# ----------------------------------------------------------------------
# Shard-set construction
# ----------------------------------------------------------------------
def _make_index(structure: str, ctx: StorageContext, world_size: float):
    if structure not in SHARD_STRUCTURES:
        raise ValueError(
            f"shard sets serve one of {SHARD_STRUCTURES}, got {structure!r}"
        )
    kwargs: Dict[str, Any] = {}
    if structure == "R+":
        kwargs["world"] = Rect(0.0, 0.0, world_size, world_size)
    elif structure == "PMR":
        kwargs["world_size"] = world_size
    return STRUCTURE_FACTORIES[structure](ctx, **kwargs)


def init_shard_set(
    root: str,
    structure: str,
    map_data=None,
    n_shards: int = 4,
    order: Optional[int] = None,
    world_size: Optional[float] = None,
    page_size: int = 1024,
    pool_pages: int = 16,
    group_commit: int = 1,
) -> ShardMap:
    """Create a shard set: the manifest plus one durable store per shard.

    With ``map_data`` every shard's table is loaded with the *full*
    segment list (replicated-table contract) and its index with the
    shard's own region; the partition is weighted by per-cell segment
    counts so shards start balanced. Without it the shards are empty and
    the curve is split into equal cell counts.
    """
    from repro.shard.manifest import DEFAULT_ORDER

    root = os.fspath(root)
    if os.path.exists(ShardMap.path(root)):
        raise FileExistsError(f"{root} already holds a shard map")
    if order is None:
        order = DEFAULT_ORDER
    if world_size is None:
        world_size = map_data.world_size if map_data is not None else None
    weights = None
    if map_data is not None:
        weights = cell_weights(
            map_data.segments, order, world_size=world_size
        )
    if world_size is None:
        from repro.core.interface import WORLD_SIZE

        world_size = WORLD_SIZE
    smap = ShardMap.partition(
        n_shards, order=order, world_size=world_size, weights=weights
    )
    for spec in smap.shards:
        ctx = StorageContext.create(page_size=page_size, pool_pages=pool_pages)
        index = _make_index(structure, ctx, world_size)
        if map_data is not None:
            seg_ids = ctx.load_segments(map_data.segments)
            for seg_id in seg_ids:
                seg = ctx.segments.peek(seg_id)
                if smap.covers(spec, segment_mbr(seg)):
                    index.insert(seg_id)
        store = DurableStore.create(
            smap.store_path(root, spec.shard_id),
            index,
            group_commit=group_commit,
        )
        store.close()
    smap.save(root)
    return smap


# ----------------------------------------------------------------------
# Serving
# ----------------------------------------------------------------------
class ShardServer(MapServer):
    """A :class:`MapServer` that tracks its live connections.

    ``server_close()`` also severs every accepted connection, so a
    stopped worker looks to the router exactly like a killed process:
    pooled connections die mid-stream instead of being kept alive by
    lingering handler threads (which is what the in-process harness
    would otherwise do)."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        self._conns: set = set()
        self._conns_lock = make_lock("shard.server.conns")
        super().__init__(*args, **kwargs)

    def get_request(self):
        sock, addr = super().get_request()
        with self._conns_lock:
            self._conns.add(sock)
        return sock, addr

    def shutdown_request(self, request) -> None:
        with self._conns_lock:
            self._conns.discard(request)
        super().shutdown_request(request)

    def server_close(self) -> None:
        super().server_close()
        with self._conns_lock:
            conns = list(self._conns)
            self._conns.clear()
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                continue  # already torn down by the handler thread
            sock.close()


def addr_path(store_root: str) -> str:
    return os.path.join(os.fspath(store_root), SHARD_ADDR_NAME)


def write_addr(store_root: str, host: str, port: int) -> str:
    """Publish the worker's address atomically next to its store."""
    path = addr_path(store_root)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump({"host": host, "port": port, "pid": os.getpid()}, fh)
    os.replace(tmp, path)
    return path


def read_addr(store_root: str) -> Dict[str, Any]:
    with open(addr_path(store_root), "r", encoding="utf-8") as fh:
        return json.load(fh)


def open_shard(
    root: str,
    shard_id: str,
    pool_pages: int = 16,
    group_commit: int = 1,
    replay_order: str = "morton",
    cache_capacity: int = 256,
    slow_ms: Optional[float] = None,
    backend: Any = None,
):
    """Recover one shard's store and wrap it in a :class:`ShardEngine`.

    Returns ``(shard_map, engine)``. Recovery passes the shard's
    ownership predicate to the WAL replay, so the rebuilt index holds
    exactly the shard's region even though the log records every
    mutation. Each engine gets its own metrics registry, so several
    shards hosted in one process (tests, the benchmark) keep their
    exports separate.
    """
    smap = ShardMap.load(root)
    spec = smap.shard(shard_id)
    store = open_durable(
        smap.store_path(root, shard_id),
        pool_pages=pool_pages,
        group_commit=group_commit,
        replay_order=replay_order,
        index_filter=smap.index_filter(shard_id),
    )
    engine = ShardEngine(
        store.index,
        shard_id,
        covers=lambda rect: smap.covers(spec, rect),
        store=store,
        registry=MetricsRegistry(),
        cache_capacity=cache_capacity,
        slow_ms=slow_ms,
        backend=backend,
    )
    return smap, engine


def serve_shard(
    root: str,
    shard_id: str,
    host: str = "127.0.0.1",
    port: int = 0,
    pool_pages: int = 16,
    group_commit: int = 1,
    slow_ms: Optional[float] = None,
    backend: Any = None,
) -> MapServer:
    """Open a shard and bind its server (not yet serving).

    The bound address is published to ``shard.addr``; call
    ``serve_forever()`` (the CLI worker) or ``start_background()``
    (tests and the in-process harness) on the returned server.
    """
    smap, engine = open_shard(
        root,
        shard_id,
        pool_pages=pool_pages,
        group_commit=group_commit,
        slow_ms=slow_ms,
        backend=backend,
    )
    server = ShardServer(engine, host=host, port=port)
    bound_host, bound_port = server.address
    write_addr(smap.store_path(root, shard_id), bound_host, bound_port)
    return server


class LocalShardSet:
    """Every shard of a set served in this process, one thread each.

    The unit tests and the routed benchmark use this instead of real
    worker processes: same stores, same wire protocol over loopback TCP,
    deterministic lifetime. Use as a context manager.
    """

    def __init__(self, root: str, **kwargs: Any) -> None:
        self.root = os.fspath(root)
        self.kwargs = kwargs
        self.servers: Dict[str, MapServer] = {}

    def __enter__(self) -> "LocalShardSet":
        smap = ShardMap.load(self.root)
        for spec in smap.shards:
            self.start(spec.shard_id)
        return self

    def start(self, shard_id: str) -> MapServer:
        server = serve_shard(self.root, shard_id, **self.kwargs)
        server.start_background()
        self.servers[shard_id] = server
        return server

    def stop(self, shard_id: str) -> None:
        server = self.servers.pop(shard_id)
        server.stop()  # joins the accept thread: no lingering server thread
        server.engine.store.close()

    def __exit__(self, *exc: Any) -> None:
        for shard_id in list(self.servers):
            self.stop(shard_id)
