"""``repro.shard``: the sharded map service.

The grid is split into contiguous Hilbert-key ranges
(:class:`~repro.shard.manifest.ShardMap`); each range is served by a full
durable store + query engine worker (:mod:`repro.shard.worker`) behind
the ordinary JSON wire protocol, and a scatter-gather router
(:mod:`repro.shard.router`) presents the set as one map server.
Rebalancing (:mod:`repro.shard.rebalance`) splits a hot shard through
the checkpoint/WAL machinery and swaps the manifest epoch atomically.
"""

from repro.shard.manifest import (
    DEFAULT_ORDER,
    SHARD_MAP_NAME,
    ShardMap,
    ShardSpec,
    cell_weights,
    segment_mbr,
)
from repro.shard.rebalance import catch_up_shard, split_shard
from repro.shard.router import (
    RouterCore,
    ShardClient,
    ShardRouter,
    merge_id_lists,
    merge_nearest,
)
from repro.shard.worker import (
    SHARD_STRUCTURES,
    LocalShardSet,
    ShardEngine,
    init_shard_set,
    open_shard,
    read_addr,
    serve_shard,
    write_addr,
)

__all__ = [
    "DEFAULT_ORDER",
    "SHARD_MAP_NAME",
    "SHARD_STRUCTURES",
    "LocalShardSet",
    "RouterCore",
    "ShardClient",
    "ShardEngine",
    "ShardMap",
    "ShardRouter",
    "ShardSpec",
    "catch_up_shard",
    "cell_weights",
    "init_shard_set",
    "merge_id_lists",
    "merge_nearest",
    "open_shard",
    "read_addr",
    "segment_mbr",
    "serve_shard",
    "split_shard",
    "write_addr",
]
