"""The shard map: contiguous Hilbert-key ranges over the paper's grid.

A shard map carves the ``world_size`` x ``world_size`` grid into
``4^order`` Hilbert cells (the curve of :func:`repro.core.pmr.locational.
hilbert_index` at ``order`` bits per axis) and assigns each shard one
contiguous half-open key range ``[lo, hi)``. Contiguity on the curve is
what makes the split useful: the Hilbert curve's locality means a
shard's cells form a compact blob of the map, so a window query touches
few shards (the hyperorthogonal-curve argument from the related work).

The manifest is one JSON file (:data:`SHARD_MAP_NAME`) at the shard-set
root::

    {"version": 1, "epoch": 1, "order": 3, "world_size": 16384,
     "shards": [{"id": "s0", "lo": 0, "hi": 16}, ...]}

``epoch`` increments on every rebalance; writers swap the file
atomically (temp + ``os.replace``) so a router reloading mid-split sees
either the old map or the new one, never a torn mix. Each shard's store
lives in the subdirectory named by its id.

Ranges must tile ``[0, 4^order)`` exactly: every cell is owned by one
shard, so every point of the world is owned by exactly one shard and a
segment straddling a boundary is *indexed* by each shard whose region
its bounding box touches (the router deduplicates by seg_id on merge).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.interface import WORLD_SIZE
from repro.core.pmr.locational import hilbert_index, hilbert_point
from repro.geometry import Rect, Segment

SHARD_MAP_NAME = "repro.shardmap"
SHARD_MAP_VERSION = 1

#: Default curve order for new shard sets: 4^3 = 64 cells, each
#: world_size/8 on a side -- fine enough to balance a handful of shards,
#: coarse enough that routing tests stay O(cells).
DEFAULT_ORDER = 3


def _fsync_dir(root: str) -> None:
    fd = os.open(root, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def segment_mbr(segment: Segment) -> Rect:
    """The axis-aligned bounding rectangle of a segment."""
    return Rect(
        min(segment.x1, segment.x2),
        min(segment.y1, segment.y2),
        max(segment.x1, segment.x2),
        max(segment.y1, segment.y2),
    )


@dataclass(frozen=True)
class ShardSpec:
    """One shard: an id (also its store directory name) and its
    half-open Hilbert-key range ``[lo, hi)``."""

    shard_id: str
    lo: int
    hi: int

    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.shard_id, "lo": self.lo, "hi": self.hi}


class ShardMap:
    """An epoch-stamped assignment of Hilbert-key ranges to shards."""

    def __init__(
        self,
        shards: Sequence[ShardSpec],
        order: int = DEFAULT_ORDER,
        world_size: float = WORLD_SIZE,
        epoch: int = 1,
    ) -> None:
        if not shards:
            raise ValueError("a shard map needs at least one shard")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = order
        self.world_size = float(world_size)
        self.epoch = epoch
        self.shards: Tuple[ShardSpec, ...] = tuple(
            sorted(shards, key=lambda s: s.lo)
        )
        total = 4**order
        ids = [s.shard_id for s in self.shards]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids in {ids}")
        cursor = 0
        for spec in self.shards:
            if spec.lo != cursor or spec.hi <= spec.lo:
                raise ValueError(
                    f"shard ranges must tile [0, {total}) contiguously; "
                    f"{spec.shard_id} spans [{spec.lo}, {spec.hi}) after "
                    f"cell {cursor}"
                )
            cursor = spec.hi
        if cursor != total:
            raise ValueError(
                f"shard ranges cover [0, {cursor}) but the order-{order} "
                f"curve has {total} cells"
            )
        self._by_id = {s.shard_id: s for s in self.shards}
        # Per-shard cell rectangles (and a bounding extent for the fast
        # reject): [lo, hi) on the curve -> that many grid cells.
        cs = self.world_size / (1 << order)
        self._cell_rects: Dict[str, List[Rect]] = {}
        self._extents: Dict[str, Rect] = {}
        for spec in self.shards:
            rects = []
            for d in range(spec.lo, spec.hi):
                cx, cy = hilbert_point(order, d)
                rects.append(
                    Rect(cx * cs, cy * cs, (cx + 1) * cs, (cy + 1) * cs)
                )
            self._cell_rects[spec.shard_id] = rects
            self._extents[spec.shard_id] = Rect.union_of(rects)

    # ------------------------------------------------------------------
    # Lookup and geometry
    # ------------------------------------------------------------------
    def shard(self, shard_id: str) -> ShardSpec:
        spec = self._by_id.get(shard_id)
        if spec is None:
            raise KeyError(
                f"unknown shard {shard_id!r}; the map holds "
                f"{sorted(self._by_id)}"
            )
        return spec

    def extent(self, spec: ShardSpec) -> Rect:
        """Bounding box of the shard's cells (a fast-reject superset of
        its true region, which is the cell union)."""
        return self._extents[spec.shard_id]

    def _clip(self, rect: Rect) -> Rect:
        w = self.world_size
        return Rect(
            min(max(rect.xmin, 0.0), w),
            min(max(rect.ymin, 0.0), w),
            min(max(rect.xmax, 0.0), w),
            min(max(rect.ymax, 0.0), w),
        )

    def covers(self, spec: ShardSpec, rect: Rect) -> bool:
        """Does the shard's cell union intersect ``rect``?

        The rect is clipped into the world first, so geometry outside
        the grid is owned by the boundary shards rather than nobody.
        Intersection is closed: a rect on a cell edge belongs to both
        neighbours, which is deliberately conservative -- a boundary
        segment gets indexed on each side and the router deduplicates.
        """
        clipped = self._clip(rect)
        if not self._extents[spec.shard_id].intersects(clipped):
            return False
        return any(
            cell.intersects(clipped)
            for cell in self._cell_rects[spec.shard_id]
        )

    def route_rect(self, rect: Rect) -> List[ShardSpec]:
        """Every shard whose region intersects the (clipped) rect."""
        return [s for s in self.shards if self.covers(s, rect)]

    def route_point(self, x: float, y: float) -> List[ShardSpec]:
        return self.route_rect(Rect(x, y, x, y))

    def index_filter(
        self, shard_id: str
    ) -> Callable[[int, Segment], bool]:
        """The shard's ownership predicate in the shape
        :func:`repro.wal.store.replay_records` expects."""
        spec = self.shard(shard_id)
        return lambda seg_id, segment: self.covers(spec, segment_mbr(segment))

    # ------------------------------------------------------------------
    # Construction and rebalancing
    # ------------------------------------------------------------------
    @classmethod
    def partition(
        cls,
        n_shards: int,
        order: int = DEFAULT_ORDER,
        world_size: float = WORLD_SIZE,
        weights: Optional[Sequence[float]] = None,
        epoch: int = 1,
    ) -> "ShardMap":
        """Split the curve into ``n_shards`` contiguous ranges.

        Without ``weights`` the ranges hold (near-)equal cell counts;
        with per-cell ``weights`` (length ``4^order``, e.g. segment
        counts) the cut points are chosen so each range carries roughly
        an equal share of the total weight.
        """
        total = 4**order
        if not 1 <= n_shards <= total:
            raise ValueError(
                f"need 1..{total} shards for order {order}, got {n_shards}"
            )
        if weights is None:
            bounds = [round(i * total / n_shards) for i in range(n_shards + 1)]
        else:
            if len(weights) != total:
                raise ValueError(
                    f"weights must cover all {total} cells, got {len(weights)}"
                )
            prefix = [0.0]
            for w in weights:
                prefix.append(prefix[-1] + max(float(w), 0.0))
            grand = prefix[-1]
            bounds = [0]
            for i in range(1, n_shards):
                target = grand * i / n_shards
                d = bounds[-1] + 1
                while d < total - (n_shards - i - 1) and prefix[d] < target:
                    d += 1
                bounds.append(d)
            bounds.append(total)
        shards = [
            ShardSpec(f"s{i}", bounds[i], bounds[i + 1])
            for i in range(n_shards)
        ]
        return cls(shards, order=order, world_size=world_size, epoch=epoch)

    def split(
        self, shard_id: str, weights: Optional[Sequence[float]] = None
    ) -> "ShardMap":
        """A new map (epoch + 1) with ``shard_id`` cut into two children.

        ``weights``, when given, are per-cell weights over the *whole*
        curve (only the parent's range is consulted); the cut point
        balances the two children's weight. Children are named
        ``<id>a`` / ``<id>b``.
        """
        spec = self.shard(shard_id)
        if spec.hi - spec.lo < 2:
            raise ValueError(
                f"shard {shard_id!r} owns a single cell and cannot split"
            )
        if weights is None:
            cut = (spec.lo + spec.hi) // 2
        else:
            if len(weights) != 4**self.order:
                raise ValueError(
                    f"weights must cover all {4 ** self.order} cells, "
                    f"got {len(weights)}"
                )
            half = sum(weights[spec.lo : spec.hi]) / 2.0
            running = 0.0
            cut = spec.lo + 1
            for d in range(spec.lo, spec.hi - 1):
                running += max(float(weights[d]), 0.0)
                if running >= half:
                    cut = d + 1
                    break
            else:
                cut = spec.hi - 1
        children = (
            ShardSpec(f"{shard_id}a", spec.lo, cut),
            ShardSpec(f"{shard_id}b", cut, spec.hi),
        )
        for child in children:
            if child.shard_id in self._by_id:
                raise ValueError(
                    f"child id {child.shard_id!r} collides with an "
                    f"existing shard"
                )
        shards = [s for s in self.shards if s.shard_id != shard_id]
        shards.extend(children)
        return ShardMap(
            shards,
            order=self.order,
            world_size=self.world_size,
            epoch=self.epoch + 1,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @staticmethod
    def path(root: str) -> str:
        return os.path.join(os.fspath(root), SHARD_MAP_NAME)

    @staticmethod
    def store_path(root: str, shard_id: str) -> str:
        return os.path.join(os.fspath(root), shard_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SHARD_MAP_VERSION,
            "epoch": self.epoch,
            "order": self.order,
            "world_size": self.world_size,
            "shards": [s.to_dict() for s in self.shards],
        }

    def save(self, root: str) -> str:
        """Write the manifest atomically (temp + replace + dir fsync), so
        a concurrent reader sees one epoch or the other, never a tear."""
        root = os.fspath(root)
        os.makedirs(root, exist_ok=True)
        path = self.path(root)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(root)
        return path

    @classmethod
    def load(cls, root: str) -> "ShardMap":
        path = cls.path(root)
        if not os.path.exists(path):
            raise FileNotFoundError(f"{root} holds no shard map ({path})")
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
        if raw.get("version") != SHARD_MAP_VERSION:
            raise ValueError(
                f"unsupported shard map version {raw.get('version')!r}"
            )
        shards = [
            ShardSpec(s["id"], int(s["lo"]), int(s["hi"]))
            for s in raw["shards"]
        ]
        return cls(
            shards,
            order=int(raw["order"]),
            world_size=float(raw["world_size"]),
            epoch=int(raw["epoch"]),
        )


def cell_weights(
    segments: Sequence[Segment], order: int, world_size: float = WORLD_SIZE
) -> List[float]:
    """Per-cell segment counts: how many segment bounding boxes touch
    each Hilbert cell (the load estimate behind weighted partitioning
    and hot-shard splits)."""
    n = 1 << order
    cs = world_size / n
    weights = [0.0] * (n * n)
    for seg in segments:
        x1, x2 = sorted((seg.x1, seg.x2))
        y1, y2 = sorted((seg.y1, seg.y2))
        cx0 = min(max(int(x1 // cs), 0), n - 1)
        cx1 = min(max(int(x2 // cs), 0), n - 1)
        cy0 = min(max(int(y1 // cs), 0), n - 1)
        cy1 = min(max(int(y2 // cs), 0), n - 1)
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                weights[hilbert_index(order, cx, cy)] += 1.0
    return weights
