"""The scatter-gather router: one wire endpoint over N shard workers.

``python -m repro route`` serves the same newline-JSON protocol as a
single :class:`~repro.service.server.MapServer`, but behind it sits a
shard set: each typed request is clipped to the shards whose Hilbert
regions it touches, fanned out concurrently, and the replies merged --

* **point / window** go to intersecting shards only and the id lists are
  set-unioned: a boundary segment indexed by both neighbours (the R+ and
  PMR duplication story, now *across* processes) appears exactly once.
* **nearest** goes to every shard with the same ``k``; pairs are merged
  keeping the minimum distance per seg_id, sorted by ``(d2, seg_id)``
  and cut to ``k`` -- the union of local top-k contains the global
  top-k, because each global winner is locally indexed somewhere with a
  local rank no worse than its global rank.
* **insert / delete / checkpoint** go to all shards (replicated table:
  every table appends in lockstep, so positional seg_ids agree).
* **batch** is clipped per member when it is read-only: each sub-request
  goes only to the shards its geometry touches (per-shard sub-batches,
  positional merge), so batch page traffic scales down with the clip.
  A batch carrying any mutation broadcasts whole, keeping barrier
  positions identical on every replicated table.
* **stats / metrics / check / health / trace / explain** are merged
  observability: counters are summed (per-shard totals add up to the
  routed totals exactly), Prometheus expositions are relabelled
  ``shard="<id>"`` and concatenated, and EXPLAIN reports keep each
  shard's cost tree under one merged ``observed`` bill.

Failure semantics: an unreachable worker never hangs the client. The
router answers ``{"ok": false, "error": {"code": "shard_unavailable",
"shard": ..., ...}}`` and, when other shards did answer a read, attaches
their merged answer under ``"partial"``. Worker addresses are re-read
from each shard's ``shard.addr`` on every reconnect, so a worker
restarted on a new port heals without touching the router.

Rebalance hand-off: ``{"op": "reload"}`` drains in-flight requests
(new ones block at the gate), re-reads the manifest, swaps the client
set, and reports the new epoch -- the atomic-manifest + drain protocol
the shard-split CLI relies on.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import socketserver
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ERROR_CODES, ProtocolError, ShardUnavailableError
from repro.geometry import Rect
from repro.metric_names import (
    COUNTER_FIELDS,
    DISK_ACCESSES,
    DISK_READS,
)
from repro.obs import dtrace
from repro.obs.clock import clock_info, now_us, wall_now_us
from repro.obs.explain import merge_explain_reports
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PROFILER, merge_profiles
from repro.obs.prom import merge_prom_texts
from repro.obs.trace import TRACER
from repro.sanitize import make_condition, make_lock
from repro.service.api import (
    BatchRequest,
    Delete,
    Explain,
    Insert,
    NearestQuery,
    PointQuery,
    WindowQuery,
    parse_batch_item,
    parse_request,
    request_version,
)
from repro.service.server import (
    _COMPACT,
    DEFAULT_IDLE_TIMEOUT,
    MAX_LINE_BYTES,
    error_envelope,
    serve_json_lines,
)
from repro.shard.manifest import ShardMap, ShardSpec
from repro.shard.worker import read_addr


class _RelayedError(ProtocolError):
    """A structured error a shard served, re-raised router-side with the
    originating shard attached (``error_envelope`` keeps both)."""

    def __init__(self, shard_id: str, envelope: Dict[str, Any]) -> None:
        code = envelope.get("code", "internal")
        if code not in ERROR_CODES:
            code = "internal"
        super().__init__(
            str(envelope.get("message", "shard error")), code=code
        )
        self.shard_id = shard_id


class ShardClient:
    """One pooled connection to one shard worker.

    The address comes from the worker's ``shard.addr`` file at every
    (re)connect, so a restarted worker on a fresh port is found without
    coordination. All failures -- missing address, refused connection,
    timeout, mid-request disconnect -- surface as
    :class:`ShardUnavailableError` naming the shard.
    """

    def __init__(
        self, shard_id: str, store_root: str, timeout: float = 5.0
    ) -> None:
        self.shard_id = shard_id
        self.store_root = os.fspath(store_root)
        self.timeout = timeout
        # Serializes this one connection: request/reply framing on the
        # socket is not interleavable, so the blocking I/O below happens
        # under this lock by design. No other lock is ever taken inside.
        self._lock = make_lock(f"shard.client.{shard_id}")
        self._sock: Optional[socket.socket] = None
        self._fh = None
        #: Estimated worker-minus-router wall-clock offset (microseconds),
        #: measured by a clock round trip at connect time when tracing is
        #: on. None until measured (or when the worker predates the op);
        #: the stitcher then anchors subtrees at send time instead.
        self.skew_us: Optional[int] = None

    def _unavailable(self, why: str) -> ShardUnavailableError:
        return ShardUnavailableError(
            f"shard {self.shard_id} is unavailable: {why}", self.shard_id
        )

    def _connect(self) -> None:
        try:
            addr = read_addr(self.store_root)
            host, port = addr["host"], int(addr["port"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise self._unavailable(f"no usable address file ({exc})") from exc
        try:
            self._sock = socket.create_connection(  # repro-lint: disable=CC02 -- the client lock exists to serialize this socket; connect is bounded by self.timeout and no other lock nests inside
                (host, port), timeout=self.timeout
            )
            self._fh = self._sock.makefile("rwb")
        except OSError as exc:
            self._sock = None
            self._fh = None
            raise self._unavailable(f"connect to {host}:{port} failed ({exc})") from exc
        if TRACER.enabled:
            self._measure_skew()

    def _measure_skew(self) -> None:
        """One clock round trip, midpointed: the worker's wall offset.

        Best effort by design -- a worker that predates the ``clock`` op
        answers ``unknown_op`` and the skew stays None, which only costs
        stitching fidelity, never a request.
        """
        try:
            t0 = wall_now_us()
            reply = self._roundtrip(b'{"op":"clock"}\n')
            t1 = wall_now_us()
            envelope = json.loads(reply)
            if envelope.get("ok"):
                remote_wall = int(envelope["result"]["wall_us"])
                self.skew_us = remote_wall - (t0 + t1) // 2
        except (OSError, ValueError, KeyError, TypeError):
            self.skew_us = None

    def _drop(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                self._sock = None
        self._sock = None
        self._fh = None

    def _roundtrip(self, line: bytes) -> bytes:
        self._fh.write(line)
        self._fh.flush()
        return self._fh.readline()  # repro-lint: disable=CC02 -- socket read under the connection-serializing lock: that is the lock's whole job; bounded by the socket timeout, never nests another lock

    def request(
        self, payload: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send one request, returning the shard's response envelope.

        A pooled connection that errors or EOFs is retried once over a
        fresh connection (the worker may have restarted on a new port
        since the pool last used it); a *fresh* connection failing is
        final. The retry re-sends the payload, so a worker that applied
        a mutation and died before replying can double-apply -- that is
        a table divergence, which the seg_id agreement check and
        ``check --shards`` surface for ``shard-rebuild``.

        ``timeout`` overrides the connection timeout for this one call
        -- the ``profile`` op legitimately takes its sampling window to
        answer, which the default would cut short.
        """
        line = json.dumps(payload, separators=_COMPACT).encode("utf-8") + b"\n"
        with self._lock:
            fresh = self._sock is None
            if fresh:
                self._connect()
            if timeout is not None:
                self._sock.settimeout(timeout)
            reply = b""
            error: Optional[OSError] = None
            try:
                reply = self._roundtrip(line)
            except OSError as exc:
                error = exc
            if not reply:
                self._drop()
                if fresh:
                    why = (
                        f"request failed ({error})"
                        if error is not None
                        else "connection closed mid-request"
                    )
                    raise self._unavailable(why) from error
                self._connect()
                if timeout is not None:
                    self._sock.settimeout(timeout)
                try:
                    reply = self._roundtrip(line)
                except OSError as exc2:
                    self._drop()
                    raise self._unavailable(
                        f"request failed after reconnect ({exc2})"
                    ) from exc2
                if not reply:
                    self._drop()
                    raise self._unavailable(
                        "connection closed mid-request after reconnect"
                    )
            if timeout is not None and self._sock is not None:
                self._sock.settimeout(self.timeout)  # restore the default
            try:
                return json.loads(reply)
            except ValueError as exc:
                self._drop()
                raise self._unavailable(f"unparseable reply ({exc})") from exc

    def close(self) -> None:
        with self._lock:
            self._drop()


# ----------------------------------------------------------------------
# Merge helpers
# ----------------------------------------------------------------------
def merge_id_lists(lists: Sequence[List[int]]) -> List[int]:
    """Cross-shard dedup by seg_id: sorted union of result id lists."""
    out: set = set()
    for ids in lists:
        out.update(ids)
    return sorted(out)


def merge_nearest(
    lists: Sequence[List[Sequence[float]]], k: int
) -> List[Tuple[int, float]]:
    """Merge per-shard k-NN answers: min distance per seg_id, then the
    global ``(d2, seg_id)`` order, cut to ``k``."""
    best: Dict[int, float] = {}
    for pairs in lists:
        for seg_id, d2 in pairs:
            seg_id = int(seg_id)
            if seg_id not in best or d2 < best[seg_id]:
                best[seg_id] = d2
    ranked = sorted(best.items(), key=lambda item: (item[1], item[0]))
    return [(seg_id, d2) for seg_id, d2 in ranked[:k]]


def _shift_spans(record: Dict[str, Any], offset: float) -> None:
    """Shift a span record and all descendants onto the router timeline.

    Worker span timestamps are relative to the worker root's monotonic
    start; adding the stitcher's offset re-expresses them relative to
    the router root, so one merged tree renders on one time axis.
    """
    record["start_us"] = record.get("start_us", 0) + offset
    for child in record.get("spans", ()):
        _shift_spans(child, offset)


def _merge_same_value(values: List[Any], what: str) -> Any:
    first = values[0]
    for value in values[1:]:
        if value != first:
            raise RuntimeError(
                f"shards disagree on {what}: {sorted(set(map(repr, values)))}; "
                f"the replicated tables have diverged (run shard-rebuild)"
            )
    return first


class RouterCore:
    """The router's logic, transport-free: clients, gate, scatter, merge.

    :class:`ShardRouter` mixes this into a ``ThreadingTCPServer`` (the
    v1 threaded front end); :class:`repro.aio.router.AsyncShardRouter`
    mounts the same core behind the asyncio server, so both transports
    route and merge identically -- one implementation, two wire fronts.
    All methods here are thread-safe: the drain gate is a condition
    variable and the scatter pool is shared, exactly as they were when
    this logic lived on the threaded server class.
    """

    def __init__(self, root: str, timeout: float = 5.0) -> None:
        self.root = os.fspath(root)
        self.timeout = timeout
        self.registry = MetricsRegistry()
        self._gate = make_condition("shard.router.gate")
        self._active = 0
        self._draining = False
        self.shard_map: ShardMap = ShardMap.load(self.root)
        self.clients: Dict[str, ShardClient] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self._build_clients()

    def _build_clients(self) -> None:
        smap = self.shard_map
        self.clients = {
            spec.shard_id: ShardClient(
                spec.shard_id,
                smap.store_path(self.root, spec.shard_id),
                timeout=self.timeout,
            )
            for spec in smap.shards
        }
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self.clients)),
            thread_name_prefix="shard-scatter",
        )
        self.registry.gauge("repro_router_shards").set(len(self.clients))
        self.registry.gauge("repro_router_epoch").set(smap.epoch)

    def close_clients(self) -> None:
        """Release every shard connection and the scatter pool."""
        for client in self.clients.values():
            client.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Drain gate and manifest reload
    # ------------------------------------------------------------------
    def _enter_gate(self) -> None:
        with self._gate:
            while self._draining:
                self._gate.wait()
            self._active += 1

    def _exit_gate(self) -> None:
        with self._gate:
            self._active -= 1
            if self._active == 0:
                self._gate.notify_all()

    def reload(self) -> Dict[str, Any]:
        """Drain in-flight requests, re-read the manifest, swap clients.

        New requests block at the gate while draining, so no request
        observes a half-swapped client set; the manifest file itself is
        replaced atomically by the writer, so the reload sees one epoch
        or the other.
        """
        with self._gate:
            self._draining = True
            while self._active > 0:
                self._gate.wait()
        try:
            old = {c for c in self.clients.values()}
            self.shard_map = ShardMap.load(self.root)
            self._build_clients()
            for client in old:
                client.close()
        finally:
            with self._gate:
                self._draining = False
                self._gate.notify_all()
        return {
            "epoch": self.shard_map.epoch,
            "shards": [s.shard_id for s in self.shard_map.shards],
        }

    # ------------------------------------------------------------------
    # Wire entry point
    # ------------------------------------------------------------------
    def respond(self, line: Any) -> Dict[str, Any]:
        """One wire request -> one envelope; never raises, never hangs."""
        version: Optional[int] = None
        op = "invalid"
        try:
            raw = json.loads(line)
            if not isinstance(raw, dict):
                raise ProtocolError(
                    f"request must be a JSON object, got {type(raw).__name__}"
                )
            op = str(raw.get("op"))
            if raw.get("v") is not None:
                version = request_version(raw)
            if op == "reload":
                # The reload op bypasses the gate: it *is* the drainer,
                # and entering the gate would deadlock on itself.
                result = self.reload()
            else:
                self._enter_gate()
                try:
                    result = self.dispatch_traced(raw)
                finally:
                    self._exit_gate()
            response: Dict[str, Any] = {"ok": True, "result": result}
            self.registry.counter(
                "repro_router_requests_total", op=op, status="ok"
            ).inc()
        except Exception as exc:  # serve errors back, keep the connection
            response = {"ok": False, "error": error_envelope(exc)}
            partial = getattr(exc, "partial", None)
            if partial is not None:
                response["partial"] = partial
            self.registry.counter(
                "repro_router_requests_total", op=op, status="error"
            ).inc()
        if TRACER.enabled:
            attachment = dtrace.take_outbound()
            if attachment is not None:
                response["tc"] = attachment
        if version is not None:
            response["v"] = version
        return response

    def dispatch_traced(self, raw: Dict[str, Any]) -> Any:
        """Dispatch under a router root span when tracing is armed.

        Both wire fronts call this between the gate enter/exit. The
        router consumes any client-sent ``"tc"`` context (parenting its
        root under the caller), scatter/merge phases become child spans,
        and ``finish_trace`` parks the response attachment for the
        transport to collect. With tracing off this adds exactly one
        attribute check on top of :meth:`dispatch`.
        """
        if not TRACER.enabled:
            return self.dispatch(raw)
        tc_raw = raw.get("tc")
        dtrace.set_incoming(
            None if tc_raw is None else dtrace.TraceContext.from_wire(tc_raw)
        )
        root = TRACER.start_trace(str(raw.get("op")))
        error: Optional[str] = None
        try:
            return self.dispatch(raw)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            if root is not None:
                TRACER.finish_trace(root, error=error)

    # ------------------------------------------------------------------
    # Scatter and gather
    # ------------------------------------------------------------------
    def _specs(self, shard_ids: Optional[List[str]] = None) -> List[ShardSpec]:
        if shard_ids is None:
            return list(self.shard_map.shards)
        return [self.shard_map.shard(sid) for sid in shard_ids]

    def _scatter(
        self, specs: List[ShardSpec], payload: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Dict[str, ShardUnavailableError]]:
        """Fan ``payload`` to ``specs`` concurrently.

        Returns ``(responses, failures)``: response envelopes by shard
        id, and the transport-level failures by shard id.
        """
        payload = {k: v for k, v in payload.items() if k not in ("v", "tc")}
        root = TRACER.current_root() if TRACER.enabled else None
        if root is not None and "trace_id" in root:
            return self._traced_scatter(specs, payload, root)

        def call(spec: ShardSpec):
            try:
                return spec.shard_id, self.clients[spec.shard_id].request(payload), None
            except ShardUnavailableError as exc:
                return spec.shard_id, None, exc

        futures = [self._pool.submit(call, spec) for spec in specs]
        responses: Dict[str, Any] = {}
        failures: Dict[str, ShardUnavailableError] = {}
        for future in futures:
            shard_id, response, exc = future.result()
            if exc is not None:
                failures[shard_id] = exc
            else:
                responses[shard_id] = response
        return responses, failures

    def _traced_scatter(
        self,
        specs: List[ShardSpec],
        payload: Dict[str, Any],
        root: Dict[str, Any],
    ) -> Tuple[Dict[str, Any], Dict[str, ShardUnavailableError]]:
        """The scatter fan-out with distributed identity aboard.

        Every shard request carries a fresh child context as the v1
        ``"tc"`` field (the pooled clients speak JSON lines), so each
        worker roots its local trace under this router span -- sampled
        or not, keeping the head decision consistent end to end. When
        the router root *is* sampled, the fan-out sits under a
        ``scatter`` span and each worker's returned subtree is grafted
        back in as a ``shard:<id>`` child with its timestamps shifted
        onto the router's clock via the connect-time skew estimate.
        """
        sampled = bool(root.get("sampled", True))
        # Per-shard (send_us, recv_us, attachment) triples. Pool threads
        # write distinct keys (dict ops are atomic under the GIL); the
        # dispatching thread reads only after their futures resolve.
        timings: Dict[str, Tuple[float, float, Optional[Dict[str, Any]]]] = {}

        def call(spec: ShardSpec):
            sid = spec.shard_id
            child = dtrace.TraceContext(
                root["trace_id"], dtrace.new_span_id(), sampled
            )
            shard_payload = dict(payload)
            shard_payload["tc"] = child.to_wire()
            t0 = now_us()
            try:
                response = self.clients[sid].request(shard_payload)
            except ShardUnavailableError as exc:
                timings[sid] = (t0, now_us(), None)
                return sid, None, exc
            attachment = (
                response.pop("tc", None) if isinstance(response, dict) else None
            )
            timings[sid] = (t0, now_us(), attachment)
            return sid, response, None

        with TRACER.span("scatter", op=payload.get("op"), shards=len(specs)):
            futures = [self._pool.submit(call, spec) for spec in specs]
            responses: Dict[str, Any] = {}
            failures: Dict[str, ShardUnavailableError] = {}
            for future in futures:
                shard_id, response, exc = future.result()
                if exc is not None:
                    failures[shard_id] = exc
                else:
                    responses[shard_id] = response
            if sampled:
                for spec in specs:
                    self._stitch_shard(
                        root, spec.shard_id, timings.get(spec.shard_id)
                    )
        return responses, failures

    def _stitch_shard(
        self,
        root: Dict[str, Any],
        shard_id: str,
        timing: Optional[Tuple[float, float, Optional[Dict[str, Any]]]],
    ) -> None:
        """Graft one shard's round trip (and returned subtree) into the
        active trace as a ``shard:<id>`` wrapper span."""
        if timing is None:
            return
        t0, t1, attachment = timing
        record: Dict[str, Any] = {
            "name": f"shard:{shard_id}",
            "start_us": t0 - root["_t0"],
            "dur_us": t1 - t0,
            "attrs": {"shard": shard_id},
            "spans": [],
        }
        subtree = (
            attachment.get("span") if isinstance(attachment, dict) else None
        )
        if isinstance(subtree, dict):
            skew = self.clients[shard_id].skew_us
            if (
                skew is not None
                and "wall_us" in subtree
                and "wall_us" in root
            ):
                # Worker wall time, de-skewed onto the router's clock,
                # relative to the router root's start.
                offset = (subtree["wall_us"] - skew) - root["wall_us"]
                record["attrs"]["skew_us"] = skew
            else:
                # No skew estimate: anchor the subtree at send time --
                # its internal shape is still exact.
                offset = record["start_us"]
            _shift_spans(subtree, offset - subtree.get("start_us", 0))
            record["spans"].append(subtree)
        TRACER.attach_subtree(record)

    def _gather(
        self,
        specs: List[ShardSpec],
        payload: Dict[str, Any],
        merge,
        partial_merge=None,
    ):
        """Scatter, then merge the successful results -- or raise with
        the failing shard attached and any partial answer aboard."""
        responses, failures = self._scatter(specs, payload)
        oks: Dict[str, Any] = {}
        relayed: Dict[str, Dict[str, Any]] = {}
        for shard_id, response in responses.items():
            if response.get("ok"):
                oks[shard_id] = response.get("result")
            else:
                relayed[shard_id] = response.get("error") or {}
        if failures or relayed:
            if failures:
                shard_id = sorted(failures)[0]
                exc: Exception = failures[shard_id]
            else:
                shard_id = sorted(relayed)[0]
                exc = _RelayedError(shard_id, relayed[shard_id])
            if oks:
                merger = partial_merge if partial_merge is not None else merge
                try:
                    merged = merger(oks)
                except Exception:
                    merged = None
                exc.partial = {
                    "shards": sorted(oks),
                    "result": merged,
                }
            raise exc
        with TRACER.span("merge", shards=len(oks)):
            return merge(oks)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, raw: Dict[str, Any]) -> Any:
        op = raw.get("op")
        if op == "ping":
            return "pong"
        if op == "clock":
            return clock_info()
        if op == "profile":
            return self._merge_profile(raw)
        if op == "trace" and raw.get("trace_id") is not None:
            return self._find_trace(raw)
        request = parse_request(raw)
        smap = self.shard_map
        if isinstance(request, PointQuery):
            specs = smap.route_point(request.x, request.y)
            return self._gather(
                specs, raw, lambda oks: merge_id_lists(list(oks.values()))
            )
        if isinstance(request, WindowQuery):
            rect = Rect(request.x1, request.y1, request.x2, request.y2)
            return self._gather(
                smap.route_rect(rect),
                raw,
                lambda oks: merge_id_lists(list(oks.values())),
            )
        if isinstance(request, NearestQuery):
            k = request.k
            return self._gather(
                self._specs(),
                raw,
                lambda oks: merge_nearest(list(oks.values()), k),
            )
        if isinstance(request, Insert):
            return self._gather(
                self._specs(),
                raw,
                lambda oks: _merge_same_value(list(oks.values()), "seg_id"),
                partial_merge=lambda oks: {"applied": sorted(oks)},
            )
        if isinstance(request, Delete):
            return self._gather(
                self._specs(),
                raw,
                lambda oks: self._merge_delete(request.seg_id, oks),
                partial_merge=lambda oks: {"applied": sorted(oks)},
            )
        if isinstance(request, BatchRequest):
            with TRACER.span("clip", members=len(request.requests)):
                assignment = self._batch_assignment(request)
            if assignment is None:
                # Mutations must reach every replicated table: the whole
                # batch broadcasts so barrier positions agree shard-wide.
                return self._gather(
                    self._specs(),
                    raw,
                    lambda oks: self._merge_batch(request, oks),
                    partial_merge=lambda oks: {"applied": sorted(oks)},
                )
            return self._clipped_batch(request, assignment)
        if isinstance(request, Explain):
            return self._routed_explain(request, raw)
        if op == "checkpoint":
            return self._gather(
                self._specs(), raw, lambda oks: dict(sorted(oks.items()))
            )
        if op == "stats":
            return self._merge_stats()
        if op == "check":
            return self._merge_check()
        if op == "metrics":
            return self._merge_metrics(raw.get("format", "json"))
        if op in ("health", "trace"):
            responses, failures = self._scatter(self._specs(), raw)
            out = {
                sid: resp.get("result")
                for sid, resp in responses.items()
                if resp.get("ok")
            }
            merged: Dict[str, Any] = {
                "shards": dict(sorted(out.items())),
                "unavailable": sorted(failures),
            }
            if op == "trace" and TRACER.enabled:
                # Stitched cross-process trees live in the router's own
                # ring; surface them next to the workers' local traces.
                try:
                    n = int(raw.get("n", 5))
                except (TypeError, ValueError):
                    n = 5
                merged["tracing"] = TRACER.stats()
                merged["traces"] = TRACER.recent(n)
            return merged
        raise ProtocolError(
            f"op {op!r} is not routable through the shard router",
            code="unknown_op",
        )

    # ------------------------------------------------------------------
    # Per-op merges
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_delete(seg_id: int, oks: Dict[str, Any]) -> bool:
        if any(oks.values()):
            return True
        # Every shard logged the delete but none had it indexed: the
        # segment was already gone everywhere. Single-node parity says
        # a double delete is unknown_seg.
        raise KeyError(f"unknown segment id {seg_id}: not indexed on any shard")

    def _merge_batch(
        self, request: BatchRequest, oks: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Member-wise merge of per-shard batch results.

        The whole batch goes to every shard (mutations must reach all
        tables; reads outside a shard's region just come back empty), so
        each shard returns a full result list in arrival order and the
        merge is positional.
        """
        shard_ids = sorted(oks)
        member_lists = [oks[sid]["results"] for sid in shard_ids]
        merged: List[Any] = []
        for idx, member in enumerate(request.requests):
            per_shard = [members[idx] for members in member_lists]
            member_op = member.get("op")
            if member_op in ("point", "window"):
                merged.append(merge_id_lists(per_shard))
            elif member_op == "nearest":
                merged.append(merge_nearest(per_shard, int(member.get("k", 1))))
            elif member_op == "insert":
                merged.append(_merge_same_value(per_shard, "seg_id"))
            else:  # delete
                merged.append(bool(any(per_shard)))
        return {
            "results": merged,
            "order": oks[shard_ids[0]]["order"],
            DISK_ACCESSES: sum(oks[sid][DISK_ACCESSES] for sid in shard_ids),
        }

    def _batch_assignment(
        self, request: BatchRequest
    ) -> Optional[Dict[str, List[int]]]:
        """Shard id -> member indices for a read-only batch.

        Each member is clipped to the shards its geometry touches (the
        same routing the standalone ops get): points and windows go to
        intersecting regions only, nearest to every shard. Returns
        ``None`` when the batch carries a mutation -- those broadcast
        whole, so barrier positions agree on every replicated table.
        Member indices stay in arrival order inside each sub-batch, so a
        shard's Morton scheduling sees the same read-run structure the
        single-node executor would.
        """
        smap = self.shard_map
        assignment: Dict[str, List[int]] = {}
        for idx, member in enumerate(request.requests):
            typed = parse_batch_item(member)
            if isinstance(typed, (Insert, Delete)):
                return None
            if isinstance(typed, PointQuery):
                specs = smap.route_point(typed.x, typed.y)
            elif isinstance(typed, WindowQuery):
                specs = smap.route_rect(
                    Rect(typed.x1, typed.y1, typed.x2, typed.y2)
                )
            else:  # NearestQuery: any shard may hold a global winner
                specs = list(smap.shards)
            for spec in specs:
                assignment.setdefault(spec.shard_id, []).append(idx)
        return assignment

    def _clipped_batch(
        self, request: BatchRequest, assignment: Dict[str, List[int]]
    ) -> Dict[str, Any]:
        """Scatter per-shard sub-batches and merge positionally.

        Unlike the broadcast path, each shard executes only the members
        its region can answer, so batch page traffic scales down with
        the clip exactly like standalone reads do.
        """
        payloads = {
            sid: {
                "op": "batch",
                "requests": [request.requests[i] for i in ixs],
                "order": request.order,
                "use_cache": request.use_cache,
            }
            for sid, ixs in assignment.items()
        }
        if not payloads:  # every member clipped to nothing (or empty batch)
            return self._merge_clipped(request, assignment, {})
        root = TRACER.current_root() if TRACER.enabled else None
        traced = root is not None and "trace_id" in root
        sampled = traced and bool(root.get("sampled", True))
        timings: Dict[str, Tuple[float, float, Optional[Dict[str, Any]]]] = {}

        def call(sid: str):
            shard_payload = payloads[sid]
            if traced:
                child = dtrace.TraceContext(
                    root["trace_id"], dtrace.new_span_id(), sampled
                )
                shard_payload = dict(shard_payload)
                shard_payload["tc"] = child.to_wire()
            t0 = now_us()
            try:
                response = self.clients[sid].request(shard_payload)
            except ShardUnavailableError as exc:
                if traced:
                    timings[sid] = (t0, now_us(), None)
                return sid, None, exc
            attachment = (
                response.pop("tc", None) if isinstance(response, dict) else None
            )
            if traced:
                timings[sid] = (t0, now_us(), attachment)
            return sid, response, None

        responses: Dict[str, Any] = {}
        failures: Dict[str, ShardUnavailableError] = {}
        with TRACER.span("scatter", op="batch", shards=len(payloads)):
            futures = [self._pool.submit(call, sid) for sid in payloads]
            for future in futures:
                sid, response, exc = future.result()
                if exc is not None:
                    failures[sid] = exc
                else:
                    responses[sid] = response
            if sampled:
                for sid in payloads:
                    self._stitch_shard(root, sid, timings.get(sid))
        oks: Dict[str, Any] = {}
        relayed: Dict[str, Dict[str, Any]] = {}
        for sid, response in responses.items():
            if response.get("ok"):
                oks[sid] = response.get("result")
            else:
                relayed[sid] = response.get("error") or {}
        if failures or relayed:
            if failures:
                sid = sorted(failures)[0]
                exc_out: Exception = failures[sid]
            else:
                sid = sorted(relayed)[0]
                exc_out = _RelayedError(sid, relayed[sid])
            if oks:
                try:
                    merged = self._merge_clipped(request, assignment, oks)
                except Exception:
                    merged = None
                exc_out.partial = {"shards": sorted(oks), "result": merged}
            raise exc_out
        with TRACER.span("merge", shards=len(oks)):
            return self._merge_clipped(request, assignment, oks)

    def _merge_clipped(
        self,
        request: BatchRequest,
        assignment: Dict[str, List[int]],
        oks: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Member-wise merge of clipped sub-batch results.

        A member that routed to no shard merges over zero answers: an
        empty id list, which is correct -- no shard's region touches it,
        so no shard indexes a qualifying segment.
        """
        per_member: List[List[Any]] = [[] for _ in request.requests]
        for sid, ixs in assignment.items():
            if sid not in oks:
                continue
            shard_results = oks[sid]["results"]
            for j, idx in enumerate(ixs):
                per_member[idx].append(shard_results[j])
        merged: List[Any] = []
        for idx, member in enumerate(request.requests):
            if member.get("op") == "nearest":
                merged.append(
                    merge_nearest(per_member[idx], int(member.get("k", 1)))
                )
            else:  # point / window
                merged.append(merge_id_lists(per_member[idx]))
        return {
            "results": merged,
            "order": request.order,
            DISK_ACCESSES: sum(oks[sid][DISK_ACCESSES] for sid in oks),
        }

    def _routed_explain(
        self, request: Explain, raw: Dict[str, Any]
    ) -> Dict[str, Any]:
        inner = request.query
        if isinstance(inner, PointQuery):
            specs = self.shard_map.route_point(inner.x, inner.y)
        elif isinstance(inner, WindowQuery):
            specs = self.shard_map.route_rect(
                Rect(inner.x1, inner.y1, inner.x2, inner.y2)
            )
        else:
            specs = self._specs()
        return self._gather(
            specs, raw, lambda oks: merge_explain_reports(dict(oks))
        )

    def _merge_stats(self) -> Dict[str, Any]:
        responses, failures = self._scatter(self._specs(), {"op": "stats"})
        shards: Dict[str, Any] = {}
        totals = dict.fromkeys(COUNTER_FIELDS, 0)
        consistent = True
        for shard_id, response in sorted(responses.items()):
            if not response.get("ok"):
                failures[shard_id] = self.clients[shard_id]._unavailable(
                    "stats op failed"
                )
                continue
            stats = response["result"]
            shards[shard_id] = stats
            # Slow-query log lines served through the router name their
            # originating shard, so a merged view stays attributable.
            slow = stats.get("obs", {}).get("slow_queries", {})
            for entry in slow.get("entries") or []:
                entry["shard"] = shard_id
            for name in COUNTER_FIELDS:
                totals[name] += stats["totals"][name]
            consistent = consistent and stats["counters_consistent"]
        totals[DISK_ACCESSES] = totals[DISK_READS]
        return {
            "epoch": self.shard_map.epoch,
            "order": self.shard_map.order,
            "world_size": self.shard_map.world_size,
            "shards": shards,
            "totals": totals,
            "counters_consistent": consistent,
            "unavailable": sorted(failures),
        }

    def _merge_check(self) -> Dict[str, Any]:
        responses, failures = self._scatter(self._specs(), {"op": "check"})
        shards: Dict[str, Any] = {}
        clean = not failures
        for shard_id, response in sorted(responses.items()):
            if response.get("ok"):
                shards[shard_id] = response["result"]
                clean = clean and response["result"].get("clean", False)
            else:
                clean = False
                shards[shard_id] = {
                    "clean": False,
                    "error": response.get("error"),
                }
        return {
            "clean": clean,
            "shards": shards,
            "unavailable": sorted(failures),
        }

    def _merge_metrics(self, fmt: str) -> Any:
        payload = {"op": "metrics", "format": fmt}
        if fmt == "prom":
            responses, failures = self._scatter(self._specs(), payload)
            if failures:
                shard_id = sorted(failures)[0]
                raise failures[shard_id]
            texts = {}
            for shard_id, response in responses.items():
                if not response.get("ok"):
                    raise _RelayedError(shard_id, response.get("error") or {})
                texts[shard_id] = response["result"]
            texts["router"] = self.registry.render_prom()
            return merge_prom_texts(texts)
        responses, failures = self._scatter(self._specs(), payload)
        out = {
            sid: resp.get("result")
            for sid, resp in responses.items()
            if resp.get("ok")
        }
        return {
            "shards": dict(sorted(out.items())),
            "router": self.registry.render_json(),
            "unavailable": sorted(failures),
        }

    def _find_trace(self, raw: Dict[str, Any]) -> Dict[str, Any]:
        """Serve ``{"op": "trace", "trace_id": ...}``: the stitched tree.

        Stitched cross-process trees live in the *router's* ring (the
        workers hold only their local subtrees, already grafted in), so
        the router answers from its own buffer first and falls back to
        asking the shards -- a trace that was sampled on a worker but
        whose router record was evicted is still reachable.
        """
        trace_id = str(raw["trace_id"])
        local = TRACER.find(trace_id)
        if local is not None:
            return {"trace": local, "source": "router"}
        responses, _failures = self._scatter(self._specs(), raw)
        for shard_id, response in sorted(responses.items()):
            if response.get("ok"):
                found = (response.get("result") or {}).get("trace")
                if found is not None:
                    return {"trace": found, "source": shard_id}
        return {"trace": None, "source": None}

    def _merge_profile(self, raw: Dict[str, Any]) -> Dict[str, Any]:
        """Fan the ``profile`` op out; sample the router meanwhile.

        The workers each run their own sampling window concurrently
        while the dispatching thread profiles this process (capturing
        the router's scatter threads at work), then the collapsed stacks
        merge re-rooted under ``router`` / ``shard:<id>`` labels -- one
        flamegraph across the whole shard set.
        """
        seconds = float(raw.get("seconds", 1.0))
        hz = raw.get("hz", 97)
        payload = {"op": "profile", "seconds": seconds, "hz": hz}
        # The shard call legitimately takes the whole sampling window to
        # answer; give it the window plus the usual transport allowance.
        deadline = seconds + max(self.timeout, 5.0)
        futures = {
            spec.shard_id: self._pool.submit(
                self.clients[spec.shard_id].request, payload, deadline
            )
            for spec in self._specs()
        }
        parts: Dict[str, Any] = {"router": PROFILER.run(seconds=seconds, hz=hz)}
        unavailable: List[str] = []
        for shard_id, future in sorted(futures.items()):
            try:
                response = future.result()
            except ShardUnavailableError:
                unavailable.append(shard_id)
                continue
            if response.get("ok"):
                parts[f"shard:{shard_id}"] = response["result"]
            else:
                unavailable.append(shard_id)
        merged = merge_profiles(parts)
        merged["unavailable"] = unavailable
        return merged


class ShardRouter(socketserver.ThreadingTCPServer, RouterCore):
    """Scatter-gather front end over the shard set rooted at ``root``.

    The threaded transport for :class:`RouterCore`: one handler thread
    per client connection, same idle timeout and line cap as the
    threaded map server. ``python -m repro route --async`` serves the
    identical core behind the asyncio server instead."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 5.0,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        socketserver.ThreadingTCPServer.__init__(
            self, (host, port), _RouterHandler
        )
        RouterCore.__init__(self, root, timeout=timeout)
        self.idle_timeout = idle_timeout
        self.max_line_bytes = max_line_bytes
        self.connection_ids = itertools.count(1)
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.server_address[:2]
        return host, port

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(
            target=self.serve_forever, name="shard-router", daemon=True
        )
        self._serve_thread = thread  # repro-lint: disable=CC03 -- lifecycle field: start_background/close are called by the single owning thread, never concurrently with each other
        thread.start()
        return thread

    def close(self) -> None:
        """Shut down deterministically: stop serving, join the
        background accept thread (if one was started), then release every
        client connection and the scatter pool. After close() returns no
        router thread is live and no socket is open."""
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None  # repro-lint: disable=CC03 -- lifecycle field: see start_background; close runs after serving stopped
        self.close_clients()


class _RouterHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: ShardRouter = self.server  # type: ignore[assignment]
        serve_json_lines(
            self, server.respond, server.idle_timeout, server.max_line_bytes
        )
