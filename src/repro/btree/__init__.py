"""Paged B+-tree substrate.

The paper's PMR quadtree is implemented as a *linear quadtree*: the
(locational code, segment pointer) 2-tuples of every leaf block are stored
in a B-tree indexed on the locational code, at 8 bytes per tuple and about
120 tuples per 1 KiB page. This package provides that B-tree, built on the
:mod:`repro.storage` buffer pool so that every node touch is accounted as
potential disk activity.
"""

from repro.btree.btree import BPlusTree, ScanStats

__all__ = ["BPlusTree", "ScanStats"]
