"""B+-tree page payloads.

Nodes are plain Python objects living inside simulated disk pages; their
capacities are derived from the page size in bytes (see
:mod:`repro.storage.layout`), which is what keeps the simulation honest.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple


class LeafNode:
    """A leaf page: sorted ``(key, value)`` entries plus a right-sibling link."""

    __slots__ = ("entries", "next_page")

    def __init__(
        self,
        entries: Optional[List[Tuple[Any, Any]]] = None,
        next_page: Optional[int] = None,
    ) -> None:
        self.entries: List[Tuple[Any, Any]] = entries if entries is not None else []
        self.next_page = next_page

    @property
    def is_leaf(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.entries)


class InternalNode:
    """An internal page: ``len(children) == len(keys) + 1``.

    ``keys[i]`` is the smallest key reachable in ``children[i + 1]``'s
    subtree, so a search for ``k`` descends into
    ``children[bisect_right(keys, k)]``.
    """

    __slots__ = ("keys", "children")

    def __init__(self, keys: List[Any], children: List[int]) -> None:
        self.keys = keys
        self.children = children

    @property
    def is_leaf(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.children)
