"""A paged B+-tree with duplicate-key support and full delete rebalancing.

Entries are ``(key, value)`` pairs; many values may share a key (the PMR
quadtree stores one entry per q-edge, keyed by the locational code of its
block), but each exact pair is unique. All ordering is on the composite
pair, so internal separators are exact and scans by key reduce to pair
ranges.

Every node visit goes through the buffer pool, so descending the tree when
its pages are cold is what produces the paper's "disk accesses".
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator, List, Optional, Tuple

from repro.btree.node import InternalNode, LeafNode
from repro.storage.buffer_pool import BufferPool

_Pair = Tuple[Any, Any]


class ScanStats:
    """Node-visit tallies for scans that opt into accounting.

    EXPLAIN hands one of these to :meth:`BPlusTree.scan_range` /
    :meth:`BPlusTree.scan_eq` to learn how many internal pages a descent
    crossed and how many leaves the chain walk touched -- structural
    attribution the buffer-pool counters (which only see hit/miss) cannot
    provide. Purely additive: passing no ``acct`` is the unchanged fast
    path.
    """

    __slots__ = ("internal", "leaves")

    def __init__(self) -> None:
        self.internal = 0
        self.leaves = 0


class BPlusTree:
    """B+-tree over a :class:`~repro.storage.buffer_pool.BufferPool`.

    ``leaf_capacity`` and ``internal_capacity`` are maximum entry counts
    per page, derived by the caller from the page size in bytes.
    """

    def __init__(
        self,
        pool: BufferPool,
        leaf_capacity: int,
        internal_capacity: Optional[int] = None,
    ) -> None:
        if leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2, got {leaf_capacity}")
        self.pool = pool
        self.leaf_capacity = leaf_capacity
        self.internal_capacity = (
            internal_capacity if internal_capacity is not None else leaf_capacity
        )
        if self.internal_capacity < 3:
            raise ValueError(
                f"internal_capacity must be >= 3, got {self.internal_capacity}"
            )
        self._root_id = pool.create(LeafNode())
        self._height = 1
        self._count = 0
        self._page_ids = {self._root_id}

    # ------------------------------------------------------------------
    # Size / shape accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        return self._height

    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    @property
    def bytes_used(self) -> int:
        """Whole pages occupied, as the paper's Table 1 sizes count them."""
        return len(self._page_ids) * self.pool.disk.page_size

    # ------------------------------------------------------------------
    # Lookup and scans
    # ------------------------------------------------------------------
    def _descend(self, probe: _Pair) -> Tuple[int, LeafNode]:
        """Return the (page id, leaf) where ``probe`` would live."""
        page_id = self._root_id
        node = self.pool.get(page_id)
        while not node.is_leaf:
            idx = bisect_right(node.keys, probe)
            page_id = node.children[idx]
            node = self.pool.get(page_id)
        return page_id, node

    def contains(self, key: Any, value: Any) -> bool:
        _, leaf = self._descend((key, value))
        idx = bisect_left(leaf.entries, (key, value))
        return idx < len(leaf.entries) and leaf.entries[idx] == (key, value)

    def scan_range(
        self, lo_key: Any, hi_key: Any, acct: Optional[ScanStats] = None
    ) -> Iterator[_Pair]:
        """Yield entries with ``lo_key <= key <= hi_key`` in order.

        ``acct``, when given, is advanced by one per node visited (the
        descent's internal pages, then every leaf the chain walk reads).
        """
        page_id = self._root_id
        node = self.pool.get(page_id)
        probe = (lo_key,)
        while not node.is_leaf:
            if acct is not None:
                acct.internal += 1
            idx = bisect_right(node.keys, probe)
            page_id = node.children[idx]
            node = self.pool.get(page_id)
        if acct is not None:
            acct.leaves += 1

        idx = bisect_left(node.entries, probe)
        while True:
            while idx < len(node.entries):
                entry = node.entries[idx]
                if entry[0] > hi_key:
                    return
                yield entry
                idx += 1
            if node.next_page is None:
                return
            node = self.pool.get(node.next_page)
            if acct is not None:
                acct.leaves += 1
            idx = 0

    def scan_eq(self, key: Any, acct: Optional[ScanStats] = None) -> List[Any]:
        """All values stored under exactly ``key``."""
        return [v for _, v in self.scan_range(key, key, acct)]

    def has_in_range(self, lo_key: Any, hi_key: Any) -> bool:
        for _ in self.scan_range(lo_key, hi_key):
            return True
        return False

    def count_in_range(self, lo_key: Any, hi_key: Any) -> int:
        return sum(1 for _ in self.scan_range(lo_key, hi_key))

    def items(self) -> Iterator[_Pair]:
        """All entries in key order (full scan through the leaf chain)."""
        page_id = self._root_id
        node = self.pool.get(page_id)
        while not node.is_leaf:
            page_id = node.children[0]
            node = self.pool.get(page_id)
        while True:
            yield from node.entries
            if node.next_page is None:
                return
            node = self.pool.get(node.next_page)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert the pair; raises ``ValueError`` on an exact duplicate."""
        pair = (key, value)
        path: List[Tuple[int, InternalNode, int]] = []
        page_id = self._root_id
        node = self.pool.get(page_id)
        while not node.is_leaf:
            idx = bisect_right(node.keys, pair)
            path.append((page_id, node, idx))
            page_id = node.children[idx]
            node = self.pool.get(page_id)

        idx = bisect_left(node.entries, pair)
        if idx < len(node.entries) and node.entries[idx] == pair:
            raise ValueError(f"duplicate entry {pair!r}")
        node.entries.insert(idx, pair)
        self.pool.mark_dirty(page_id)
        self._count += 1

        if len(node.entries) <= self.leaf_capacity:
            return

        # Split the leaf: right half moves to a fresh page.
        mid = len(node.entries) // 2
        right = LeafNode(node.entries[mid:], node.next_page)
        node.entries = node.entries[:mid]
        right_id = self.pool.create(right)
        self._page_ids.add(right_id)
        node.next_page = right_id
        self.pool.mark_dirty(page_id)
        self._propagate_split(path, page_id, right.entries[0], right_id)

    def _propagate_split(
        self,
        path: List[Tuple[int, InternalNode, int]],
        left_id: int,
        sep: _Pair,
        right_id: int,
    ) -> None:
        while path:
            parent_id, parent, child_idx = path.pop()
            parent.keys.insert(child_idx, sep)
            parent.children.insert(child_idx + 1, right_id)
            self.pool.mark_dirty(parent_id)
            if len(parent.children) <= self.internal_capacity:
                return
            # Split the internal node; the middle key moves up.
            mid = len(parent.keys) // 2
            sep = parent.keys[mid]
            right_node = InternalNode(
                parent.keys[mid + 1 :], parent.children[mid + 1 :]
            )
            parent.keys = parent.keys[:mid]
            parent.children = parent.children[: mid + 1]
            right_id = self.pool.create(right_node)
            self._page_ids.add(right_id)
            self.pool.mark_dirty(parent_id)
            left_id = parent_id

        # The root itself split: grow the tree by one level.
        new_root = InternalNode([sep], [self._root_id, right_id])
        self._root_id = self.pool.create(new_root)
        self._page_ids.add(self._root_id)
        self._height += 1

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, key: Any, value: Any) -> None:
        """Delete the pair; raises ``KeyError`` when absent."""
        pair = (key, value)
        path: List[Tuple[int, InternalNode, int]] = []
        page_id = self._root_id
        node = self.pool.get(page_id)
        while not node.is_leaf:
            idx = bisect_right(node.keys, pair)
            path.append((page_id, node, idx))
            page_id = node.children[idx]
            node = self.pool.get(page_id)

        idx = bisect_left(node.entries, pair)
        if idx >= len(node.entries) or node.entries[idx] != pair:
            raise KeyError(pair)
        node.entries.pop(idx)
        self.pool.mark_dirty(page_id)
        self._count -= 1
        self._rebalance_after_delete(path, page_id, node)

    def _min_leaf(self) -> int:
        return (self.leaf_capacity + 1) // 2

    def _min_internal(self) -> int:
        # Minimum child count for a non-root internal node.
        return (self.internal_capacity + 1) // 2

    def _rebalance_after_delete(
        self,
        path: List[Tuple[int, InternalNode, int]],
        page_id: int,
        node,
    ) -> None:
        while True:
            if not path:
                # node is the root.
                if not node.is_leaf and len(node.children) == 1:
                    # Collapse a one-child root.
                    old_root = self._root_id
                    self._root_id = node.children[0]
                    self._page_ids.discard(old_root)
                    self.pool.drop(old_root)
                    self.pool.disk.free(old_root)
                    self._height -= 1
                return

            minimum = self._min_leaf() if node.is_leaf else self._min_internal()
            size = len(node.entries) if node.is_leaf else len(node.children)
            if size >= minimum:
                return

            parent_id, parent, child_idx = path.pop()

            # Try borrowing from the left sibling, then the right.
            if child_idx > 0:
                left_id = parent.children[child_idx - 1]
                left = self.pool.get(left_id)
                left_size = len(left.entries) if left.is_leaf else len(left.children)
                if left_size > minimum:
                    self._borrow_from_left(
                        parent_id, parent, child_idx, left_id, left, page_id, node
                    )
                    return
            if child_idx < len(parent.children) - 1:
                right_id = parent.children[child_idx + 1]
                right = self.pool.get(right_id)
                right_size = (
                    len(right.entries) if right.is_leaf else len(right.children)
                )
                if right_size > minimum:
                    self._borrow_from_right(
                        parent_id, parent, child_idx, page_id, node, right_id, right
                    )
                    return

            # Merge with a sibling (left preferred); parent loses one child.
            if child_idx > 0:
                left_id = parent.children[child_idx - 1]
                left = self.pool.get(left_id)
                self._merge(parent_id, parent, child_idx - 1, left_id, left, page_id, node)
            else:
                right_id = parent.children[child_idx + 1]
                right = self.pool.get(right_id)
                self._merge(parent_id, parent, child_idx, page_id, node, right_id, right)

            page_id, node = parent_id, parent

    def _borrow_from_left(
        self, parent_id, parent, child_idx, left_id, left, page_id, node
    ) -> None:
        if node.is_leaf:
            moved = left.entries.pop()
            node.entries.insert(0, moved)
            parent.keys[child_idx - 1] = node.entries[0]
        else:
            sep = parent.keys[child_idx - 1]
            node.keys.insert(0, sep)
            node.children.insert(0, left.children.pop())
            parent.keys[child_idx - 1] = left.keys.pop()
        self.pool.mark_dirty(left_id)
        self.pool.mark_dirty(page_id)
        self.pool.mark_dirty(parent_id)

    def _borrow_from_right(
        self, parent_id, parent, child_idx, page_id, node, right_id, right
    ) -> None:
        if node.is_leaf:
            moved = right.entries.pop(0)
            node.entries.append(moved)
            parent.keys[child_idx] = right.entries[0]
        else:
            sep = parent.keys[child_idx]
            node.keys.append(sep)
            node.children.append(right.children.pop(0))
            parent.keys[child_idx] = right.keys.pop(0)
        self.pool.mark_dirty(right_id)
        self.pool.mark_dirty(page_id)
        self.pool.mark_dirty(parent_id)

    def _merge(
        self, parent_id, parent, left_pos, left_id, left, right_id, right
    ) -> None:
        """Fold ``right`` into ``left``; ``left_pos`` indexes the separator."""
        if left.is_leaf:
            left.entries.extend(right.entries)
            left.next_page = right.next_page
        else:
            left.keys.append(parent.keys[left_pos])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_pos)
        parent.children.pop(left_pos + 1)
        self._page_ids.discard(right_id)
        self.pool.drop(right_id)
        self.pool.disk.free(right_id)
        self.pool.mark_dirty(left_id)
        self.pool.mark_dirty(parent_id)

    # ------------------------------------------------------------------
    # Validation (test hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify structural invariants; raises ``AssertionError`` on damage.

        Test-only: walks the whole tree through the buffer pool.
        """
        leaves: List[int] = []
        total = self._walk_check(self._root_id, 1, None, None, leaves)
        assert total == self._count, f"count mismatch: {total} != {self._count}"
        # The leaf chain must visit exactly the leaves, left to right.
        page_id = self._root_id
        node = self.pool.get(page_id)
        while not node.is_leaf:
            page_id = node.children[0]
            node = self.pool.get(page_id)
        chain = [page_id]
        while node.next_page is not None:
            chain.append(node.next_page)
            node = self.pool.get(node.next_page)
        assert chain == leaves, "leaf chain does not match tree order"

    def _walk_check(self, page_id, depth, lo, hi, leaves) -> int:
        node = self.pool.get(page_id)
        if node.is_leaf:
            assert depth == self._height, "leaves at differing depths"
            assert node.entries == sorted(node.entries), "unsorted leaf"
            assert len(node.entries) <= self.leaf_capacity, "overfull leaf"
            if page_id != self._root_id:
                assert len(node.entries) >= self._min_leaf(), "underfull leaf"
            for e in node.entries:
                assert lo is None or e >= lo, "entry below lower separator"
                assert hi is None or e < hi, "entry above upper separator"
            leaves.append(page_id)
            return len(node.entries)

        assert len(node.children) == len(node.keys) + 1, "key/child arity"
        assert len(node.children) <= self.internal_capacity, "overfull internal"
        if page_id != self._root_id:
            assert len(node.children) >= self._min_internal(), "underfull internal"
        else:
            assert len(node.children) >= 2, "root with a single child"
        assert node.keys == sorted(node.keys), "unsorted separators"
        total = 0
        for i, child in enumerate(node.children):
            child_lo = lo if i == 0 else node.keys[i - 1]
            child_hi = hi if i == len(node.keys) else node.keys[i]
            total += self._walk_check(child, depth + 1, child_lo, child_hi, leaves)
        return total
