"""One-call full reproduction report.

``full_report`` regenerates every table and figure at a chosen scale and
renders them into a single markdown document -- the programmatic
equivalent of running the whole benchmark suite, for notebooks and the
``python -m repro report`` command.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.harness.build_stats import table1
from repro.harness.normalized import collect_all_counties, normalized_ranges
from repro.harness.occupancy import occupancy_report
from repro.harness.sweeps import figure6_sweep
from repro.harness.tables import (
    format_figure6,
    format_normalized,
    format_normalized_bars,
    format_occupancy,
    format_table1,
    format_table2,
)
from repro.metric_names import BBOX_COMPS, DISK_ACCESSES, SEGMENT_COMPS


def full_report(
    scale: float = 0.05,
    n_queries: int = 100,
    counties: Optional[Sequence[str]] = None,
    out_path: Optional[Union[str, Path]] = None,
) -> str:
    """Build every structure over every county and render all results.

    Returns the markdown text; also writes it to ``out_path`` if given.
    At the default scale this takes on the order of a minute; at
    ``scale=1.0`` expect tens of minutes (see EXPERIMENTS.md).
    """
    started = time.perf_counter()
    sections = [
        "# Reproduction report",
        "",
        f"Hoel & Samet, SIGMOD 1992 — regenerated at scale {scale} with "
        f"{n_queries} queries per workload.",
        "",
        "## Table 1 — building statistics",
        "```",
        format_table1(table1(scale=scale, counties=counties)),
        "```",
    ]

    per_county = collect_all_counties(
        scale=scale, n_queries=n_queries, counties=counties
    )

    charles_key = "charles" if "charles" in per_county else next(iter(per_county))
    sections += [
        f"## Table 2 — query statistics ({charles_key})",
        "```",
        format_table2(per_county[charles_key], county=charles_key),
        "```",
    ]

    figure_specs = [
        (
            "Figure 7 — relative bounding box computations",
            normalized_ranges(
                per_county, BBOX_COMPS, structures=("R+",), baseline="R*"
            ),
            "R*",
        ),
        (
            "Figure 8 — relative disk accesses",
            normalized_ranges(per_county, DISK_ACCESSES),
            "PMR",
        ),
        (
            "Figure 9 — relative segment comparisons",
            normalized_ranges(per_county, SEGMENT_COMPS),
            "PMR",
        ),
    ]
    for title, ranges, baseline in figure_specs:
        sections += [
            f"## {title}",
            "```",
            format_normalized(ranges, title, baseline=baseline),
            "",
            format_normalized_bars(ranges, title, baseline=baseline),
            "```",
        ]

    sweep_county = charles_key if counties else "cecil"
    sections += [
        "## Figure 6 — page/buffer sweep",
        "```",
        format_figure6(figure6_sweep(county=sweep_county, scale=scale)),
        "```",
        "## Occupancy (Concluding Remarks)",
        "```",
        format_occupancy(occupancy_report(county=sweep_county, scale=scale)),
        "```",
        "",
        f"_Generated in {time.perf_counter() - started:.1f} s._",
        "",
    ]

    text = "\n".join(sections)
    if out_path is not None:
        Path(out_path).write_text(text)
    return text
