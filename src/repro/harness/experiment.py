"""Building structures under measurement.

Each structure gets its own complete storage stack (Section 4: each uses
a 16-page, 1 KiB-page LRU buffer pool) and the segment table is loaded
with identical contents, so measured differences come from the index, not
the harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core import (
    GuttmanRTree,
    KDBTree,
    PM1Quadtree,
    PM2Quadtree,
    PM3Quadtree,
    PMRQuadtree,
    RPlusTree,
    RStarTree,
    SpatialIndex,
    TrueRPlusTree,
    UniformGrid,
)
from repro.data.generator import MapData
from repro.storage import MetricsSnapshot, StorageContext
from repro.storage.policies import ReplacementPolicy

#: Factories for the structures by their table name. The PMR threshold of
#: 4 follows the paper's road-network argument (more than 4 roads rarely
#: meet at a point); R-tree m = 40 % of M follows the R*-tree authors.
STRUCTURE_FACTORIES: Dict[str, Callable[..., SpatialIndex]] = {
    "R*": lambda ctx, **kw: RStarTree(ctx, **kw),
    "R+": lambda ctx, **kw: RPlusTree(ctx, **kw),
    "PMR": lambda ctx, **kw: PMRQuadtree(ctx, **kw),
    "R": lambda ctx, **kw: GuttmanRTree(ctx, **kw),
    "kdB": lambda ctx, **kw: KDBTree(ctx, **kw),
    "grid": lambda ctx, **kw: UniformGrid(ctx, **kw),
    "PM1": lambda ctx, **kw: PM1Quadtree(ctx, **kw),
    "PM2": lambda ctx, **kw: PM2Quadtree(ctx, **kw),
    "PM3": lambda ctx, **kw: PM3Quadtree(ctx, **kw),
    "R+t": lambda ctx, **kw: TrueRPlusTree(ctx, **kw),
}


@dataclass
class BuiltStructure:
    """One structure built over one map, with its build measurements."""

    name: str
    index: SpatialIndex
    ctx: StorageContext
    map_data: MapData
    build_seconds: float
    build_metrics: MetricsSnapshot

    @property
    def size_kbytes(self) -> float:
        return self.index.bytes_used() / 1024.0


def build_structure(
    name: str,
    map_data: MapData,
    page_size: int = 1024,
    pool_pages: int = 16,
    policy: Optional[ReplacementPolicy] = None,
    **index_kwargs,
) -> BuiltStructure:
    """Load the segment table, then insert every segment one by one.

    The paper builds dynamically (structure shape depends on insertion
    order); segments are inserted in map order, which for TIGER-like data
    means road by road.
    """
    ctx = StorageContext.create(
        page_size=page_size, pool_pages=pool_pages, policy=policy
    )
    try:
        factory = STRUCTURE_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown structure {name!r}; choose from {sorted(STRUCTURE_FACTORIES)}"
        ) from None
    index = factory(ctx, **index_kwargs)

    seg_ids = ctx.load_segments(map_data.segments)
    before = ctx.counters.snapshot()
    start = time.perf_counter()
    for seg_id in seg_ids:
        index.insert(seg_id)
    elapsed = time.perf_counter() - start
    ctx.pool.flush()
    build_metrics = ctx.counters.since(before)

    return BuiltStructure(
        name=name,
        index=index,
        ctx=ctx,
        map_data=map_data,
        build_seconds=elapsed,
        build_metrics=build_metrics,
    )
