"""The seven query workloads measured in Table 2 and Figures 7-9.

Each workload runs a batch of queries against a built structure and
reports the *average per query* of the paper's three metrics. The buffer
pool is cold-started once per workload and stays warm across the queries
of the batch, as in any sequence of independent queries against a live
system (this is why the paper's per-query disk accesses are far below the
tree heights).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.backends import SCALAR_BACKEND
from repro.core.pmr import PMRQuadtree
from repro.core.queries.spec import QuerySpec
from repro.data.generator import MapData
from repro.data.query_points import (
    random_endpoint_queries,
    random_windows,
    two_stage_points,
    uniform_points,
)
from repro.geometry import Point, Rect
from repro.harness.experiment import BuiltStructure

WORKLOAD_NAMES: Tuple[str, ...] = (
    "Point1",
    "Point2",
    "Nearest(2-stage)",
    "Nearest(1-stage)",
    "Polygon(2-stage)",
    "Polygon(1-stage)",
    "Range",
)


@dataclass
class QueryStats:
    """Average per-query metrics for one workload on one structure."""

    workload: str
    structure: str
    queries: int
    disk_accesses: float
    segment_comps: float
    bbox_comps: float

    def metric(self, name: str) -> float:
        return getattr(self, name)


@dataclass
class QueryWorkloads:
    """One shared set of query inputs, used for every structure.

    The 2-stage points are drawn from the PMR quadtree's decomposition
    (the paper's data-correlated model) and then reused verbatim for the
    R-trees so all structures answer the same questions.
    """

    endpoint_queries: List[Tuple[Point, int]]
    two_stage: List[Point]
    one_stage: List[Point]
    windows: List[Rect]

    @classmethod
    def generate(
        cls,
        map_data: MapData,
        pmr: PMRQuadtree,
        n_queries: int,
        seed: int = 1992,
        window_area_fraction: float = 0.0001,
    ) -> "QueryWorkloads":
        """``window_area_fraction`` is the paper's 0.01 % at full map
        scale; run a map built at a reduced scale with ``0.0001 / scale``
        so a window covers a comparable amount of road network."""
        rng = random.Random(seed)
        return cls(
            endpoint_queries=random_endpoint_queries(n_queries, rng, map_data),
            two_stage=two_stage_points(n_queries, rng, pmr),
            one_stage=uniform_points(n_queries, rng, map_data.world_size),
            windows=random_windows(
                n_queries,
                rng,
                map_data.world_size,
                area_fraction=window_area_fraction,
            ),
        )


def _measure(built: BuiltStructure, workload: str, runs) -> QueryStats:
    built.ctx.pool.clear()
    before = built.ctx.counters.snapshot()
    n = 0
    for run in runs:
        run()
        n += 1
    delta = built.ctx.counters.since(before)
    return QueryStats(
        workload=workload,
        structure=built.name,
        queries=n,
        disk_accesses=delta.disk_reads / max(n, 1),
        segment_comps=delta.segment_comps / max(n, 1),
        bbox_comps=delta.bbox_comps / max(n, 1),
    )


def run_point1(
    built: BuiltStructure,
    queries: Sequence[Tuple[Point, int]],
    backend=None,
) -> QueryStats:
    idx = built.index
    be = backend if backend is not None else SCALAR_BACKEND
    return _measure(
        built,
        "Point1",
        ((lambda p=p: be.run(idx, QuerySpec.point(p))) for p, _ in queries),
    )


def run_point2(
    built: BuiltStructure,
    queries: Sequence[Tuple[Point, int]],
    backend=None,
) -> QueryStats:
    idx = built.index
    be = backend if backend is not None else SCALAR_BACKEND
    return _measure(
        built,
        "Point2",
        (
            (lambda p=p, s=s: be.run(idx, QuerySpec.other_endpoint(p, s)))
            for p, s in queries
        ),
    )


def run_nearest(
    built: BuiltStructure,
    points: Sequence[Point],
    label: str,
    backend=None,
) -> QueryStats:
    idx = built.index
    be = backend if backend is not None else SCALAR_BACKEND
    return _measure(
        built,
        label,
        ((lambda p=p: be.run(idx, QuerySpec.nearest(p, 1))) for p in points),
    )


def run_polygon(
    built: BuiltStructure,
    points: Sequence[Point],
    label: str,
    backend=None,
) -> QueryStats:
    idx = built.index
    be = backend if backend is not None else SCALAR_BACKEND
    return _measure(
        built,
        label,
        ((lambda p=p: be.run(idx, QuerySpec.polygon(p))) for p in points),
    )


def run_range(
    built: BuiltStructure, windows: Sequence[Rect], backend=None
) -> QueryStats:
    idx = built.index
    be = backend if backend is not None else SCALAR_BACKEND
    return _measure(
        built,
        "Range",
        ((lambda w=w: be.run(idx, QuerySpec.window(w))) for w in windows),
    )


def run_workloads(
    built: BuiltStructure, workloads: QueryWorkloads, backend=None
) -> Dict[str, QueryStats]:
    """All seven workloads against one built structure, in table order.

    ``backend`` selects the traversal backend (default: the scalar
    reference); results and per-query counters are backend-invariant.
    """
    results = [
        run_point1(built, workloads.endpoint_queries, backend=backend),
        run_point2(built, workloads.endpoint_queries, backend=backend),
        run_nearest(built, workloads.two_stage, "Nearest(2-stage)", backend=backend),
        run_nearest(built, workloads.one_stage, "Nearest(1-stage)", backend=backend),
        run_polygon(built, workloads.two_stage, "Polygon(2-stage)", backend=backend),
        run_polygon(built, workloads.one_stage, "Polygon(1-stage)", backend=backend),
        run_range(built, workloads.windows, backend=backend),
    ]
    return {r.workload: r for r in results}
