"""Figure 6: build disk accesses by page size and buffer-pool size.

"Figure 6 shows the effect of changing the page size and the size of the
buffer pool on the number of disk accesses for the R+-tree and the PMR
quadtree. In particular, they decrease as the page sizes and the size of
the buffer pool increase. Moreover, for identical page and buffer pool
configurations, the number of disk accesses for the PMR quadtree is
smaller than for the R+-tree."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.data import generate_county
from repro.data.generator import MapData
from repro.harness.experiment import build_structure


@dataclass
class SweepCell:
    structure: str
    page_size: int
    pool_pages: int
    disk_accesses: int
    size_kbytes: float


def figure6_sweep(
    map_data: MapData = None,
    county: str = "baltimore",
    scale: float = 0.05,
    structures: Sequence[str] = ("R+", "PMR"),
    page_sizes: Sequence[int] = (512, 1024, 2048, 4096),
    pool_pages_options: Sequence[int] = (8, 16, 32),
) -> List[SweepCell]:
    """Build each structure under every (page size, pool size) pair."""
    if map_data is None:
        map_data = generate_county(county, scale=scale)
    cells: List[SweepCell] = []
    for structure in structures:
        for page_size in page_sizes:
            for pool_pages in pool_pages_options:
                built = build_structure(
                    structure, map_data, page_size=page_size, pool_pages=pool_pages
                )
                cells.append(
                    SweepCell(
                        structure=structure,
                        page_size=page_size,
                        pool_pages=pool_pages,
                        disk_accesses=built.build_metrics.disk_reads,
                        size_kbytes=built.size_kbytes,
                    )
                )
    return cells


def sweep_as_grid(
    cells: List[SweepCell],
) -> Dict[str, Dict[Tuple[int, int], int]]:
    """``{structure: {(page_size, pool_pages): disk_accesses}}``."""
    out: Dict[str, Dict[Tuple[int, int], int]] = {}
    for cell in cells:
        out.setdefault(cell.structure, {})[(cell.page_size, cell.pool_pages)] = (
            cell.disk_accesses
        )
    return out
