"""Normalized ranges (Figures 7-9).

Section 6: because the counties differ so much (urban polygons of ~19
edges vs rural ones of ~132), per-map measurements are normalized against
the PMR quadtree's value on the same map; each figure then shows, per
structure and workload, the *normalized range* -- min, average, and max
of the normalized value over the six maps. PMR is identically 1.

Figure 7 (bounding box computations) instead normalizes the R+-tree
against the R*-tree, because the PMR's bucket computations are about two
orders of magnitude smaller and would flatten the plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.data import COUNTY_NAMES, generate_county
from repro.harness.query_stats import map_query_stats
from repro.harness.workloads import WORKLOAD_NAMES, QueryStats


@dataclass
class NormalizedRange:
    """min/avg/max of a normalized metric over the maps."""

    structure: str
    workload: str
    metric: str
    minimum: float
    average: float
    maximum: float

    @classmethod
    def from_values(
        cls, structure: str, workload: str, metric: str, values: Sequence[float]
    ) -> "NormalizedRange":
        return cls(
            structure=structure,
            workload=workload,
            metric=metric,
            minimum=min(values),
            average=sum(values) / len(values),
            maximum=max(values),
        )


def collect_all_counties(
    scale: float = 0.05,
    n_queries: int = 100,
    structures: Sequence[str] = ("PMR", "R+", "R*"),
    counties: Optional[Sequence[str]] = None,
    seed: int = 1992,
) -> Dict[str, Dict[str, Dict[str, QueryStats]]]:
    """``{county: {structure: {workload: stats}}}`` over all counties."""
    out = {}
    for county in counties if counties is not None else COUNTY_NAMES:
        map_data = generate_county(county, scale=scale)
        out[county] = map_query_stats(
            map_data,
            structures=structures,
            n_queries=n_queries,
            seed=seed,
            window_area_fraction=min(0.0001 / scale, 0.01),
        )
    return out


def normalized_ranges(
    per_county: Dict[str, Dict[str, Dict[str, QueryStats]]],
    metric: str,
    structures: Sequence[str] = ("R+", "R*"),
    baseline: str = "PMR",
) -> List[NormalizedRange]:
    """Reduce raw per-county stats to the figures' normalized ranges.

    ``metric`` is one of ``disk_accesses``, ``segment_comps``,
    ``bbox_comps``. Use ``baseline="R*"`` with ``structures=("R+",)``
    for Figure 7.
    """
    ranges: List[NormalizedRange] = []
    for structure in structures:
        for workload in WORKLOAD_NAMES:
            values = []
            for county, by_structure in per_county.items():
                base = by_structure[baseline][workload].metric(metric)
                val = by_structure[structure][workload].metric(metric)
                if base == 0:
                    continue  # degenerate map; nothing to normalize
                values.append(val / base)
            if values:
                ranges.append(
                    NormalizedRange.from_values(structure, workload, metric, values)
                )
    return ranges
