"""The Concluding Remarks occupancy analysis.

The paper observes (for 1 KiB pages) an average of ~36 segments per
R*-tree page and ~32 per R+-tree page, that a PMR bucket with splitting
threshold x holds about 0.5x segments on average, and therefore that a
threshold of ~64 would equalize average bucket and page occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.data import generate_county
from repro.data.generator import MapData
from repro.harness.experiment import build_structure


@dataclass
class OccupancyReport:
    county: str
    rstar_leaf_occupancy: float
    rplus_leaf_occupancy: float
    pmr_bucket_occupancy: Dict[int, float]  # threshold -> avg bucket fill
    pmr_size_kbytes: Dict[int, float]  # threshold -> index size

    def equalizing_threshold(self) -> int:
        """The swept threshold whose bucket occupancy comes closest to the
        R-tree page occupancies (the paper estimates ~64)."""
        target = (self.rstar_leaf_occupancy + self.rplus_leaf_occupancy) / 2
        return min(
            self.pmr_bucket_occupancy,
            key=lambda t: abs(self.pmr_bucket_occupancy[t] - target),
        )


def occupancy_report(
    map_data: MapData = None,
    county: str = "baltimore",
    scale: float = 0.05,
    thresholds: Sequence[int] = (2, 4, 8, 16, 32, 64),
) -> OccupancyReport:
    if map_data is None:
        map_data = generate_county(county, scale=scale)

    rstar = build_structure("R*", map_data)
    rplus = build_structure("R+", map_data)

    pmr_occ: Dict[int, float] = {}
    pmr_size: Dict[int, float] = {}
    for threshold in thresholds:
        built = build_structure("PMR", map_data, threshold=threshold)
        pmr_occ[threshold] = built.index.bucket_occupancy()
        pmr_size[threshold] = built.size_kbytes

    return OccupancyReport(
        county=map_data.name,
        rstar_leaf_occupancy=rstar.index.leaf_occupancy(),
        rplus_leaf_occupancy=rplus.index.leaf_occupancy(),
        pmr_bucket_occupancy=pmr_occ,
        pmr_size_kbytes=pmr_size,
    )


def pmr_threshold_sweep(
    map_data: MapData,
    thresholds: Sequence[int] = (2, 4, 8, 16, 32, 64),
) -> List[Dict]:
    """Storage/occupancy trade-off as the splitting threshold grows.

    The paper: "as the splitting threshold is increased, the storage
    requirements of the PMR quadtree decrease while the time necessary to
    perform operations on it will increase."
    """
    rows = []
    for threshold in thresholds:
        built = build_structure("PMR", map_data, threshold=threshold)
        rows.append(
            {
                "threshold": threshold,
                "size_kbytes": built.size_kbytes,
                "bucket_occupancy": built.index.bucket_occupancy(),
                "buckets": len(built.index.leaf_blocks()),
                "entries": built.index.entry_count(),
                "build_seconds": built.build_seconds,
            }
        )
    return rows
