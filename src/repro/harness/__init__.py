"""Experiment harness: everything needed to regenerate the paper's
tables and figures.

* :mod:`~repro.harness.experiment` -- build one structure over one map
  with full metric attribution.
* :mod:`~repro.harness.workloads` -- the seven query workloads of
  Table 2 / Figures 7-9 (point1, point2, nearest x 2 point models,
  polygon x 2 point models, range).
* :mod:`~repro.harness.build_stats` -- Table 1 (size / build disk
  accesses / build cpu seconds per county and structure).
* :mod:`~repro.harness.query_stats` -- per-county query measurements
  (Table 2 is the Charles county instance).
* :mod:`~repro.harness.normalized` -- the normalized ranges plotted in
  Figures 7-9.
* :mod:`~repro.harness.sweeps` -- the page-size / buffer-size build sweep
  of Figure 6.
* :mod:`~repro.harness.occupancy` -- the Concluding Remarks occupancy
  analysis and PMR threshold sweep.
* :mod:`~repro.harness.tables` -- plain-text renderings in the paper's
  row/column layout.
"""

from repro.harness.build_stats import BuildRow, table1
from repro.harness.experiment import (
    STRUCTURE_FACTORIES,
    BuiltStructure,
    build_structure,
)
from repro.harness.normalized import NormalizedRange, normalized_ranges
from repro.harness.occupancy import occupancy_report, pmr_threshold_sweep
from repro.harness.query_stats import county_query_stats
from repro.harness.surveys import PolygonSurvey, polygon_size_survey
from repro.harness.sweeps import figure6_sweep
from repro.harness.tables import (
    format_figure6,
    format_normalized_bars,
    format_normalized,
    format_occupancy,
    format_table1,
    format_table2,
)
from repro.harness.workloads import WORKLOAD_NAMES, QueryStats, run_workloads

__all__ = [
    "BuildRow",
    "BuiltStructure",
    "NormalizedRange",
    "PolygonSurvey",
    "QueryStats",
    "STRUCTURE_FACTORIES",
    "WORKLOAD_NAMES",
    "build_structure",
    "county_query_stats",
    "figure6_sweep",
    "format_figure6",
    "format_normalized",
    "format_normalized_bars",
    "format_occupancy",
    "format_table1",
    "format_table2",
    "normalized_ranges",
    "occupancy_report",
    "pmr_threshold_sweep",
    "polygon_size_survey",
    "table1",
]
