"""Plain-text renderings of the reproduced tables and figures, in the
paper's row/column layout."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.harness.build_stats import BuildRow
from repro.harness.normalized import NormalizedRange
from repro.harness.occupancy import OccupancyReport
from repro.harness.sweeps import SweepCell, sweep_as_grid
from repro.harness.workloads import WORKLOAD_NAMES, QueryStats
from repro.metric_names import BBOX_COMPS, DISK_ACCESSES, SEGMENT_COMPS

_METRIC_LABELS = {
    DISK_ACCESSES: "disk accesses",
    SEGMENT_COMPS: "segment comps",
    BBOX_COMPS: "bbox / node comps",
}


def format_table1(
    rows: List[BuildRow], structures: Sequence[str] = ("R*", "R+", "PMR")
) -> str:
    """Table 1: size (Kbytes) | disk accesses | cpu seconds, per county."""
    header1 = (
        f"{'':14s}{'':>7s} |{'size (Kbytes)':^24s}|{'disk accesses':^24s}|"
        f"{'cpu seconds':^24s}"
    )
    header2 = (
        f"{'map name':14s}{'segs':>7s} |"
        + "".join(f"{s:>8s}" for s in structures)
        + "|"
        + "".join(f"{s:>8s}" for s in structures)
        + "|"
        + "".join(f"{s:>8s}" for s in structures)
    )
    lines = [header1, header2, "-" * len(header2)]
    for row in rows:
        line = (
            f"{row.county:14s}{row.segments:>7d} |"
            + "".join(f"{row.size_kbytes[s]:>8.0f}" for s in structures)
            + "|"
            + "".join(f"{row.disk_accesses[s]:>8d}" for s in structures)
            + "|"
            + "".join(f"{row.cpu_seconds[s]:>8.2f}" for s in structures)
        )
        lines.append(line)
    return "\n".join(lines)


def format_table2(
    stats: Dict[str, Dict[str, QueryStats]],
    structures: Sequence[str] = ("PMR", "R+", "R*"),
    county: str = "charles",
) -> str:
    """Table 2: per-workload metric rows for one county."""
    width = 18 + 12 * len(structures)
    lines = [
        f"{county} county".center(width),
        f"{'query':<18s}{'metric':<20s}"
        + "".join(f"{s:>12s}" for s in structures),
    ]
    lines.append("-" * (38 + 12 * len(structures)))
    for workload in WORKLOAD_NAMES:
        for metric, label in _METRIC_LABELS.items():
            lines.append(
                f"{workload:<18s}{label:<20s}"
                + "".join(
                    f"{stats[s][workload].metric(metric):>12.2f}"
                    for s in structures
                )
            )
        lines.append("")
    return "\n".join(lines)


def format_normalized(
    ranges: List[NormalizedRange], title: str, baseline: str = "PMR"
) -> str:
    """Figures 7-9 as text: normalized min-avg-max per structure/workload."""
    lines = [
        title,
        f"(normalized against {baseline}; each cell is min / avg / max over the maps)",
        f"{'workload':<18s}{'structure':<10s}{'min':>8s}{'avg':>8s}{'max':>8s}",
        "-" * 52,
    ]
    for workload in WORKLOAD_NAMES:
        for r in ranges:
            if r.workload == workload:
                lines.append(
                    f"{workload:<18s}{r.structure:<10s}"
                    f"{r.minimum:>8.2f}{r.average:>8.2f}{r.maximum:>8.2f}"
                )
    return "\n".join(lines)


def format_normalized_bars(
    ranges: List[NormalizedRange], title: str, baseline: str = "PMR", width: int = 40
) -> str:
    """Figures 7-9 as horizontal bar charts (the paper plots ranges;
    each bar spans min..max with the average marked)."""
    finite = [r for r in ranges if r.maximum > 0]
    if not finite:
        return f"{title}\n(no data)"
    scale_max = max(r.maximum for r in finite)
    unit = width / scale_max
    lines = [
        title,
        f"(bars span min..max over the maps, '*' marks the average; "
        f"{baseline} = 1.0)",
    ]
    baseline_col = int(1.0 * unit)
    for workload in WORKLOAD_NAMES:
        for r in ranges:
            if r.workload != workload:
                continue
            lo = int(r.minimum * unit)
            hi = max(int(r.maximum * unit), lo + 1)
            avg = min(max(int(r.average * unit), lo), hi - 1)
            row = [" "] * (width + 2)
            for i in range(lo, hi):
                row[i] = "="
            row[avg] = "*"
            if 0 <= baseline_col < len(row) and row[baseline_col] == " ":
                row[baseline_col] = "|"
            lines.append(
                f"{workload:<18s}{r.structure:<5s}{''.join(row)} "
                f"{r.average:5.2f}"
            )
    return "\n".join(lines)


def format_figure6(cells: List[SweepCell]) -> str:
    """Figure 6 as a grid: build disk accesses per (page size, pool size)."""
    grid = sweep_as_grid(cells)
    page_sizes = sorted({c.page_size for c in cells})
    pool_sizes = sorted({c.pool_pages for c in cells})
    lines = ["Build disk accesses by page size and buffer size"]
    for structure, values in grid.items():
        lines.append(f"\n{structure}:")
        lines.append(
            f"{'page size':>10s} |"
            + "".join(f"{p:>8d}p" for p in pool_sizes)
            + "   (buffer pool pages)"
        )
        for page_size in page_sizes:
            lines.append(
                f"{str(page_size) + 'B':>10s} |"
                + "".join(f"{values[(page_size, p)]:>9d}" for p in pool_sizes)
            )
    return "\n".join(lines)


def format_occupancy(report: OccupancyReport) -> str:
    lines = [
        f"Average page/bucket occupancy ({report.county})",
        f"  R*-tree leaf pages : {report.rstar_leaf_occupancy:.1f} segments/page",
        f"  R+-tree leaf pages : {report.rplus_leaf_occupancy:.1f} segments/page",
        "  PMR bucket occupancy by splitting threshold:",
    ]
    for threshold, occ in sorted(report.pmr_bucket_occupancy.items()):
        size = report.pmr_size_kbytes[threshold]
        lines.append(
            f"    threshold {threshold:>3d}: {occ:>6.1f} segs/bucket "
            f"(~{occ / threshold:.2f}x), index {size:.0f} KB"
        )
    lines.append(
        f"  occupancy-equalizing threshold: {report.equalizing_threshold()}"
    )
    return "\n".join(lines)
