"""Per-county query measurements (Table 2 is the Charles county instance).

For each structure, the paper measures the averages of disk accesses,
segment comparisons, and bounding box (or bucket) computations over 1000
queries of each of the seven workloads. All structures answer the same
query instances; the 2-stage points come from the PMR decomposition as in
the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.data import generate_county
from repro.data.generator import MapData
from repro.harness.experiment import build_structure
from repro.harness.workloads import QueryStats, QueryWorkloads, run_workloads


def map_query_stats(
    map_data: MapData,
    structures: Sequence[str] = ("PMR", "R+", "R*"),
    n_queries: int = 200,
    page_size: int = 1024,
    pool_pages: int = 16,
    seed: int = 1992,
    window_area_fraction: float = 0.0001,
) -> Dict[str, Dict[str, QueryStats]]:
    """``{structure: {workload: stats}}`` for one map.

    A PMR quadtree is always built (it defines the 2-stage query points);
    it is measured only if "PMR" is among ``structures``.
    """
    pmr_built = build_structure(
        "PMR", map_data, page_size=page_size, pool_pages=pool_pages
    )
    workloads = QueryWorkloads.generate(
        map_data,
        pmr_built.index,
        n_queries,
        seed=seed,
        window_area_fraction=window_area_fraction,
    )

    out: Dict[str, Dict[str, QueryStats]] = {}
    for name in structures:
        if name == "PMR":
            built = pmr_built
        else:
            built = build_structure(
                name, map_data, page_size=page_size, pool_pages=pool_pages
            )
        out[name] = run_workloads(built, workloads)
    return out


def county_query_stats(
    county: str = "charles",
    scale: float = 0.1,
    structures: Sequence[str] = ("PMR", "R+", "R*"),
    n_queries: int = 200,
    seed: int = 1992,
) -> Dict[str, Dict[str, QueryStats]]:
    """Regenerate a Table 2-style measurement for one county.

    The window area grows as ``0.0001 / scale`` so that a window covers
    the same share of the road network as the paper's 0.01 % does at the
    paper's 50 000-segment scale.
    """
    map_data = generate_county(county, scale=scale)
    return map_query_stats(
        map_data,
        structures=structures,
        n_queries=n_queries,
        seed=seed,
        window_area_fraction=min(0.0001 / scale, 0.01),
    )
