"""Table 1: data structure building statistics.

For each county and structure: B-tree size in kilobytes (segment table
excluded, as in the paper), disk accesses during the build (buffer-pool
read misses; write-backs are reported alongside), and build cpu seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.data import COUNTY_NAMES, generate_county
from repro.data.generator import MapData
from repro.harness.experiment import BuiltStructure, build_structure


@dataclass
class BuildRow:
    """One Table 1 row: a county measured under every structure."""

    county: str
    segments: int
    size_kbytes: Dict[str, float] = field(default_factory=dict)
    disk_accesses: Dict[str, int] = field(default_factory=dict)
    disk_writes: Dict[str, int] = field(default_factory=dict)
    cpu_seconds: Dict[str, float] = field(default_factory=dict)


def build_row(
    map_data: MapData,
    structures: Sequence[str] = ("R*", "R+", "PMR"),
    page_size: int = 1024,
    pool_pages: int = 16,
) -> BuildRow:
    """Build every structure over one map and collect its Table 1 row."""
    row = BuildRow(county=map_data.name, segments=len(map_data))
    for name in structures:
        built = build_structure(
            name, map_data, page_size=page_size, pool_pages=pool_pages
        )
        row.size_kbytes[name] = built.size_kbytes
        row.disk_accesses[name] = built.build_metrics.disk_reads
        row.disk_writes[name] = built.build_metrics.disk_writes
        row.cpu_seconds[name] = built.build_seconds
    return row


def table1(
    scale: float = 0.1,
    structures: Sequence[str] = ("R*", "R+", "PMR"),
    counties: Optional[Sequence[str]] = None,
    page_size: int = 1024,
    pool_pages: int = 16,
) -> List[BuildRow]:
    """Regenerate Table 1 over the synthetic counties at ``scale``."""
    rows = []
    for name in counties if counties is not None else COUNTY_NAMES:
        map_data = generate_county(name, scale=scale)
        rows.append(
            build_row(
                map_data,
                structures=structures,
                page_size=page_size,
                pool_pages=pool_pages,
            )
        )
    return rows
