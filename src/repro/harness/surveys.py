"""Map-character surveys backing the Section 6 discussion.

The paper explains the per-county differences through the maps
themselves: "polygons in urban areas usually consisted of 5-6 line
segments corresponding to a city block ... in rural areas ... polygons
have much higher line segment counts", with measured averages of 19 for
Baltimore and 132 for Charles. This module measures the same quantity on
the synthetic counties, so the benchmarks can assert the urban << rural
ordering that drives the polygon-query costs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.backends import SCALAR_BACKEND
from repro.core.queries.spec import QuerySpec
from repro.data import two_stage_points
from repro.data.generator import MapData
from repro.harness.experiment import build_structure


@dataclass
class PolygonSurvey:
    county: str
    samples: int
    closed_inner_faces: int
    outer_face_hits: int
    average_size: float
    max_size: int

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"{self.county}: avg polygon {self.average_size:.1f} edges "
            f"(max {self.max_size}) over {self.closed_inner_faces} inner "
            f"faces; {self.outer_face_hits} query points fell outside"
        )


def polygon_size_survey(
    map_data: MapData,
    samples: int = 50,
    seed: int = 1992,
    built: Optional[object] = None,
) -> PolygonSurvey:
    """Average enclosing-polygon size under the 2-stage query model."""
    pmr = built if built is not None else build_structure("PMR", map_data)
    rng = random.Random(seed)
    points = two_stage_points(samples, rng, pmr.index)

    sizes: List[int] = []
    outer = 0
    for p in points:
        result = SCALAR_BACKEND.run(pmr.index, QuerySpec.polygon(p))
        if result is None or not result.closed:
            continue
        if result.is_outer:
            outer += 1
        else:
            sizes.append(result.size)

    return PolygonSurvey(
        county=map_data.name,
        samples=samples,
        closed_inner_faces=len(sizes),
        outer_face_hits=outer,
        average_size=sum(sizes) / len(sizes) if sizes else 0.0,
        max_size=max(sizes) if sizes else 0,
    )
