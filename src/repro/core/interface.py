"""The common interface all indexed structures implement.

The five queries of the paper (Section 5) are written once, against this
interface (:mod:`repro.core.queries`); each structure supplies candidate
generation and incremental-nearest expansion, and charges its own metrics
(disk accesses via its buffer pool, bounding box / bucket computations via
``ctx.counters.bbox_comps``).

Candidate methods may return duplicate segment ids (the disjoint
structures store a segment once per block it crosses); the query layer
deduplicates by id *before* fetching geometry, as any real implementation
would, since the id is available in the node.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Iterable, List, NamedTuple, Union

from repro.geometry import (
    Point,
    Rect,
    Segment,
    point_rect_distance2,
    rect_rect_distance2,
)
from repro.storage.context import StorageContext

#: The paper's world: maps are normalized to a 16K x 16K region (2^28 pixels).
WORLD_SIZE = 16384
WORLD_DEPTH = 14


class SegmentQuery(NamedTuple):
    """A segment used *as the query* of a nearest search (Section 2 also
    motivates "the nearest line to a given ... line"). Carries the MBR so
    index expansions do not recompute it per entry."""

    segment: Segment
    mbr: Rect

    @classmethod
    def of(cls, segment: Segment) -> "SegmentQuery":
        return cls(segment, segment.mbr())


#: What nearest-neighbour searches accept.
NNQuery = Union[Point, SegmentQuery]


def query_lower_bound(query: NNQuery, rect: Rect) -> float:
    """Admissible lower bound on the squared distance from ``query`` to
    anything inside ``rect`` -- MINDIST for points, MBR-to-rect distance
    for segment queries."""
    if isinstance(query, SegmentQuery):
        return rect_rect_distance2(query.mbr, rect)
    return point_rect_distance2(query, rect)


class NNItem(NamedTuple):
    """A priority-queue element for incremental nearest-neighbour search.

    ``dist2`` is a lower bound on the squared distance from the query point
    to anything reachable through ``ref``. ``is_segment`` distinguishes
    data entries (``ref`` is a segment id) from index nodes (``ref`` is
    structure-specific).
    """

    dist2: float
    is_segment: bool
    ref: Any


class TraversalBackend(ABC):
    """How queries traverse an index: the pluggable execution strategy.

    A backend consumes :class:`~repro.core.queries.spec.QuerySpec` plan
    objects and runs them against a :class:`SpatialIndex`. The scalar
    reference implementation (:class:`repro.core.backends.ScalarBackend`)
    is the paper's per-entry loop; the vectorized backend
    (:class:`repro.core.vector.VectorBackend`) mirrors node entries into
    struct-of-arrays blocks and tests a whole node in one numpy pass.

    The contract every backend must honour: for any spec, ``run`` must
    return the **same result** as the scalar path and charge the **same
    paper counters** (disk accesses, bounding-box comparisons, segment
    comparisons) through the index's storage context -- the EXPLAIN
    per-level attribution tests are the oracle. ``run_batch`` (only when
    ``supports_batch``) may reorder *page* traffic across the batch --
    that is the point of query-batched descent -- but per-query results,
    ``bbox_comps`` and ``segment_comps`` must still match the scalar
    path to the unit, and total disk accesses must not exceed it.
    """

    #: Short display name ("scalar", "vector") surfaced in stats/explain.
    name: ClassVar[str] = "abstract"

    #: Whether :meth:`run_batch` fuses multiple queries per node visit.
    supports_batch: ClassVar[bool] = False

    @abstractmethod
    def run(self, index: "SpatialIndex", spec) -> Any:
        """Execute one query spec; result shape depends on ``spec.op``."""

    def run_batch(self, index: "SpatialIndex", specs) -> List[Any]:
        """Execute many read specs, possibly sharing node visits.

        The default runs them one by one; batch-capable backends
        override this with a fused node-major descent.
        """
        return [self.run(index, spec) for spec in specs]

    def invalidate(self) -> None:
        """Drop any derived node state (call after every index mutation)."""

    def describe(self) -> dict:
        """Stats-endpoint snapshot: name plus backend-specific detail."""
        return {"name": self.name}


class SpatialIndex(ABC):
    """A disk-resident spatial index over a segment table.

    Subclasses own a :class:`~repro.storage.context.StorageContext`; all
    node traffic must flow through ``ctx.pool`` and all geometry access
    through ``ctx.segments.fetch`` so the paper's three metrics are
    collected faithfully.
    """

    #: Short display name used in tables ("R*", "R+", "PMR", ...).
    name: ClassVar[str] = "abstract"

    def __init__(self, ctx: StorageContext) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @abstractmethod
    def insert(self, seg_id: int) -> None:
        """Index the segment already stored in the segment table."""

    @abstractmethod
    def delete(self, seg_id: int) -> None:
        """Remove a segment from the index (not from the segment table)."""

    def bulk_load(self, seg_ids: Iterable[int]) -> None:
        """Insert many segments one by one (the paper builds dynamically)."""
        for seg_id in seg_ids:
            self.insert(seg_id)

    # ------------------------------------------------------------------
    # Candidate generation for the queries
    # ------------------------------------------------------------------
    @abstractmethod
    def candidate_ids_at_point(self, p: Point) -> List[int]:
        """Ids of segments whose stored region/MBR contains ``p``.

        May contain duplicates and false positives; never false negatives.
        """

    @abstractmethod
    def candidate_ids_in_rect(self, r: Rect) -> List[int]:
        """Ids of segments whose stored region/MBR meets ``r``.

        May contain duplicates and false positives; never false negatives.
        """

    # ------------------------------------------------------------------
    # Incremental nearest-neighbour expansion
    # ------------------------------------------------------------------
    @abstractmethod
    def nn_start(self, p: Point) -> List[NNItem]:
        """Initial queue items (typically the root)."""

    @abstractmethod
    def nn_expand(self, ref: Any, p: Point) -> List[NNItem]:
        """Expand a node reference previously produced by this index."""

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @abstractmethod
    def page_count(self) -> int:
        """Pages occupied by the index itself (segment table excluded)."""

    @abstractmethod
    def height(self) -> int:
        """Levels of paged structure a cold search descends."""

    @abstractmethod
    def entry_count(self) -> int:
        """Stored entries; exceeds the segment count for disjoint methods."""

    def bytes_used(self) -> int:
        """Index size as Table 1 counts it: whole pages, segment table excluded."""
        return self.page_count() * self.ctx.page_size

    @abstractmethod
    def check_invariants(self) -> None:
        """Validate structural invariants (test hook); raises AssertionError."""

    # ------------------------------------------------------------------
    # Conveniences shared by implementations
    # ------------------------------------------------------------------
    @property
    def counters(self):
        return self.ctx.counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} segments={len(self.ctx.segments)} "
            f"pages={self.page_count()}>"
        )
