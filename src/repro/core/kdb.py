"""The pure k-d-B-tree variant (Robinson), for the Section 3 contrast.

The paper's hybrid (:class:`~repro.core.rplus.RPlusTree`) is "somewhere
between the k-d-B-tree and the R+-tree": partition rectangles above the
leaves, minimum bounding rectangles for the segments inside them. The
pure k-d-B-tree "leaves the rectangles S alone" -- it stores no MBRs at
all, so a search that reaches a leaf must consider *every* segment in it.

Per the paper: building is at least as fast and storage is the same
(entries are the same 20-byte 2-tuples), but point searches are slightly
slower because a search cannot fail early on dead space, and range /
nearest queries prune less. The ablation benchmark
(``benchmarks/test_ablations.py``) measures exactly that trade-off.

Implementation: a subclass of the hybrid that ignores the stored leaf
MBRs at query time (partition maintenance is shared -- the hybrid's build
path is already the k-d-B one).
"""

from __future__ import annotations

from typing import Any, List

from repro.core.interface import NNItem, query_lower_bound
from repro.core.rplus import RPlusNode, RPlusTree
from repro.geometry import Point, Rect


class KDBTree(RPlusTree):
    name = "kdB"

    def candidate_ids_at_point(self, p: Point) -> List[int]:
        out: List[int] = []
        pool = self.ctx.pool
        counters = self.ctx.counters
        stack: List[Any] = [(self._root_id, self.world)]
        while stack:
            page_id, region = stack.pop()
            node: RPlusNode = pool.get(page_id)
            if node.is_leaf:
                # No leaf MBRs: every resident segment is a candidate.
                counters.bbox_comps += 1
                out.extend(ref for _, ref in node.entries)
            else:
                counters.bbox_comps += len(node.entries)
                stack.extend(
                    (child, r) for r, child in node.entries if r.contains_point(p)
                )
        return out

    def candidate_ids_in_rect(self, rect: Rect) -> List[int]:
        out: List[int] = []
        pool = self.ctx.pool
        counters = self.ctx.counters
        stack: List[Any] = [(self._root_id, self.world)]
        while stack:
            page_id, region = stack.pop()
            node: RPlusNode = pool.get(page_id)
            if node.is_leaf:
                counters.bbox_comps += 1
                out.extend(ref for _, ref in node.entries)
            else:
                counters.bbox_comps += len(node.entries)
                stack.extend(
                    (child, r) for r, child in node.entries if r.intersects(rect)
                )
        return out

    def nn_start(self, p: Point) -> List[NNItem]:
        return [NNItem(0.0, False, (self._root_id, self.world))]

    def nn_expand(self, ref: Any, p: Point) -> List[NNItem]:
        page_id, region = ref
        node: RPlusNode = self.ctx.pool.get(page_id)
        if node.is_leaf:
            # The only available lower bound is the leaf region itself.
            self.ctx.counters.bbox_comps += 1
            d = query_lower_bound(p, region)
            return [NNItem(d, True, seg_id) for _, seg_id in node.entries]
        self.ctx.counters.bbox_comps += len(node.entries)
        return [
            NNItem(query_lower_bound(p, r), False, (child, r))
            for r, child in node.entries
        ]
