"""R-tree node payload (one node per disk page)."""

from __future__ import annotations

from typing import List, Tuple

from repro.geometry import Rect

#: An entry is the paper's 2-tuple (R, O): a rectangle plus a pointer.
#: In leaves O is a segment id; in non-leaves O is a child page id.
Entry = Tuple[Rect, int]


class RTreeNode:
    __slots__ = ("is_leaf", "entries")

    def __init__(self, is_leaf: bool, entries: List[Entry] = None) -> None:
        self.is_leaf = is_leaf
        self.entries: List[Entry] = entries if entries is not None else []

    def mbr(self) -> Rect:
        """The minimum bounding rectangle of this node's entries."""
        return Rect.union_of(r for r, _ in self.entries)

    def __len__(self) -> int:
        return len(self.entries)
