"""Node split policies for the R-tree family.

Each policy takes the ``M + 1`` overflowing entries and the minimum fill
``m`` and returns two non-empty groups, each with at least ``m`` entries.

* :func:`split_linear` and :func:`split_quadratic` are Guttman's originals
  (kept for the split-policy ablation benchmark).
* :func:`split_rstar` is the R*-tree split (Beckmann et al., as described
  in Section 3 of the paper): pick the axis whose candidate distributions
  have the least total perimeter, then the distribution on that axis with
  the least overlap (ties: least total area).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry import Rect

Entry = Tuple[Rect, int]
SplitResult = Tuple[List[Entry], List[Entry]]


def _union(entries: Sequence[Entry]) -> Rect:
    return Rect.union_of(r for r, _ in entries)


def split_linear(entries: Sequence[Entry], m: int) -> SplitResult:
    """Guttman's linear split: seeds by greatest normalized separation,
    remaining entries assigned by least enlargement (group size permitting).
    """
    entries = list(entries)
    if len(entries) < 2 * m:
        raise ValueError(f"cannot split {len(entries)} entries with m={m}")

    world = _union(entries)
    best_sep = -1.0
    seeds = (0, 1)
    for lo_side, hi_side, extent in (
        (min(range(len(entries)), key=lambda i: entries[i][0].xmax),
         max(range(len(entries)), key=lambda i: entries[i][0].xmin),
         max(world.width, 1e-12)),
        (min(range(len(entries)), key=lambda i: entries[i][0].ymax),
         max(range(len(entries)), key=lambda i: entries[i][0].ymin),
         max(world.height, 1e-12)),
    ):
        if lo_side == hi_side:
            continue
        r_lo, r_hi = entries[lo_side][0], entries[hi_side][0]
        sep = (max(r_hi.xmin - r_lo.xmax, r_hi.ymin - r_lo.ymax)) / extent
        if sep > best_sep:
            best_sep = sep
            seeds = (lo_side, hi_side)

    return _distribute(entries, seeds, m)


def split_quadratic(entries: Sequence[Entry], m: int) -> SplitResult:
    """Guttman's quadratic split: seeds maximize dead area, remaining
    entries go where they enlarge the group least (biggest preference
    first).
    """
    entries = list(entries)
    if len(entries) < 2 * m:
        raise ValueError(f"cannot split {len(entries)} entries with m={m}")

    worst = -1.0
    seeds = (0, 1)
    for i in range(len(entries)):
        ri = entries[i][0]
        for j in range(i + 1, len(entries)):
            rj = entries[j][0]
            d = ri.merged(rj).area() - ri.area() - rj.area()
            if d > worst:
                worst = d
                seeds = (i, j)
    return _distribute(entries, seeds, m, quadratic=True)


def _distribute(
    entries: List[Entry], seeds: Tuple[int, int], m: int, quadratic: bool = False
) -> SplitResult:
    i, j = seeds
    group1 = [entries[i]]
    group2 = [entries[j]]
    rect1 = entries[i][0]
    rect2 = entries[j][0]
    remaining = [e for k, e in enumerate(entries) if k not in (i, j)]

    while remaining:
        # If one group must take everything left to reach m, give it all.
        need1 = m - len(group1)
        need2 = m - len(group2)
        if need1 >= len(remaining):
            group1.extend(remaining)
            return group1, group2
        if need2 >= len(remaining):
            group2.extend(remaining)
            return group1, group2

        if quadratic:
            # Pick the entry with the strongest preference.
            best_idx = 0
            best_diff = -1.0
            for k, (r, _) in enumerate(remaining):
                d1 = rect1.merged(r).area() - rect1.area()
                d2 = rect2.merged(r).area() - rect2.area()
                diff = abs(d1 - d2)
                if diff > best_diff:
                    best_diff = diff
                    best_idx = k
            entry = remaining.pop(best_idx)
        else:
            entry = remaining.pop(0)

        r = entry[0]
        d1 = rect1.merged(r).area() - rect1.area()
        d2 = rect2.merged(r).area() - rect2.area()
        if d1 < d2 or (
            d1 == d2
            and (
                rect1.area() < rect2.area()
                or (rect1.area() == rect2.area() and len(group1) <= len(group2))
            )
        ):
            group1.append(entry)
            rect1 = rect1.merged(r)
        else:
            group2.append(entry)
            rect2 = rect2.merged(r)

    return group1, group2


def split_rstar(entries: Sequence[Entry], m: int) -> SplitResult:
    """The R*-tree split.

    For each axis, entries are sorted by lower then by upper rectangle
    edge; every legal distribution (first group gets ``m .. M+1-m``
    entries) contributes the sum of the two group perimeters ("margin").
    The axis with the smaller margin total wins; on that axis the
    distribution with the least overlap between the groups is chosen,
    ties broken by least total area.
    """
    entries = list(entries)
    total = len(entries)
    if total < 2 * m:
        raise ValueError(f"cannot split {total} entries with m={m}")

    best_axis_margin = None
    best_axis_sorts = None
    for axis in (0, 1):
        if axis == 0:
            by_lower = sorted(entries, key=lambda e: (e[0].xmin, e[0].xmax))
            by_upper = sorted(entries, key=lambda e: (e[0].xmax, e[0].xmin))
        else:
            by_lower = sorted(entries, key=lambda e: (e[0].ymin, e[0].ymax))
            by_upper = sorted(entries, key=lambda e: (e[0].ymax, e[0].ymin))

        margin_sum = 0.0
        for ordering in (by_lower, by_upper):
            prefixes = _running_unions(ordering)
            suffixes = _running_unions(ordering[::-1])[::-1]
            for k in range(m, total - m + 1):
                margin_sum += prefixes[k - 1].perimeter() + suffixes[k].perimeter()

        if best_axis_margin is None or margin_sum < best_axis_margin:
            best_axis_margin = margin_sum
            best_axis_sorts = (by_lower, by_upper)

    best = None
    best_key = None
    for ordering in best_axis_sorts:
        prefixes = _running_unions(ordering)
        suffixes = _running_unions(ordering[::-1])[::-1]
        for k in range(m, total - m + 1):
            r1 = prefixes[k - 1]
            r2 = suffixes[k]
            key = (r1.overlap_area(r2), r1.area() + r2.area())
            if best_key is None or key < best_key:
                best_key = key
                best = (list(ordering[:k]), list(ordering[k:]))

    return best


def _running_unions(ordering: Sequence[Entry]) -> List[Rect]:
    """``out[i]`` is the union of ``ordering[: i + 1]``'s rectangles."""
    out: List[Rect] = []
    acc = None
    for r, _ in ordering:
        acc = r if acc is None else acc.merged(r)
        out.append(acc)
    return out
