"""The R-tree family: Guttman's original R-tree and the R*-tree.

Nodes are one page each; an entry is the paper's 20-byte 2-tuple ``(R, O)``
(4 coordinates + 1 pointer), so a 1 KiB page holds at most 50 entries and
``m`` defaults to 40 % of ``M`` as the R*-tree authors recommend.
"""

from repro.core.rtree.bulk import bulk_load_str
from repro.core.rtree.node import RTreeNode
from repro.core.rtree.rstar import RStarTree
from repro.core.rtree.rtree import GuttmanRTree
from repro.core.rtree.splits import split_linear, split_quadratic, split_rstar

__all__ = [
    "GuttmanRTree",
    "RStarTree",
    "RTreeNode",
    "bulk_load_str",
    "split_linear",
    "split_quadratic",
    "split_rstar",
]
