"""The R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990).

Three departures from Guttman's R-tree, all exercised by the paper:

* **Choose subtree** at the level above the leaves picks the entry whose
  enlargement *increases overlap with its brothers* the least (Section 3
  of Hoel & Samet); higher levels use least area enlargement.
* **Split** picks the axis by least total perimeter over all candidate
  distributions, then the distribution with least overlap
  (:func:`~repro.core.rtree.splits.split_rstar`).
* **Forced reinsertion**: the first time a node overflows at each level
  during one insertion, the 30 % of its entries farthest from the node
  centre are removed and reinserted instead of splitting. This is the
  "computationally expensive node overflow technique" the paper blames
  for the R*-tree's 7.8-9.1x higher build times.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.rtree.node import Entry, RTreeNode
from repro.core.rtree.rtree import GuttmanRTree
from repro.core.rtree.splits import split_rstar
from repro.geometry import Rect
from repro.storage.context import StorageContext


class RStarTree(GuttmanRTree):
    name = "R*"

    #: Fraction of entries force-reinserted on first overflow (paper: 30 %).
    REINSERT_FRACTION = 0.3
    #: For large fanouts the R*-tree authors evaluate the overlap criterion
    #: only on the entries with least area enlargement.
    CHOOSE_SUBTREE_CANDIDATES = 32

    def __init__(
        self,
        ctx: StorageContext,
        min_fill: float = 0.4,
        capacity: Optional[int] = None,
    ) -> None:
        super().__init__(ctx, split=split_rstar, min_fill=min_fill, capacity=capacity)

    # ------------------------------------------------------------------
    # Choose subtree
    # ------------------------------------------------------------------
    def _choose_subtree(self, node: RTreeNode, rect: Rect, level: int) -> int:
        self.ctx.counters.bbox_comps += len(node.entries)
        if level != 1:
            # Children are not leaves: least area enlargement, ties by area.
            best, best_key = 0, None
            for idx, (r, _) in enumerate(node.entries):
                key = (r.enlargement(rect), r.area())
                if best_key is None or key < best_key:
                    best_key = key
                    best = idx
            return best

        # Children are leaves: least increase of overlap with the brothers,
        # ties by least enlargement, then least area.
        entries = node.entries

        # Lossless shortcut: a rectangle that already contains the new one
        # has zero enlargement and therefore zero overlap increase, which
        # no other entry can beat (the increase is never negative), and
        # the (overlap, enlargement, area) tie-break reduces to least
        # area among the containing entries.
        best, best_area = -1, None
        for idx, (r, _) in enumerate(entries):
            if r.contains_rect(rect):
                area = r.area()
                if best_area is None or area < best_area:
                    best_area = area
                    best = idx
        if best >= 0:
            return best

        ranked = sorted(
            range(len(entries)),
            key=lambda i: (entries[i][0].enlargement(rect), entries[i][0].area()),
        )
        candidates = ranked[: self.CHOOSE_SUBTREE_CANDIDATES]

        best, best_key = candidates[0], None
        qxmin, qymin, qxmax, qymax = rect
        for i in candidates:
            r_i = entries[i][0]
            ixmin, iymin, ixmax, iymax = r_i
            mxmin = ixmin if ixmin <= qxmin else qxmin
            mymin = iymin if iymin <= qymin else qymin
            mxmax = ixmax if ixmax >= qxmax else qxmax
            mymax = iymax if iymax >= qymax else qymax
            overlap_delta = 0.0
            for j, (r_j, _) in enumerate(entries):
                if j == i:
                    continue
                jxmin, jymin, jxmax, jymax = r_j
                # overlap(merged, r_j) - overlap(r_i, r_j), inlined: this
                # pair of computations runs ~M times per leaf-level choose.
                w = (mxmax if mxmax <= jxmax else jxmax) - (
                    mxmin if mxmin >= jxmin else jxmin
                )
                if w > 0:
                    h = (mymax if mymax <= jymax else jymax) - (
                        mymin if mymin >= jymin else jymin
                    )
                    if h > 0:
                        overlap_delta += w * h
                w = (ixmax if ixmax <= jxmax else jxmax) - (
                    ixmin if ixmin >= jxmin else jxmin
                )
                if w > 0:
                    h = (iymax if iymax <= jymax else jymax) - (
                        iymin if iymin >= jymin else jymin
                    )
                    if h > 0:
                        overlap_delta -= w * h
            self.ctx.counters.bbox_comps += len(entries) - 1
            key = (
                overlap_delta,
                (mxmax - mxmin) * (mymax - mymin) - (ixmax - ixmin) * (iymax - iymin),
                (ixmax - ixmin) * (iymax - iymin),
            )
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best

    # ------------------------------------------------------------------
    # Forced reinsertion
    # ------------------------------------------------------------------
    def _handle_overflow(
        self,
        page_id: int,
        node: RTreeNode,
        level: int,
        has_parent: bool,
        overflow_levels: Set[int],
    ) -> Optional[List[Entry]]:
        if not has_parent or level in overflow_levels:
            return None  # split instead
        overflow_levels.add(level)

        center = node.mbr().center()
        p = max(1, int(round(self.REINSERT_FRACTION * len(node.entries))))

        def dist2(entry: Entry) -> float:
            c = entry[0].center()
            dx = c.x - center.x
            dy = c.y - center.y
            return dx * dx + dy * dy

        by_distance = sorted(node.entries, key=dist2)
        node.entries = by_distance[:-p]
        self.ctx.pool.mark_dirty(page_id)
        # "Close reinsert": put back the nearer evicted entries first.
        return by_distance[-p:]
