"""Sort-Tile-Recursive (STR) bulk loading for the R-tree family.

The paper builds every structure dynamically, one segment at a time, and
pays for it (Table 1: the R*-tree's build is ~8x the R+-tree's). STR
packing (Leutenegger, Lopez & Edgington) is the standard production
alternative: sort the rectangles by x-centre, cut into vertical slices of
~sqrt(n/B) runs, sort each slice by y-centre, pack runs of B into leaves,
and repeat one level up until a single root remains. One pass, nearly
full pages, no splits, no reinsertion.

The ablation benchmark compares an STR-packed tree against the
dynamically built R*-tree on build cost and query behaviour.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.core.rtree.node import RTreeNode
from repro.core.rtree.rtree import GuttmanRTree
from repro.geometry import Rect


def _pack_level(
    tree: GuttmanRTree, entries: List[Tuple[Rect, int]], is_leaf: bool, capacity: int
) -> List[Tuple[Rect, int]]:
    """Pack one level of entries into nodes; return the parent entries."""
    n = len(entries)
    node_count = math.ceil(n / capacity)
    slice_count = max(1, math.ceil(math.sqrt(node_count)))
    per_slice = slice_count * capacity

    entries = sorted(entries, key=lambda e: e[0].xmin + e[0].xmax)
    groups: List[List[Tuple[Rect, int]]] = []
    for s in range(0, n, per_slice):
        chunk = sorted(
            entries[s : s + per_slice], key=lambda e: e[0].ymin + e[0].ymax
        )
        for r in range(0, len(chunk), capacity):
            groups.append(chunk[r : r + capacity])

    # Slice tails can fall under the minimum fill; fold each underfull
    # group into its predecessor, re-splitting evenly if that overflows
    # (both halves then sit at >= capacity/2 >= m).
    fixed: List[List[Tuple[Rect, int]]] = []
    for group in groups:
        if len(group) < tree.min_entries and fixed:
            merged = fixed.pop() + group
            if len(merged) <= tree.capacity:
                fixed.append(merged)
            else:
                half = len(merged) // 2
                fixed.append(merged[:half])
                fixed.append(merged[half:])
        else:
            fixed.append(group)

    parents: List[Tuple[Rect, int]] = []
    for group in fixed:
        node = RTreeNode(is_leaf, group)
        page_id = tree.ctx.pool.create(node)
        tree._page_ids.add(page_id)
        parents.append((node.mbr(), page_id))
    return parents


def bulk_load_str(
    tree: GuttmanRTree, seg_ids: Iterable[int], fill: float = 1.0
) -> None:
    """STR-pack ``seg_ids`` into an empty R-tree.

    ``fill`` caps the packing density (1.0 = completely full pages;
    production systems often leave headroom, e.g. 0.7, so that later
    dynamic insertions do not immediately split every node).

    Raises ``ValueError`` on a non-empty tree or out-of-range ``fill``.
    """
    if tree.entry_count() != 0:
        raise ValueError("bulk_load_str requires an empty tree")
    if not 0.1 <= fill <= 1.0:
        raise ValueError(f"fill must be in [0.1, 1.0], got {fill}")
    capacity = max(tree.min_entries, int(tree.capacity * fill))

    entries: List[Tuple[Rect, int]] = []
    for seg_id in seg_ids:
        seg = tree.ctx.segments.fetch(seg_id)
        entries.append((seg.mbr(), seg_id))
    if not entries:
        return

    count = len(entries)
    level_entries = entries
    is_leaf = True
    height = 0
    while True:
        height += 1
        if len(level_entries) <= tree.capacity and not is_leaf:
            # These entries fit a single root node.
            root = RTreeNode(False, level_entries)
            root_id = tree.ctx.pool.create(root)
            tree._page_ids.add(root_id)
            break
        if len(level_entries) <= tree.capacity and is_leaf:
            root = RTreeNode(True, level_entries)
            root_id = tree.ctx.pool.create(root)
            tree._page_ids.add(root_id)
            break
        level_entries = _pack_level(tree, level_entries, is_leaf, capacity)
        is_leaf = False

    # Swap the freshly packed tree in for the empty root.
    old_root = tree._root_id
    tree._page_ids.discard(old_root)
    tree.ctx.pool.drop(old_root)
    tree.ctx.disk.free(old_root)
    tree._root_id = root_id
    tree._height = height
    tree._count = count
