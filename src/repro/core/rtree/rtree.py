"""Guttman's R-tree, the base of the R-tree family.

One node per page; entries are (rectangle, pointer) 2-tuples. The class is
written so the R*-tree only has to override subtree choice and overflow
treatment.

Metric accounting: every entry rectangle examined during a descent, search,
or nearest-neighbour expansion charges one *bounding box computation*
(``ctx.counters.bbox_comps``); page traffic flows through the buffer pool,
which charges *disk accesses*.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from repro.core.interface import NNItem, SpatialIndex, query_lower_bound
from repro.core.profiled import profiled_nn_expand, profiled_tree_search
from repro.core.rtree.node import Entry, RTreeNode
from repro.core.rtree.splits import split_quadratic
from repro.obs.trace import TRACER
from repro.geometry import Point, Rect
from repro.storage.context import StorageContext
from repro.storage.layout import (
    RTREE_PAGE_HEADER_BYTES,
    RTREE_TUPLE_BYTES,
    entries_per_page,
)

SplitFn = Callable[[Sequence[Entry], int], Tuple[List[Entry], List[Entry]]]


class GuttmanRTree(SpatialIndex):
    """The original R-tree (quadratic split by default)."""

    name = "R"

    def __init__(
        self,
        ctx: StorageContext,
        split: SplitFn = split_quadratic,
        min_fill: float = 0.4,
        capacity: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        self.capacity = (
            capacity
            if capacity is not None
            else entries_per_page(
                ctx.page_size, RTREE_TUPLE_BYTES, RTREE_PAGE_HEADER_BYTES
            )
        )
        if self.capacity < 4:
            raise ValueError(f"page too small: node capacity {self.capacity} < 4")
        self.min_entries = max(2, int(self.capacity * min_fill))
        if 2 * self.min_entries > self.capacity + 1:
            raise ValueError(
                f"min_fill {min_fill} too large for capacity {self.capacity}"
            )
        self._split_fn = split
        self._root_id = ctx.pool.create(RTreeNode(is_leaf=True))
        self._height = 1
        self._page_ids: Set[int] = {self._root_id}
        self._count = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, seg_id: int) -> None:
        seg = self.ctx.segments.fetch(seg_id)
        self._insert_entry(seg.mbr(), seg_id, target_level=0, overflow_levels=set())
        self._count += 1

    def delete(self, seg_id: int) -> None:
        seg = self.ctx.segments.fetch(seg_id)
        rect = seg.mbr()
        path = self._find_leaf(rect, seg_id)
        if path is None:
            raise KeyError(f"segment {seg_id} not in the tree")
        leaf_id, leaf = path[-1]
        leaf.entries = [e for e in leaf.entries if e != (rect, seg_id)]
        self.ctx.pool.mark_dirty(leaf_id)
        self._count -= 1
        self._condense(path)

    # ------------------------------------------------------------------
    # Searches
    # ------------------------------------------------------------------
    def candidate_ids_at_point(self, p: Point) -> List[int]:
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            return profiled_tree_search(
                prof,
                self.ctx.pool,
                self.ctx.counters,
                self._root_id,
                lambda r: r.contains_point(p),
            )
        out: List[int] = []
        pool = self.ctx.pool
        counters = self.ctx.counters
        stack = [self._root_id]
        while stack:
            node: RTreeNode = pool.get(stack.pop())
            counters.bbox_comps += len(node.entries)
            if node.is_leaf:
                out.extend(ref for r, ref in node.entries if r.contains_point(p))
            else:
                stack.extend(ref for r, ref in node.entries if r.contains_point(p))
        return out

    def candidate_ids_in_rect(self, rect: Rect) -> List[int]:
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            return profiled_tree_search(
                prof,
                self.ctx.pool,
                self.ctx.counters,
                self._root_id,
                lambda r: r.intersects(rect),
            )
        out: List[int] = []
        pool = self.ctx.pool
        counters = self.ctx.counters
        stack = [self._root_id]
        while stack:
            node: RTreeNode = pool.get(stack.pop())
            counters.bbox_comps += len(node.entries)
            if node.is_leaf:
                out.extend(ref for r, ref in node.entries if r.intersects(rect))
            else:
                stack.extend(ref for r, ref in node.entries if r.intersects(rect))
        return out

    def nn_start(self, p: Point) -> List[NNItem]:
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            prof.set_node_level(self._root_id, 0)
        return [NNItem(0.0, False, self._root_id)]

    def nn_expand(self, ref: Any, p: Point) -> List[NNItem]:
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            return profiled_nn_expand(
                prof,
                self.ctx.pool,
                self.ctx.counters,
                ref,
                p,
                lambda node: node.mbr(),
            )
        node: RTreeNode = self.ctx.pool.get(ref)
        self.ctx.counters.bbox_comps += len(node.entries)
        if node.is_leaf:
            # As in the paper's implementations, examining a leaf examines
            # its segments: candidates inherit the leaf's own lower bound,
            # so every entry of a leaf nearer than the answer is fetched
            # and compared (per-entry MBR distances would prune further,
            # but would not reproduce the measured segment comparisons).
            if not node.entries:
                return []
            d = query_lower_bound(p, node.mbr())
            return [NNItem(d, True, child) for _, child in node.entries]
        return [
            NNItem(query_lower_bound(p, r), False, child)
            for r, child in node.entries
        ]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def page_count(self) -> int:
        return len(self._page_ids)

    def height(self) -> int:
        return self._height

    def entry_count(self) -> int:
        return self._count

    def leaf_occupancy(self) -> float:
        """Average number of entries per leaf page (Concluding Remarks)."""
        leaves = entries = 0
        stack = [self._root_id]
        pool = self.ctx.pool
        while stack:
            node = pool.get(stack.pop())
            if node.is_leaf:
                leaves += 1
                entries += len(node.entries)
            else:
                stack.extend(ref for _, ref in node.entries)
        return entries / leaves if leaves else 0.0

    # ------------------------------------------------------------------
    # Insertion machinery
    # ------------------------------------------------------------------
    def _choose_subtree(self, node: RTreeNode, rect: Rect, level: int) -> int:
        """Guttman: least enlargement, ties by least area."""
        self.ctx.counters.bbox_comps += len(node.entries)
        best = 0
        best_key = None
        for idx, (r, _) in enumerate(node.entries):
            key = (r.enlargement(rect), r.area())
            if best_key is None or key < best_key:
                best_key = key
                best = idx
        return best

    def _insert_entry(
        self, rect: Rect, ref: int, target_level: int, overflow_levels: Set[int]
    ) -> None:
        pool = self.ctx.pool
        path: List[Tuple[int, RTreeNode, int]] = []
        page_id = self._root_id
        node: RTreeNode = pool.get(page_id)
        level = self._height - 1
        while level > target_level:
            idx = self._choose_subtree(node, rect, level)
            path.append((page_id, node, idx))
            page_id = node.entries[idx][1]
            node = pool.get(page_id)
            level -= 1

        node.entries.append((rect, ref))
        pool.mark_dirty(page_id)
        self._adjust_upward(path, page_id, node, target_level, overflow_levels)

    def _adjust_upward(
        self,
        path: List[Tuple[int, RTreeNode, int]],
        page_id: int,
        node: RTreeNode,
        level: int,
        overflow_levels: Set[int],
    ) -> None:
        pool = self.ctx.pool
        pending: List[Tuple[int, List[Entry]]] = []
        new_entry: Optional[Entry] = None  # sibling produced by a split below

        while True:
            if new_entry is not None:
                node.entries.append(new_entry)
                pool.mark_dirty(page_id)
                new_entry = None

            if len(node.entries) > self.capacity:
                removed = self._handle_overflow(
                    page_id, node, level, bool(path), overflow_levels
                )
                if removed is not None:
                    pending.append((level, removed))
                else:
                    new_entry = self._split_node(page_id, node)

            if not path:
                if new_entry is not None:
                    self._grow_root(page_id, node, new_entry)
                break

            parent_id, parent, idx = path.pop()
            child_ref = parent.entries[idx][1]
            assert child_ref == page_id
            parent.entries[idx] = (node.mbr(), page_id)
            pool.mark_dirty(parent_id)
            page_id, node = parent_id, parent
            level += 1

        for reinsert_level, entries in pending:
            for r, ref in entries:
                self._insert_entry(r, ref, reinsert_level, overflow_levels)

    def _handle_overflow(
        self,
        page_id: int,
        node: RTreeNode,
        level: int,
        has_parent: bool,
        overflow_levels: Set[int],
    ) -> Optional[List[Entry]]:
        """Hook for overflow treatment.

        Return a list of entries to reinsert (they must already be removed
        from the node), or ``None`` to request a split. The base R-tree
        always splits.
        """
        return None

    def _split_node(self, page_id: int, node: RTreeNode) -> Entry:
        group1, group2 = self._split_fn(node.entries, self.min_entries)
        node.entries = group1
        sibling = RTreeNode(node.is_leaf, group2)
        sibling_id = self.ctx.pool.create(sibling)
        self._page_ids.add(sibling_id)
        self.ctx.pool.mark_dirty(page_id)
        return (sibling.mbr(), sibling_id)

    def _grow_root(self, old_root_id: int, old_root: RTreeNode, new_entry: Entry) -> None:
        root = RTreeNode(
            is_leaf=False,
            entries=[(old_root.mbr(), old_root_id), new_entry],
        )
        self._root_id = self.ctx.pool.create(root)
        self._page_ids.add(self._root_id)
        self._height += 1

    # ------------------------------------------------------------------
    # Deletion machinery
    # ------------------------------------------------------------------
    def _find_leaf(
        self, rect: Rect, seg_id: int
    ) -> Optional[List[Tuple[int, RTreeNode]]]:
        """DFS for the leaf holding (rect, seg_id); returns the root-to-leaf path."""
        pool = self.ctx.pool
        counters = self.ctx.counters

        def descend(page_id: int, path: List[Tuple[int, RTreeNode]]):
            node: RTreeNode = pool.get(page_id)
            counters.bbox_comps += len(node.entries)
            path.append((page_id, node))
            if node.is_leaf:
                if (rect, seg_id) in node.entries:
                    return path
            else:
                for r, child in node.entries:
                    if r.contains_rect(rect):
                        found = descend(child, path)
                        if found is not None:
                            return found
            path.pop()
            return None

        return descend(self._root_id, [])

    def _condense(self, path: List[Tuple[int, RTreeNode]]) -> None:
        pool = self.ctx.pool
        orphans: List[Tuple[int, List[Entry]]] = []  # (level, entries)

        level = 0
        for depth in range(len(path) - 1, 0, -1):
            page_id, node = path[depth]
            parent_id, parent = path[depth - 1]
            if len(node.entries) < self.min_entries:
                parent.entries = [e for e in parent.entries if e[1] != page_id]
                pool.mark_dirty(parent_id)
                orphans.append((level, list(node.entries)))
                self._page_ids.discard(page_id)
                pool.drop(page_id)
                self.ctx.disk.free(page_id)
            else:
                for idx, (r, ref) in enumerate(parent.entries):
                    if ref == page_id:
                        parent.entries[idx] = (node.mbr(), page_id)
                        break
                pool.mark_dirty(parent_id)
            level += 1

        # Shrink the root while it is an internal node with a single child.
        root = pool.get(self._root_id)
        while not root.is_leaf and len(root.entries) == 1:
            old_root_id = self._root_id
            self._root_id = root.entries[0][1]
            self._page_ids.discard(old_root_id)
            pool.drop(old_root_id)
            self.ctx.disk.free(old_root_id)
            self._height -= 1
            root = pool.get(self._root_id)

        for orphan_level, entries in orphans:
            for r, ref in entries:
                # An orphaned node's level may now exceed the shrunken tree;
                # clamp to re-rooting at the leaves in that (rare) case.
                target = min(orphan_level, self._height - 1)
                self._insert_entry(r, ref, target, overflow_levels=set())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        pool = self.ctx.pool
        seen_pages: Set[int] = set()
        leaf_refs: List[int] = []

        def walk(page_id: int, depth: int, parent_rect: Optional[Rect]) -> None:
            assert page_id in self._page_ids, f"page {page_id} untracked"
            assert page_id not in seen_pages, f"page {page_id} shared"
            seen_pages.add(page_id)
            node: RTreeNode = pool.get(page_id)
            assert len(node.entries) <= self.capacity, "overfull node"
            if page_id != self._root_id:
                assert len(node.entries) >= self.min_entries, "underfull node"
            elif not node.is_leaf:
                assert len(node.entries) >= 2, "internal root with < 2 entries"
            if node.entries and parent_rect is not None:
                assert parent_rect == node.mbr(), "parent MBR not tight"
            if node.is_leaf:
                assert depth == self._height, "leaf at wrong depth"
                leaf_refs.extend(ref for _, ref in node.entries)
            else:
                for r, child in node.entries:
                    walk(child, depth + 1, r)

        walk(self._root_id, 1, None)
        assert seen_pages == self._page_ids, "page bookkeeping mismatch"
        assert len(leaf_refs) == self._count, "entry count mismatch"
