"""The vectorized traversal backend: struct-of-arrays node mirrors.

:class:`VectorBackend` executes the same searches as the scalar
reference path but tests a whole node's entries in one numpy comparison
instead of a per-entry Python loop. The design follows the SIMD-ified
R-tree traversal literature: each visited node's ``(rect, ref)`` entry
list is mirrored once into a struct-of-arrays block (four coordinate
arrays plus a ref array), and the window/point predicate becomes a
boolean mask over those arrays.

The parity contract (see :class:`~repro.core.interface.TraversalBackend`)
is strict: counters must match the scalar path **to the unit**. That
shapes everything here:

* Single-query traversal keeps the exact scalar LIFO descent -- one
  ``pool.get`` per node, ``bbox_comps += len(node.entries)`` per visit,
  matched children pushed in entry order -- so disk reads, buffer hits
  and comparison counts are bit-identical; only the per-entry predicate
  is replaced by a mask.
* Verification fetches each unique candidate through
  ``ctx.segments.fetch`` in the same order as the scalar verify loop
  (identical ``segment_comps``), then applies the geometry predicate in
  one array pass that replicates the scalar float semantics exactly
  (Cohen-Sutherland outcodes and the four-corner cross test).
* Batched descent (:meth:`VectorBackend.run_batch`) is query-major at
  the counter level but node-major at the page level: a frontier maps
  each page to the queries still alive there, every page is fetched
  once per batch, and per-query results are reconstructed in scalar DFS
  order afterwards. Per-query ``bbox_comps``/``segment_comps`` and
  result lists stay exact; total disk accesses can only shrink.

Mirrors are derived state. Blocks carry an ``(id(entries), len)``
freshness key that catches list replacement, but in-place entry updates
(e.g. a parent MBR adjustment) do not change either -- so every index
mutation must be followed by :meth:`VectorBackend.invalidate`, which the
query engine does from all of its write paths.

The module imports without numpy (``HAVE_NUMPY`` is then false);
:func:`repro.core.backends.resolve_backend` degrades to the scalar
backend in that case and reports the fallback through ``describe()``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised by the numpy-absent CI leg
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

from repro.core.interface import SpatialIndex, TraversalBackend
from repro.core.pmr.pmr import PMRQuadtree
from repro.core.queries.nearest import scalar_nearest_k
from repro.core.queries.point import (
    other_endpoint_via,
    scalar_incident_segments,
    verify_incident_profiled,
)
from repro.core.queries.polygon import walk_enclosing_polygon
from repro.core.queries.spec import QuerySpec
from repro.core.queries.window import (
    scalar_window_query,
    verify_window_profiled,
)
from repro.core.rplus.rplus import RPlusTree
from repro.core.rtree.rtree import GuttmanRTree
from repro.geometry import Point, Rect
from repro.obs.trace import TRACER


# ----------------------------------------------------------------------
# Vectorized geometry predicates (exact twins of repro.geometry)
# ----------------------------------------------------------------------
def _outcodes(x, y, rect: Rect):
    """Cohen-Sutherland outcodes for coordinate arrays.

    The scalar ``_outcode`` uses ``elif`` between left/right (and
    bottom/top), but a point cannot be on both sides of a non-empty
    rectangle, so independent masks produce the same codes.
    """
    return (
        (x < rect.xmin) * 1
        + (x > rect.xmax) * 2
        + (y < rect.ymin) * 4
        + (y > rect.ymax) * 8
    )


def _segments_meet_bounds(arr, bxmin, bymin, bxmax, bymax):
    """Array twin of :func:`repro.geometry.clipping.segment_intersects_rect`.

    ``arr`` is ``(n, 4)`` float64 rows of ``(x1, y1, x2, y2)``; the
    bounds are scalars (one window for every row) or length-``n`` arrays
    (each row against its own window -- the batched verify). The
    arithmetic is the same IEEE-double expression as the scalar corner
    test, so the accept/reject decisions are bit-identical.
    """
    x1, y1, x2, y2 = arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]
    code1 = (
        (x1 < bxmin) * 1
        + (x1 > bxmax) * 2
        + (y1 < bymin) * 4
        + (y1 > bymax) * 8
    )
    code2 = (
        (x2 < bxmin) * 1
        + (x2 > bxmax) * 2
        + (y2 < bymin) * 4
        + (y2 > bymax) * 8
    )
    hit = (code1 == 0) | (code2 == 0)
    disjoint = (code1 & code2) != 0
    undecided = ~hit & ~disjoint
    if undecided.any():
        dx = x2 - x1
        dy = y2 - y1
        pos = np.zeros(x1.shape, dtype=bool)
        neg = np.zeros(x1.shape, dtype=bool)
        zero = np.zeros(x1.shape, dtype=bool)
        for cx, cy in (
            (bxmin, bymin),
            (bxmin, bymax),
            (bxmax, bymin),
            (bxmax, bymax),
        ):
            cross = dx * (cy - y1) - dy * (cx - x1)
            pos |= cross > 0
            neg |= cross < 0
            zero |= cross == 0
        # The scalar loop returns True on a zero cross or the first sign
        # flip; over all four corners that is exactly this expression.
        hit = hit | (undecided & (zero | (pos & neg)))
    return hit


def _segments_meet_rect(arr, rect: Rect):
    return _segments_meet_bounds(
        arr, rect.xmin, rect.ymin, rect.xmax, rect.ymax
    )


def _segments_in_bounds(arr, bxmin, bymin, bxmax, bymax):
    """Both endpoints inside the closed bounds (``mode="contains"``)."""
    return (
        (bxmin <= arr[:, 0])
        & (arr[:, 0] <= bxmax)
        & (bymin <= arr[:, 1])
        & (arr[:, 1] <= bymax)
        & (bxmin <= arr[:, 2])
        & (arr[:, 2] <= bxmax)
        & (bymin <= arr[:, 3])
        & (arr[:, 3] <= bymax)
    )


def _segments_in_rect(arr, rect: Rect):
    return _segments_in_bounds(
        arr, rect.xmin, rect.ymin, rect.xmax, rect.ymax
    )


def _segments_have_endpoint(arr, p: Point):
    """Array twin of ``Segment.has_endpoint`` (exact float equality)."""
    return ((arr[:, 0] == p.x) & (arr[:, 1] == p.y)) | (
        (arr[:, 2] == p.x) & (arr[:, 3] == p.y)
    )


def _unique_first_seen(candidates):
    """Candidate ids deduplicated in first-seen order, as an int array.

    This is the order the scalar verify loop fetches in; R/R* feeds
    already-unique lists (one leaf per segment) and skips the
    ``np.unique`` pass entirely.
    """
    arr = np.asarray(candidates, dtype=np.int64)
    if arr.size <= 1:
        return arr
    _, first = np.unique(arr, return_index=True)
    if first.size == arr.size:
        return arr
    first.sort()
    return arr[first]


# ----------------------------------------------------------------------
# Struct-of-arrays node mirrors
# ----------------------------------------------------------------------
class _NodeBlock:
    """One R/R*/R+ node's entries, columnar."""

    __slots__ = ("key", "xmin", "ymin", "xmax", "ymax", "refs")

    def __init__(self, entries) -> None:
        self.key = (id(entries), len(entries))
        if entries:
            rects = np.array([e[0] for e in entries], dtype=np.float64)
            self.xmin = rects[:, 0]
            self.ymin = rects[:, 1]
            self.xmax = rects[:, 2]
            self.ymax = rects[:, 3]
            self.refs = np.array([e[1] for e in entries], dtype=np.int64)
        else:
            empty = np.empty(0, dtype=np.float64)
            self.xmin = self.ymin = self.xmax = self.ymax = empty
            self.refs = np.empty(0, dtype=np.int64)

    def window_mask(self, rect: Rect):
        return (
            (self.xmin <= rect.xmax)
            & (rect.xmin <= self.xmax)
            & (self.ymin <= rect.ymax)
            & (rect.ymin <= self.ymax)
        )

    def point_mask(self, p: Point):
        return (
            (self.xmin <= p.x)
            & (p.x <= self.xmax)
            & (self.ymin <= p.y)
            & (p.y <= self.ymax)
        )


class _TreeMirror:
    """Page-id keyed cache of :class:`_NodeBlock` for one tree index."""

    __slots__ = ("blocks",)

    def __init__(self) -> None:
        self.blocks: Dict[int, _NodeBlock] = {}

    def block(self, page_id: int, node) -> _NodeBlock:
        entries = node.entries
        blk = self.blocks.get(page_id)
        if blk is not None and blk.key == (id(entries), len(entries)):
            return blk
        blk = _NodeBlock(entries)
        self.blocks[page_id] = blk
        return blk


class _BTreeMirror:
    """The PMR B-tree's separators and leaf chain, columnar.

    Lets a window's interval scans run as ``searchsorted`` slices over
    one global key array while still charging the *exact* ``pool.get``
    sequence of the scalar scan: the internal separators are kept so the
    descent can be replayed page by page (a descent routed by a stale
    separator may land one leaf early, and that extra leaf fetch must be
    charged), and the leaf chain's page ids and entry offsets give the
    chain-walk pages, including the trailing leaf fetched just to see
    the first out-of-range key.

    Built through ``disk.peek`` (node payloads are shared objects, so
    resident dirty pages are seen), so construction charges nothing.
    """

    __slots__ = ("internal", "leaf_pages", "leaf_pos", "leaf_ends",
                 "keys", "seg_ids", "bboxes")

    def __init__(self, index: "PMRQuadtree") -> None:
        btree = index.btree
        peek = btree.pool.disk.peek
        self.internal: Dict[int, Tuple[list, list]] = {}
        stack = [btree._root_id]
        while stack:
            pid = stack.pop()
            node = peek(pid)
            if node.is_leaf:
                continue
            self.internal[pid] = (node.keys, node.children)
            stack.extend(node.children)

        pid = btree._root_id
        node = peek(pid)
        while not node.is_leaf:
            pid = node.children[0]
            node = peek(pid)
        leaf_pages: List[int] = []
        ends: List[int] = []
        keys: List[int] = []
        values: List[Any] = []
        while True:
            leaf_pages.append(pid)
            for k, v in node.entries:
                keys.append(k)
                values.append(v)
            ends.append(len(keys))
            if node.next_page is None:
                break
            pid = node.next_page
            node = peek(pid)
        self.leaf_pages = leaf_pages
        self.leaf_pos = {p: i for i, p in enumerate(leaf_pages)}
        self.leaf_ends = ends
        self.keys = np.array(keys, dtype=np.int64)
        if index.store_bboxes:
            self.seg_ids = np.array([v[0] for v in values], dtype=np.int64)
            if values:
                self.bboxes = np.array(
                    [v[1] for v in values], dtype=np.float64
                )
            else:
                self.bboxes = np.empty((0, 4), dtype=np.float64)
        else:
            self.seg_ids = np.array(values, dtype=np.int64)
            self.bboxes = None


class _PMRMirror:
    """All leaf buckets of a PMR directory, columnar.

    One directory walk captures every leaf's rectangle plus its
    locational-code interval; a window query then reduces to a single
    mask over the rectangle arrays. Valid because a quadtree child's
    rectangle is contained in its parent's: a leaf intersects the window
    iff every ancestor does, so masking leaves directly selects exactly
    the leaves the scalar recursive walk reaches.

    ``bt`` mirrors the B-tree itself (:class:`_BTreeMirror`) unless the
    locational codes could overflow int64, in which case interval scans
    fall back to :func:`_scan_range_entries`.
    """

    __slots__ = ("xmin", "ymin", "xmax", "ymax", "lo", "hi", "lo_arr",
                 "hi_arr", "entry_count", "bt")

    def __init__(self, index: "PMRQuadtree") -> None:
        self.entry_count = len(index.btree)
        self.bt = _BTreeMirror(index) if 2 * index.max_depth <= 62 else None
        los: List[int] = []
        his: List[int] = []
        rects: List[Rect] = []
        stack = [index.root]
        while stack:
            block = stack.pop()
            if block.children is not None:
                stack.extend(block.children)
                continue
            lo = index._code(block)
            los.append(lo)
            his.append(lo + (1 << (2 * (index.max_depth - block.depth))) - 1)
            rects.append(index._rect(block))
        # Codes stay Python ints (arbitrary precision); the int64 twins
        # exist only when the B-tree mirror proved they fit.
        self.lo = los
        self.hi = his
        if self.bt is not None:
            self.lo_arr = np.array(los, dtype=np.int64)
            self.hi_arr = np.array(his, dtype=np.int64)
        else:
            self.lo_arr = self.hi_arr = None
        arr = np.array(rects, dtype=np.float64)
        self.xmin = arr[:, 0]
        self.ymin = arr[:, 1]
        self.xmax = arr[:, 2]
        self.ymax = arr[:, 3]


class _MaxKey:
    """Sorts after every B-tree value (sentinel for bisecting on keys)."""

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True


_MAX = _MaxKey()


def _scan_range_entries(btree, lo_key, hi_key) -> List[Tuple[Any, Any]]:
    """Materialized twin of ``BTree.scan_range`` with bisected leaves.

    Performs the identical ``pool.get`` sequence as the generator --
    the same root-to-leaf descent, the same leaf-chain walk, stopping
    on the first in-leaf entry whose key exceeds ``hi_key`` and only
    fetching the next leaf when a leaf was exhausted without one --
    but slices each leaf with bisect instead of yielding entry by
    entry, which is what makes large window scans cheap.
    """
    pool = btree.pool
    node = pool.get(btree._root_id)
    probe = (lo_key,)
    while not node.is_leaf:
        node = pool.get(node.children[bisect_right(node.keys, probe)])
    start = bisect_left(node.entries, probe)
    hi_probe = (hi_key, _MAX)
    out: List[Tuple[Any, Any]] = []
    while True:
        entries = node.entries
        end = bisect_right(entries, hi_probe, lo=start)
        out.extend(entries[start:end])
        if end < len(entries):
            return out
        if node.next_page is None:
            return out
        node = pool.get(node.next_page)
        start = 0


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class VectorBackend(TraversalBackend):
    """numpy struct-of-arrays traversal with exact counter parity."""

    name = "vector"
    supports_batch = True

    def __init__(self) -> None:
        if not HAVE_NUMPY:  # pragma: no cover - guarded by resolve_backend
            raise RuntimeError(
                "VectorBackend requires numpy; install the [vector] extra "
                "or use resolve_backend('vector') for graceful fallback"
            )
        self.requested = "vector"
        self._tree_mirrors: Dict[int, _TreeMirror] = {}
        self._pmr_mirrors: Dict[int, _PMRMirror] = {}
        # id(index) -> (segment count, (n, 4) coords, page-id array)
        self._seg_mirrors: Dict[int, Tuple[int, Any, Any]] = {}

    # -- plumbing ------------------------------------------------------
    def invalidate(self) -> None:
        self._tree_mirrors.clear()
        self._pmr_mirrors.clear()
        self._seg_mirrors.clear()

    def describe(self) -> dict:
        return {
            "name": self.name,
            "requested": self.requested,
            "numpy": np.__version__,
            "mirror_nodes": sum(
                len(m.blocks) for m in self._tree_mirrors.values()
            ),
            "mirror_pmr_leaves": sum(
                len(m.lo) for m in self._pmr_mirrors.values()
            ),
            "mirror_segments": sum(
                m[0] for m in self._seg_mirrors.values()
            ),
        }

    @staticmethod
    def _tree_vectorizable(index: SpatialIndex) -> bool:
        """True for indexes using the stock R/R*/R+ traversal loops.

        Subclasses that override the candidate searches (KDB, the true
        R+ variant) carry different node/stack shapes and fall back to
        the scalar path instead of risking silent divergence.
        """
        cls = type(index)
        return isinstance(index, (GuttmanRTree, RPlusTree)) and (
            cls.candidate_ids_in_rect
            in (
                GuttmanRTree.candidate_ids_in_rect,
                RPlusTree.candidate_ids_in_rect,
            )
            and cls.candidate_ids_at_point
            in (
                GuttmanRTree.candidate_ids_at_point,
                RPlusTree.candidate_ids_at_point,
            )
        )

    @staticmethod
    def _pmr_vectorizable(index: SpatialIndex) -> bool:
        return (
            isinstance(index, PMRQuadtree)
            and type(index).candidate_ids_in_rect
            is PMRQuadtree.candidate_ids_in_rect
        )

    def _tree_mirror(self, index: SpatialIndex) -> _TreeMirror:
        mirror = self._tree_mirrors.get(id(index))
        if mirror is None:
            mirror = _TreeMirror()
            self._tree_mirrors[id(index)] = mirror
        return mirror

    def _pmr_mirror(self, index: "PMRQuadtree") -> _PMRMirror:
        mirror = self._pmr_mirrors.get(id(index))
        if mirror is None or mirror.entry_count != len(index.btree):
            mirror = _PMRMirror(index)
            self._pmr_mirrors[id(index)] = mirror
        return mirror

    def _seg_mirror(self, index: SpatialIndex):
        """Columnar copy of the segment table plus its page map.

        Built with ``peek`` (no counters touched); sound to cache on the
        table length because the table is append-only -- deletes
        unindex, they never rewrite rows.
        """
        key = id(index)
        table = index.ctx.segments
        mirror = self._seg_mirrors.get(key)
        if mirror is None or mirror[0] != len(table):
            n = len(table)
            if n:
                coords = np.array(
                    [table.peek(i) for i in range(n)], dtype=np.float64
                )
            else:
                coords = np.empty((0, 4), dtype=np.float64)
            pages = np.asarray(table.page_ids, dtype=np.int64)
            mirror = (n, coords, pages)
            self._seg_mirrors[key] = mirror
        return mirror

    # -- verification --------------------------------------------------
    def _charge_and_rows(
        self, index: SpatialIndex, uniq_list, page_major: bool = False
    ):
        """Charge the scalar verify's storage traffic; return coord rows.

        The scalar loop fetches each unique candidate through
        ``segments.fetch``: one ``segment_comps`` per id plus one
        ``pool.get`` on the id's table page. Here consecutive same-page
        fetches collapse into one :meth:`BufferPool.get_run` -- counter-
        and LRU-identical by construction -- and the endpoint rows come
        from the columnar mirror instead of the page payloads. Under an
        enabled tracer the per-access path runs instead, so traces keep
        their event-for-event shape.

        ``page_major`` (batch verifies only) additionally sorts the
        charge sequence by table page, the verify-side analogue of the
        node-major fused descent: every access is still charged, so
        total pool gets are unchanged, but each shared page is faulted
        at most once per pass. Single-query runs keep the scalar access
        order so their disk/hit split stays exactly comparable.
        """
        total = sum(int(u.size) for u in uniq_list)
        if total == 0:
            return None
        _, coords, pages = self._seg_mirror(index)
        all_ids = (
            uniq_list[0]
            if len(uniq_list) == 1
            else np.concatenate([u for u in uniq_list if u.size])
        )
        table = index.ctx.segments
        if TRACER.enabled:
            for sid in all_ids.tolist():
                table.fetch(sid)
        else:
            pool = table.pool
            pool.counters.segment_comps += total
            page_seq = pages[all_ids // table.per_page]
            if page_major:
                page_seq = np.sort(page_seq)
            cut = np.flatnonzero(page_seq[1:] != page_seq[:-1]) + 1
            starts = np.concatenate(
                (np.zeros(1, dtype=np.intp), cut, [page_seq.size])
            )
            run_pages = page_seq[starts[:-1]].tolist()
            run_lens = np.diff(starts).tolist()
            pool.get_runs(zip(run_pages, run_lens))
        return coords[all_ids]

    def _verify_window(
        self, index: SpatialIndex, candidates, window: Rect, mode: str
    ) -> List[int]:
        """Vectorized twin of :func:`repro.core.queries.window.verify_window`."""
        uniq = _unique_first_seen(candidates)
        rows = self._charge_and_rows(index, [uniq])
        if rows is None:
            return []
        if mode == "intersects":
            keep = _segments_meet_rect(rows, window)
        else:
            keep = _segments_in_rect(rows, window)
        return uniq[keep].tolist()

    def _verify_incident(self, index: SpatialIndex, candidates, p: Point):
        """Vectorized twin of :func:`repro.core.queries.point.verify_incident`.

        The returned pairs materialize their segments with ``peek``: the
        fetch charges were already paid for every candidate above.
        """
        uniq = _unique_first_seen(candidates)
        rows = self._charge_and_rows(index, [uniq])
        if rows is None:
            return []
        keep = _segments_have_endpoint(rows, p)
        table = index.ctx.segments
        return [(sid, table.peek(sid)) for sid in uniq[keep].tolist()]

    def _verify_windows_batch(
        self, index: SpatialIndex, cands_list, windows, mode: str
    ) -> List[List[int]]:
        """Batched :meth:`_verify_window`: one predicate pass, per-row
        window bounds, so each per-query keep decision is identical to
        the single-query verify."""
        uniq_list = [_unique_first_seen(c) for c in cands_list]
        rows = self._charge_and_rows(index, uniq_list, page_major=True)
        if rows is None:
            return [[] for _ in cands_list]
        reps = np.array([u.size for u in uniq_list], dtype=np.intp)
        bxmin = np.repeat(np.array([w.xmin for w in windows]), reps)
        bymin = np.repeat(np.array([w.ymin for w in windows]), reps)
        bxmax = np.repeat(np.array([w.xmax for w in windows]), reps)
        bymax = np.repeat(np.array([w.ymax for w in windows]), reps)
        if mode == "intersects":
            keep = _segments_meet_bounds(rows, bxmin, bymin, bxmax, bymax)
        else:
            keep = _segments_in_bounds(rows, bxmin, bymin, bxmax, bymax)
        out: List[List[int]] = []
        start = 0
        for uniq in uniq_list:
            out.append(uniq[keep[start : start + uniq.size]].tolist())
            start += uniq.size
        return out

    def _verify_incidents_batch(
        self, index: SpatialIndex, cands_list, points
    ):
        """Batched :meth:`_verify_incident` (per-row query points)."""
        uniq_list = [_unique_first_seen(c) for c in cands_list]
        rows = self._charge_and_rows(index, uniq_list, page_major=True)
        if rows is None:
            return [[] for _ in cands_list]
        reps = np.array([u.size for u in uniq_list], dtype=np.intp)
        px = np.repeat(np.array([p.x for p in points]), reps)
        py = np.repeat(np.array([p.y for p in points]), reps)
        keep = ((rows[:, 0] == px) & (rows[:, 1] == py)) | (
            (rows[:, 2] == px) & (rows[:, 3] == py)
        )
        table = index.ctx.segments
        out: List[List[Tuple[int, Any]]] = []
        start = 0
        for uniq in uniq_list:
            kept = uniq[keep[start : start + uniq.size]].tolist()
            start += uniq.size
            out.append([(sid, table.peek(sid)) for sid in kept])
        return out

    # -- spec dispatch -------------------------------------------------
    def run(self, index: SpatialIndex, spec: QuerySpec):
        op = spec.op
        if op == "window":
            return self._window(index, spec.to_rect(), spec.mode)
        if op == "point":
            return [sid for sid, _ in self._incident(index, spec.to_point())]
        if op == "incident":
            return self._incident(index, spec.to_point())
        if op == "nearest":
            # Best-first search is dominated by heap-ordered node
            # expansions and per-candidate distance fetches that must
            # stay charge-identical; both backends share the scalar
            # incremental algorithm.
            return scalar_nearest_k(index, spec.to_point(), spec.k)
        if op == "other_endpoint":
            return other_endpoint_via(index, spec.to_point(), spec.seg_id, self)
        if op == "polygon":
            return walk_enclosing_polygon(
                index, spec.to_point(), spec.max_steps, self
            )
        raise ValueError(f"unknown spec op {spec.op!r}")

    # -- single-query traversal ----------------------------------------
    def _window(self, index: SpatialIndex, window: Rect, mode: str):
        if mode not in ("intersects", "contains"):
            raise ValueError(
                f"mode must be 'intersects' or 'contains', got {mode!r}"
            )
        prof = TRACER.current_profile() if TRACER.profiling else None
        if self._tree_vectorizable(index):
            if prof is not None:
                candidates = self._profiled_tree_candidates(
                    index, prof, "window", window
                )
                return verify_window_profiled(
                    index, candidates, window, mode, prof
                )
            candidates = self._tree_candidates(index, "window", window)
            return self._verify_window(index, candidates, window, mode)
        if prof is None and self._pmr_vectorizable(index):
            candidates = self._pmr_rect_candidates(index, window)
            return self._verify_window(index, candidates, window, mode)
        # Profiled PMR windows and unsupported structures: the scalar
        # path is the reference and already attributes every charge.
        return scalar_window_query(index, window, mode)

    def _incident(self, index: SpatialIndex, p: Point):
        prof = TRACER.current_profile() if TRACER.profiling else None
        if self._tree_vectorizable(index):
            if prof is not None:
                candidates = self._profiled_tree_candidates(
                    index, prof, "point", p
                )
                return verify_incident_profiled(index, candidates, p, prof)
            candidates = self._tree_candidates(index, "point", p)
            return self._verify_incident(index, candidates, p)
        # The PMR point search is a single in-memory descent plus one
        # B-tree scan; there is no per-entry loop to vectorize.
        return scalar_incident_segments(index, p)

    def _tree_candidates(self, index: SpatialIndex, kind: str, query):
        """Scalar DFS with a vectorized per-node predicate.

        Same ``pool.get`` order, same ``bbox_comps`` charges, matched
        refs extracted in entry order -- counters and candidate order
        are identical to ``candidate_ids_at_point``/``_in_rect``.
        """
        pool = index.ctx.pool
        counters = index.ctx.counters
        mirror = self._tree_mirror(index)
        out: List[int] = []
        stack = [index._root_id]
        while stack:
            page_id = stack.pop()
            node = pool.get(page_id)
            counters.bbox_comps += len(node.entries)
            blk = mirror.block(page_id, node)
            if blk.refs.size:
                mask = (
                    blk.window_mask(query)
                    if kind == "window"
                    else blk.point_mask(query)
                )
                matched = blk.refs[mask].tolist()
            else:
                matched = []
            if node.is_leaf:
                out.extend(matched)
            else:
                stack.extend(matched)
        return out

    def _profiled_tree_candidates(
        self, index: SpatialIndex, prof, kind: str, query
    ):
        """Vector twin of :func:`repro.core.profiled.profiled_tree_search`."""
        pool = index.ctx.pool
        counters = index.ctx.counters
        mirror = self._tree_mirror(index)
        out: List[int] = []
        stack: List[Tuple[int, int]] = [(index._root_id, 0)]
        while stack:
            page_id, depth = stack.pop()
            with prof.charge_level(depth, counters) as bucket:
                node = pool.get(page_id)
                counters.bbox_comps += len(node.entries)
                blk = mirror.block(page_id, node)
                if blk.refs.size:
                    mask = (
                        blk.window_mask(query)
                        if kind == "window"
                        else blk.point_mask(query)
                    )
                    matched = blk.refs[mask].tolist()
                else:
                    matched = []
                bucket.node_visits += 1
                bucket.entries_examined += len(node.entries)
                bucket.entries_matched += len(matched)
                bucket.entries_pruned += len(node.entries) - len(matched)
            if node.is_leaf:
                out.extend(matched)
            else:
                stack.extend((ref, depth + 1) for ref in matched)
        return out

    def _pmr_rect_candidates(self, index: "PMRQuadtree", rect: Rect):
        """Window decomposition over the leaf mirror.

        One mask replaces the recursive directory walk; the interval
        set, the ``bbox_comps`` lump charge, the sort/coalesce into
        runs and the per-run B-tree scans match the scalar
        ``candidate_ids_in_rect`` exactly.
        """
        mirror = self._pmr_mirror(index)
        mask = (
            (mirror.xmin <= rect.xmax)
            & (rect.xmin <= mirror.xmax)
            & (mirror.ymin <= rect.ymax)
            & (rect.ymin <= mirror.ymax)
        )
        if mirror.bt is not None:
            hit_ix = np.flatnonzero(mask)
            index.ctx.counters.bbox_comps += int(hit_ix.size)
            los = mirror.lo_arr[hit_ix]
            his = mirror.hi_arr[hit_ix]
            order = np.argsort(los)  # interval lows are distinct
            los = los[order]
            his = his[order]
            if los.size:
                # Coalesce: a new run starts wherever an interval does
                # not continue its predecessor's codes.
                starts = np.flatnonzero(
                    np.concatenate(([True], los[1:] != his[:-1] + 1))
                )
                run_los = los[starts]
                run_his = his[
                    np.concatenate((starts[1:] - 1, [los.size - 1]))
                ]
            else:
                run_los = run_his = los
            return self._pmr_scan_runs(
                index, mirror.bt, run_los, run_his, rect
            )

        hits = np.flatnonzero(mask).tolist()
        index.ctx.counters.bbox_comps += len(hits)

        intervals = sorted([mirror.lo[i], mirror.hi[i]] for i in hits)
        runs: List[List[int]] = []
        for lo, hi in intervals:
            if runs and runs[-1][1] + 1 == lo:
                runs[-1][1] = hi
            else:
                runs.append([lo, hi])

        out: List[int] = []
        store_bboxes = index.store_bboxes
        for lo, hi in runs:
            for _, v in _scan_range_entries(index.btree, lo, hi):
                if store_bboxes:
                    if Rect(v[1][0], v[1][1], v[1][2], v[1][3]).intersects(rect):
                        out.append(v[0])
                else:
                    out.append(index._seg_id_of(v))
        return out

    def _pmr_scan_runs(
        self,
        index: "PMRQuadtree",
        bt: _BTreeMirror,
        run_los,
        run_his,
        rect: Rect,
    ):
        """Interval scans over the B-tree mirror.

        Each run replays the scalar scan's page traffic exactly -- the
        separator-routed descent, then the leaf chain up to and
        including the leaf holding the first key past the run (or the
        chain's end) -- as one bulk :meth:`BufferPool.get_runs` charge,
        while the entries themselves come from ``searchsorted`` slices
        of the mirrored key array.
        """
        keys = bt.keys
        ends = bt.leaf_ends
        leaf_pages = bt.leaf_pages
        leaf_pos = bt.leaf_pos
        internal = bt.internal
        n_leaves = len(leaf_pages)
        root = index.btree._root_id
        j0s = keys.searchsorted(run_los, "left")
        j1s = keys.searchsorted(run_his, "right")
        pages: List[Tuple[int, int]] = []
        append = pages.append
        for lo, j1 in zip(run_los.tolist(), j1s.tolist()):
            page_id = root
            probe = (lo,)
            node = internal.get(page_id)
            while node is not None:
                append((page_id, 1))
                page_id = node[1][bisect_right(node[0], probe)]
                node = internal.get(page_id)
            append((page_id, 1))
            # Chain walk: a leaf exhausted without an out-of-range key
            # hands over to its successor, which is fetched even when it
            # contributes nothing (its first key is the stop signal).
            i = leaf_pos[page_id]
            while ends[i] <= j1 and i + 1 < n_leaves:
                i += 1
                append((leaf_pages[i], 1))
        index.ctx.pool.get_runs(pages)

        counts = j1s - j0s
        total = int(counts.sum())
        if not total:
            return np.empty(0, dtype=np.int64)
        # Concatenated [j0, j1) ranges without a per-run gather loop.
        cum = counts.cumsum()
        idx = np.arange(total, dtype=np.int64) + np.repeat(
            j0s - (cum - counts), counts
        )
        cands = bt.seg_ids[idx]
        if bt.bboxes is not None:
            boxes = bt.bboxes[idx]
            keep = (
                (boxes[:, 0] <= rect.xmax)
                & (rect.xmin <= boxes[:, 2])
                & (boxes[:, 1] <= rect.ymax)
                & (rect.ymin <= boxes[:, 3])
            )
            cands = cands[keep]
        return cands

    # -- query-batched descent -----------------------------------------
    def run_batch(self, index: SpatialIndex, specs) -> List[Any]:
        """Execute a batch, fusing window/point descents over the tree.

        Each shared upper-level node is fetched once for all queries
        still alive at it and tested with one (entries x queries)
        broadcast mask. Per-query results are then rebuilt in scalar
        DFS order, so results, ``bbox_comps`` and ``segment_comps``
        match per-query scalar runs to the unit; only the page access
        *pattern* changes (node-major, never more total accesses).
        """
        specs = list(specs)
        results: List[Any] = [None] * len(specs)
        fused: set = set()
        if not TRACER.profiling and self._tree_vectorizable(index):
            # One fused descent per mode group: every member of a group
            # shares one candidate sweep and one batched verify pass.
            for mode in ("intersects", "contains"):
                window_ix = [
                    i
                    for i, s in enumerate(specs)
                    if s.op == "window" and s.mode == mode
                ]
                if len(window_ix) <= 1:
                    continue
                rects = [specs[i].to_rect() for i in window_ix]
                cands_list = self._fused_tree_candidates(
                    index, "window", rects
                )
                for i, found in zip(
                    window_ix,
                    self._verify_windows_batch(index, cands_list, rects, mode),
                ):
                    results[i] = found
                fused.update(window_ix)
            point_ix = [
                i for i, s in enumerate(specs) if s.op in ("point", "incident")
            ]
            if len(point_ix) > 1:
                points = [specs[i].to_point() for i in point_ix]
                cands_list = self._fused_tree_candidates(
                    index, "point", points
                )
                for i, pairs in zip(
                    point_ix,
                    self._verify_incidents_batch(index, cands_list, points),
                ):
                    results[i] = (
                        pairs
                        if specs[i].op == "incident"
                        else [sid for sid, _ in pairs]
                    )
                fused.update(point_ix)
        elif not TRACER.profiling and self._pmr_vectorizable(index):
            # PMR has no shared descent to fuse (each window charges its
            # own decomposition + scans), but the verify pass batches:
            # group same-mode windows behind one predicate sweep.
            for mode in ("intersects", "contains"):
                window_ix = [
                    i
                    for i, s in enumerate(specs)
                    if s.op == "window" and s.mode == mode
                ]
                if len(window_ix) <= 1:
                    continue
                rects = [specs[i].to_rect() for i in window_ix]
                cands_list = [
                    self._pmr_rect_candidates(index, r) for r in rects
                ]
                for i, found in zip(
                    window_ix,
                    self._verify_windows_batch(index, cands_list, rects, mode),
                ):
                    results[i] = found
                fused.update(window_ix)
        for i, spec in enumerate(specs):
            if i not in fused:
                results[i] = self.run(index, spec)
        return results

    def _fused_tree_candidates(
        self, index: SpatialIndex, kind: str, queries
    ) -> List[List[int]]:
        """One node-major descent for a whole query batch.

        ``frontier`` maps each page to the (ordered) list of query
        indexes whose scalar traversal would visit it; the per-node
        charge ``len(entries) * len(alive)`` therefore equals the sum
        of the scalar per-query charges. The recorded per-(query, page)
        match lists then replay each query's LIFO descent without
        touching the pool again.
        """
        pool = index.ctx.pool
        counters = index.ctx.counters
        mirror = self._tree_mirror(index)
        n = len(queries)
        # One (4, n) bounds matrix: row order lo-x, lo-y, hi-x, hi-y.
        # A point is the degenerate window [p, p].
        if kind == "window":
            qb = np.array(
                [
                    [r.xmin for r in queries],
                    [r.ymin for r in queries],
                    [r.xmax for r in queries],
                    [r.ymax for r in queries],
                ],
                dtype=np.float64,
            )
        else:
            px = [p.x for p in queries]
            py = [p.y for p in queries]
            qb = np.array([px, py, px, py], dtype=np.float64)

        root = index._root_id
        frontier: Dict[int, List[int]] = {root: list(range(n))}
        # plans[q][page_id] = (is_leaf, matched refs in entry order)
        plans: List[Dict[int, Tuple[bool, List[int]]]] = [
            {} for _ in range(n)
        ]
        while frontier:
            nxt: Dict[int, List[int]] = {}
            for page_id, alive in frontier.items():
                node = pool.get(page_id)
                counters.bbox_comps += len(node.entries) * len(alive)
                blk = mirror.block(page_id, node)
                is_leaf = node.is_leaf
                if not blk.refs.size:
                    for q in alive:
                        plans[q][page_id] = (is_leaf, [])
                    continue
                sub = (
                    qb
                    if len(alive) == n
                    else qb[:, np.array(alive, dtype=np.intp)]
                )
                mask = (
                    (blk.xmin[:, None] <= sub[2])
                    & (sub[0] <= blk.xmax[:, None])
                    & (blk.ymin[:, None] <= sub[3])
                    & (sub[1] <= blk.ymax[:, None])
                )
                # mask.T's nonzero walks column-major: per query, entry
                # indexes in ascending (= entry) order -- one numpy call
                # extracts every query's match list for this node.
                _, rows = np.nonzero(mask.T)
                matched_refs = blk.refs[rows].tolist()
                counts = np.count_nonzero(mask, axis=0).tolist()
                start = 0
                for col, q in enumerate(alive):
                    matched = matched_refs[start : start + counts[col]]
                    start += counts[col]
                    plans[q][page_id] = (is_leaf, matched)
                    if not is_leaf:
                        for child in matched:
                            bucket = nxt.get(child)
                            if bucket is None:
                                nxt[child] = [q]
                            else:
                                bucket.append(q)
            frontier = nxt

        out: List[List[int]] = []
        for q in range(n):
            plan = plans[q]
            candidates: List[int] = []
            stack = [root]
            while stack:
                is_leaf, matched = plan[stack.pop()]
                if is_leaf:
                    candidates.extend(matched)
                else:
                    stack.extend(matched)
            out.append(candidates)
        return out
