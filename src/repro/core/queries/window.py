"""Query 5: the window (range) query.

The traversal itself now lives behind the backend seam: callers build a
:class:`~repro.core.queries.spec.QuerySpec` and execute it through a
:class:`~repro.core.interface.TraversalBackend`. The scalar reference
implementation -- candidate generation through the index, then the
dedup/fetch/verify loop -- stays here; the vectorized backend reuses the
same verify helpers so the two paths stay charge-identical.
"""

from __future__ import annotations

import warnings
from typing import Iterable, List

from repro.core.interface import SpatialIndex
from repro.core.queries.spec import QuerySpec, execute_spec
from repro.geometry import Rect
from repro.obs.explain import (
    CAUSE_SEGMENT_TABLE,
    COUNT_CANDIDATES,
    COUNT_DUPLICATES,
    COUNT_RESULTS,
    COUNT_SEGMENT_FETCHES,
)
from repro.obs.trace import TRACER


def window_query(
    index: SpatialIndex, window: Rect, mode: str = "intersects"
) -> List[int]:
    """**Query 5**: ids of all segments in the closed window.

    .. deprecated::
        Thin shim kept for callers of the historical entry point; build
        ``QuerySpec.window(window, mode)`` and run it through
        :func:`~repro.core.queries.spec.execute_spec` (or the engine's
        backend) instead. The cache key is unchanged either way.
    """
    warnings.warn(
        "window_query() is deprecated; execute QuerySpec.window() through "
        "a TraversalBackend (repro.core.queries.spec.execute_spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_spec(index, QuerySpec.window(window, mode))


def scalar_window_query(
    index: SpatialIndex, window: Rect, mode: str = "intersects"
) -> List[int]:
    """The scalar reference implementation of query 5.

    ``mode`` selects the spatial predicate:

    * ``"intersects"`` (the paper's reading: "find all roads that pass
      through a given region") -- any part of the segment meets the
      window;
    * ``"contains"`` -- both endpoints lie inside the window (the
      segment is entirely within it).

    Candidates come from the index (R-tree traversal or the PMR window
    decomposition over blocks); each unique candidate is verified against
    its actual geometry, which is one segment comparison.
    """
    if mode not in ("intersects", "contains"):
        raise ValueError(f"mode must be 'intersects' or 'contains', got {mode!r}")
    if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
        return verify_window_profiled(
            index, index.candidate_ids_in_rect(window), window, mode, prof
        )
    return verify_window(
        index, index.candidate_ids_in_rect(window), window, mode
    )


def verify_window(
    index: SpatialIndex, candidates: Iterable[int], window: Rect, mode: str
) -> List[int]:
    """Dedup candidates by id, fetch each once, verify against geometry.

    Shared by both backends: the vectorized path feeds it its own
    candidate stream in profiling-free runs it replaces only the final
    geometry predicate with an array pass, keeping the fetch order (and
    therefore every counter) identical.
    """
    out: List[int] = []
    seen = set()
    for seg_id in candidates:
        if seg_id in seen:
            continue
        seen.add(seg_id)
        seg = index.ctx.segments.fetch(seg_id)
        if mode == "intersects":
            if seg.intersects_rect(window):
                out.append(seg_id)
        else:
            if window.contains_point(seg.start) and window.contains_point(seg.end):
                out.append(seg_id)
    return out


def verify_window_profiled(
    index: SpatialIndex,
    candidates: Iterable[int],
    window: Rect,
    mode: str,
    prof,
) -> List[int]:
    """The same dedup/verify loop, attributing the segment-table fetches.

    The candidate/duplicate tallies expose the R+ and PMR duplication
    directly: candidates minus unique fetches is the number of extra
    copies the structure's tiling produced for this window.
    """
    counters = index.ctx.counters
    out: List[int] = []
    seen = set()
    for seg_id in candidates:
        prof.count(COUNT_CANDIDATES)
        if seg_id in seen:
            prof.count(COUNT_DUPLICATES)
            continue
        seen.add(seg_id)
        with prof.charge(CAUSE_SEGMENT_TABLE, counters) as bucket:
            seg = index.ctx.segments.fetch(seg_id)
        bucket.node_visits += 1
        prof.count(COUNT_SEGMENT_FETCHES)
        if mode == "intersects":
            if seg.intersects_rect(window):
                out.append(seg_id)
                prof.count(COUNT_RESULTS)
        else:
            if window.contains_point(seg.start) and window.contains_point(seg.end):
                out.append(seg_id)
                prof.count(COUNT_RESULTS)
    return out
