"""Query 5: the window (range) query."""

from __future__ import annotations

from typing import List

from repro.core.interface import SpatialIndex
from repro.geometry import Rect
from repro.obs.explain import (
    CAUSE_SEGMENT_TABLE,
    COUNT_CANDIDATES,
    COUNT_DUPLICATES,
    COUNT_RESULTS,
    COUNT_SEGMENT_FETCHES,
)
from repro.obs.trace import TRACER


def window_query(
    index: SpatialIndex, window: Rect, mode: str = "intersects"
) -> List[int]:
    """**Query 5**: ids of all segments in the closed window.

    ``mode`` selects the spatial predicate:

    * ``"intersects"`` (the paper's reading: "find all roads that pass
      through a given region") -- any part of the segment meets the
      window;
    * ``"contains"`` -- both endpoints lie inside the window (the
      segment is entirely within it).

    Candidates come from the index (R-tree traversal or the PMR window
    decomposition over blocks); each unique candidate is verified against
    its actual geometry, which is one segment comparison.
    """
    if mode not in ("intersects", "contains"):
        raise ValueError(f"mode must be 'intersects' or 'contains', got {mode!r}")
    if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
        return _window_profiled(index, window, mode, prof)
    out: List[int] = []
    seen = set()
    for seg_id in index.candidate_ids_in_rect(window):
        if seg_id in seen:
            continue
        seen.add(seg_id)
        seg = index.ctx.segments.fetch(seg_id)
        if mode == "intersects":
            if seg.intersects_rect(window):
                out.append(seg_id)
        else:
            if window.contains_point(seg.start) and window.contains_point(seg.end):
                out.append(seg_id)
    return out


def _window_profiled(
    index: SpatialIndex, window: Rect, mode: str, prof
) -> List[int]:
    """The same dedup/verify loop, attributing the segment-table fetches.

    The candidate/duplicate tallies expose the R+ and PMR duplication
    directly: candidates minus unique fetches is the number of extra
    copies the structure's tiling produced for this window.
    """
    counters = index.ctx.counters
    out: List[int] = []
    seen = set()
    for seg_id in index.candidate_ids_in_rect(window):
        prof.count(COUNT_CANDIDATES)
        if seg_id in seen:
            prof.count(COUNT_DUPLICATES)
            continue
        seen.add(seg_id)
        with prof.charge(CAUSE_SEGMENT_TABLE, counters) as bucket:
            seg = index.ctx.segments.fetch(seg_id)
        bucket.node_visits += 1
        prof.count(COUNT_SEGMENT_FETCHES)
        if mode == "intersects":
            if seg.intersects_rect(window):
                out.append(seg_id)
                prof.count(COUNT_RESULTS)
        else:
            if window.contains_point(seg.start) and window.contains_point(seg.end):
                out.append(seg_id)
                prof.count(COUNT_RESULTS)
    return out
