"""Query 5: the window (range) query."""

from __future__ import annotations

from typing import List

from repro.core.interface import SpatialIndex
from repro.geometry import Rect


def window_query(
    index: SpatialIndex, window: Rect, mode: str = "intersects"
) -> List[int]:
    """**Query 5**: ids of all segments in the closed window.

    ``mode`` selects the spatial predicate:

    * ``"intersects"`` (the paper's reading: "find all roads that pass
      through a given region") -- any part of the segment meets the
      window;
    * ``"contains"`` -- both endpoints lie inside the window (the
      segment is entirely within it).

    Candidates come from the index (R-tree traversal or the PMR window
    decomposition over blocks); each unique candidate is verified against
    its actual geometry, which is one segment comparison.
    """
    if mode not in ("intersects", "contains"):
        raise ValueError(f"mode must be 'intersects' or 'contains', got {mode!r}")
    out: List[int] = []
    seen = set()
    for seg_id in index.candidate_ids_in_rect(window):
        if seg_id in seen:
            continue
        seen.add(seg_id)
        seg = index.ctx.segments.fetch(seg_id)
        if mode == "intersects":
            if seg.intersects_rect(window):
                out.append(seg_id)
        else:
            if window.contains_point(seg.start) and window.contains_point(seg.end):
                out.append(seg_id)
    return out
