"""The query plan object both traversal backends consume.

Historically each of the paper's five queries was its own ad-hoc entry
point (``window_query``, ``segments_at_point``, ...). With more than one
traversal backend (the scalar reference path and the vectorized
``repro.core.vector`` backend) every caller would have to know which
implementation to dispatch to; instead, a :class:`QuerySpec` names the
query *plan* -- operation plus arguments -- and :func:`execute_spec`
hands it to a :class:`~repro.core.interface.TraversalBackend`. The
legacy callables survive as thin deprecated shims that build a spec
(``repro-lint`` rule RP06 flags new direct calls that bypass it).

Cache-key compatibility is part of the contract: ``QuerySpec.cache_key``
returns exactly the tuples the typed wire requests
(:mod:`repro.service.api`) have always used, so a result cached through
either path is found by the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geometry import Point, Rect

#: Spatial predicates a window spec accepts (the wire's "clips" mode is
#: canonicalized to a window + clipping step before it reaches a spec).
WINDOW_MODES = ("intersects", "contains")

#: Every operation a spec can name.
SPEC_OPS = (
    "point",
    "incident",
    "other_endpoint",
    "nearest",
    "polygon",
    "window",
)

#: Default step bound for the polygon face walk.
POLYGON_MAX_STEPS = 100_000


@dataclass(frozen=True)
class QuerySpec:
    """One read query, as data: the operation and its arguments.

    Build through the factory classmethods; the positional fields are an
    implementation detail shared across ops (``x``/``y`` hold the query
    point or the window's min corner, ``x2``/``y2`` the max corner).
    """

    op: str
    x: float = 0.0
    y: float = 0.0
    x2: float = 0.0
    y2: float = 0.0
    mode: str = "intersects"
    k: int = 1
    seg_id: Optional[int] = None
    max_steps: int = POLYGON_MAX_STEPS

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, p: Point) -> "QuerySpec":
        """Query 1: ids of segments with an endpoint at ``p``."""
        return cls("point", x=p.x, y=p.y)

    @classmethod
    def incident(cls, p: Point) -> "QuerySpec":
        """Query 1 with geometry: ``(seg_id, Segment)`` pairs at ``p``."""
        return cls("incident", x=p.x, y=p.y)

    @classmethod
    def other_endpoint(cls, p: Point, seg_id: int) -> "QuerySpec":
        """Query 2: incidences at the other endpoint of ``seg_id``."""
        return cls("other_endpoint", x=p.x, y=p.y, seg_id=int(seg_id))

    @classmethod
    def nearest(cls, p: Point, k: int = 1) -> "QuerySpec":
        """Query 3: the ``k`` nearest segments to ``p``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return cls("nearest", x=p.x, y=p.y, k=int(k))

    @classmethod
    def polygon(
        cls, p: Point, max_steps: int = POLYGON_MAX_STEPS
    ) -> "QuerySpec":
        """Query 4: the minimal enclosing polygon of ``p``."""
        return cls("polygon", x=p.x, y=p.y, max_steps=int(max_steps))

    @classmethod
    def window(cls, rect: Rect, mode: str = "intersects") -> "QuerySpec":
        """Query 5: segments meeting the closed window ``rect``."""
        if mode not in WINDOW_MODES:
            raise ValueError(
                f"mode must be 'intersects' or 'contains', got {mode!r}"
            )
        return cls(
            "window",
            x=rect.xmin,
            y=rect.ymin,
            x2=rect.xmax,
            y2=rect.ymax,
            mode=mode,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def to_point(self) -> Point:
        return Point(self.x, self.y)

    def to_rect(self) -> Rect:
        return Rect(self.x, self.y, self.x2, self.y2)

    def cache_key(self) -> Tuple:
        """The canonical result-cache key.

        For the ops the wire protocol serves ("point", "window",
        "nearest") these are byte-for-byte the tuples
        :mod:`repro.service.api` has always produced -- backends share
        one cache entry because they are counter- and result-identical.
        """
        if self.op == "point":
            return ("point", self.x, self.y)
        if self.op == "window":
            return ("window", self.x, self.y, self.x2, self.y2, self.mode)
        if self.op == "nearest":
            return ("nearest", self.x, self.y, self.k)
        if self.op == "incident":
            return ("incident", self.x, self.y)
        if self.op == "other_endpoint":
            return ("other_endpoint", self.x, self.y, self.seg_id)
        if self.op == "polygon":
            return ("polygon", self.x, self.y, self.max_steps)
        raise ValueError(f"unknown spec op {self.op!r}")


def execute_spec(index, spec: QuerySpec, backend=None):
    """Run ``spec`` against ``index`` through ``backend``.

    ``backend`` defaults to the scalar reference backend; pass the
    engine's resolved backend to pick the vectorized path. This is the
    single sanctioned entry into query traversal -- the legacy
    callables all route through here.
    """
    if backend is None:
        from repro.core.backends import SCALAR_BACKEND  # avoid cycle

        backend = SCALAR_BACKEND
    return backend.run(index, spec)
