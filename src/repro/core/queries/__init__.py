"""The five queries of Section 5, written once against the
:class:`~repro.core.interface.SpatialIndex` interface.

1. :func:`segments_at_point` -- all segments incident at an endpoint.
2. :func:`segments_at_other_endpoint` -- incidences at a segment's other
   endpoint.
3. :func:`nearest_segment` (and the incremental :func:`iter_nearest`) --
   the nearest segment to a point, Euclidean metric.
4. :func:`enclosing_polygon` -- the minimal polygon enclosing a point.
5. :func:`window_query` -- all segments meeting a rectangular window.
"""

from repro.core.queries.join import brute_force_join, quadtree_join, rtree_join
from repro.core.queries.nearest import (
    iter_nearest,
    nearest_k_segments,
    nearest_segment,
    nearest_segment_to_segment,
)
from repro.core.queries.point import (
    incident_segments_with_geometry,
    segments_at_other_endpoint,
    segments_at_point,
)
from repro.core.queries.polygon import PolygonResult, enclosing_polygon
from repro.core.queries.spec import QuerySpec, execute_spec
from repro.core.queries.window import window_query

__all__ = [
    "PolygonResult",
    "QuerySpec",
    "brute_force_join",
    "enclosing_polygon",
    "execute_spec",
    "incident_segments_with_geometry",
    "iter_nearest",
    "nearest_k_segments",
    "nearest_segment",
    "nearest_segment_to_segment",
    "quadtree_join",
    "rtree_join",
    "segments_at_other_endpoint",
    "segments_at_point",
    "window_query",
]
