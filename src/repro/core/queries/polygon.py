"""Query 4: the minimal enclosing polygon of a point.

The paper's recipe (Section 5): run one nearest-segment query, then walk
the boundary of the polygon surrounding the query point by "repeatedly
executing query 2 and determining the right line segment from the ones
that are returned".

"The right line segment" is the classic planar face walk: arriving at
vertex ``v`` along edge ``(u, v)``, the next edge is the incident edge
whose direction makes the smallest strictly-positive *clockwise* angle
with the direction back toward ``u``. That choice keeps the face interior
on the left of every directed edge, so starting from the nearest segment
oriented with the query point on its left, the walk traces exactly the
face containing the point. Dead-end edges are walked in and out (the
angle to the reverse direction is treated as a full turn), as in any
DCEL-style face extraction.

The map is planar (TIGER data is noded, and so is our generator), which
this traversal requires.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.core.interface import SpatialIndex
from repro.core.queries.nearest import scalar_nearest_segment
from repro.core.queries.spec import QuerySpec
from repro.geometry import Point
from repro.geometry.predicates import orientation, pseudo_angle


class PolygonResult(NamedTuple):
    """The walked face.

    ``seg_ids`` lists each boundary edge in walk order (an edge walked in
    and out again -- a dead end -- appears twice). ``vertices`` is the
    closed vertex cycle (first == last when ``closed``). ``is_outer`` is
    true when the walk traced the unbounded outer face, which happens for
    query points outside every polygon of the map; its boundary comes back
    clockwise, detected by a negative shoelace area.
    """

    seg_ids: List[int]
    vertices: List[Point]
    closed: bool
    is_outer: bool

    @property
    def size(self) -> int:
        """Number of boundary edges (the paper's 'polygon size')."""
        return len(self.seg_ids)

    def area(self) -> float:
        """Enclosed area by the shoelace formula (0 for open walks;
        the magnitude of the hull area for the outer face)."""
        if not self.closed:
            return 0.0
        return abs(_signed_area2(self.vertices)) / 2.0


def _signed_area2(vertices: List[Point]) -> float:
    """Twice the shoelace area of the (closed) vertex cycle."""
    total = 0.0
    for a, b in zip(vertices, vertices[1:]):
        total += a.x * b.y - b.x * a.y
    return total


def enclosing_polygon(
    index: SpatialIndex, p: Point, max_steps: int = 100_000
) -> Optional[PolygonResult]:
    """**Query 4**: the boundary of the polygon containing ``p``.

    .. deprecated::
        Thin shim; execute ``QuerySpec.polygon(p)`` through a
        :class:`~repro.core.interface.TraversalBackend` instead.
    """
    import warnings

    warnings.warn(
        "enclosing_polygon() is deprecated; execute QuerySpec.polygon() "
        "through a TraversalBackend",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.queries.spec import execute_spec

    return execute_spec(index, QuerySpec.polygon(p, max_steps))


def walk_enclosing_polygon(
    index: SpatialIndex, p: Point, max_steps: int, backend
) -> Optional[PolygonResult]:
    """The face walk, with per-vertex incidence lookups through ``backend``.

    The walk itself is backend-neutral; what a vectorized backend
    accelerates is the point-incidence prefilter it runs at every vertex
    (one per boundary edge). Returns ``None`` on an empty index. Raises
    ``RuntimeError`` if the walk fails to close within ``max_steps``
    (non-planar input).
    """
    found = scalar_nearest_segment(index, p)
    if found is None:
        return None
    seg_id, _ = found
    seg = index.ctx.segments.fetch(seg_id)

    a, b = seg.start, seg.end
    # Orient the first edge so the query point lies to its left; for a
    # point exactly on the supporting line either face touches it and the
    # orientation is kept as stored.
    if orientation(a, b, p) < 0:
        a, b = b, a

    start = (a, b)
    seg_ids = [seg_id]
    vertices = [a, b]
    u, v = a, b
    current_id = seg_id

    for _ in range(max_steps):
        incident = backend.run(index, QuerySpec.incident(v))
        back = pseudo_angle(u.x - v.x, u.y - v.y)

        best_id: Optional[int] = None
        best_w: Optional[Point] = None
        best_turn = 5.0  # clockwise pseudo-angle in (0, 4]
        for sid, s in incident:
            w = s.other_endpoint(v)
            if w == v:
                continue  # degenerate loop edge
            turn = (back - pseudo_angle(w.x - v.x, w.y - v.y)) % 4.0
            if turn == 0.0:
                # The reverse edge itself: a dead end costs a full turn.
                turn = 4.0
            if turn < best_turn or (turn == best_turn and sid < (best_id or 0)):
                best_turn = turn
                best_id = sid
                best_w = w

        if best_id is None:
            # Isolated segment: walk back along it (degenerate face).
            best_id = current_id
            best_w = u

        if (v, best_w) == start:
            return PolygonResult(
                seg_ids, vertices, closed=True,
                is_outer=_signed_area2(vertices) < 0,
            )

        seg_ids.append(best_id)
        vertices.append(best_w)
        u, v = v, best_w
        current_id = best_id

    raise RuntimeError(
        f"polygon walk did not close within {max_steps} steps; "
        "is the map planar (noded at all crossings)?"
    )
