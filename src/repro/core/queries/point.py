"""Queries 1 and 2: point-incidence searches.

These are the paper's "more realistic" point queries: rather than
returning the block containing a point, they return the segments
*incident* at it. Candidates are deduplicated by id before their geometry
is fetched (the id is stored in the node, so no real implementation would
fetch a segment twice), then verified against the segment table -- each
verification is one of the paper's segment comparisons.

The public callables are deprecated shims over
:class:`~repro.core.queries.spec.QuerySpec`; the scalar implementations
(``scalar_*``) stay here and are what the reference backend runs.
"""

from __future__ import annotations

import warnings
from typing import Iterable, List, Tuple

from repro.core.interface import SpatialIndex
from repro.core.queries.spec import QuerySpec, execute_spec
from repro.geometry import Point, Segment
from repro.obs.explain import (
    CAUSE_SEGMENT_TABLE,
    COUNT_CANDIDATES,
    COUNT_DUPLICATES,
    COUNT_RESULTS,
    COUNT_SEGMENT_FETCHES,
)
from repro.obs.trace import TRACER


def incident_segments_with_geometry(
    index: SpatialIndex, p: Point
) -> List[Tuple[int, Segment]]:
    """Segments incident at ``p``, with their fetched geometry.

    .. deprecated::
        Thin shim; execute ``QuerySpec.incident(p)`` through a
        :class:`~repro.core.interface.TraversalBackend` instead.
    """
    warnings.warn(
        "incident_segments_with_geometry() is deprecated; execute "
        "QuerySpec.incident() through a TraversalBackend",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_spec(index, QuerySpec.incident(p))


def scalar_incident_segments(
    index: SpatialIndex, p: Point
) -> List[Tuple[int, Segment]]:
    """Scalar reference implementation of the incidence lookup.

    The polygon traversal (query 4) calls this once per vertex and needs
    the directions of the incident edges, so the fetched geometry is
    returned rather than thrown away.
    """
    if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
        return verify_incident_profiled(
            index, index.candidate_ids_at_point(p), p, prof
        )
    return verify_incident(index, index.candidate_ids_at_point(p), p)


def verify_incident(
    index: SpatialIndex, candidates: Iterable[int], p: Point
) -> List[Tuple[int, Segment]]:
    """Dedup/fetch/verify loop shared by both backends."""
    out: List[Tuple[int, Segment]] = []
    seen = set()
    for seg_id in candidates:
        if seg_id in seen:
            continue
        seen.add(seg_id)
        seg = index.ctx.segments.fetch(seg_id)
        if seg.has_endpoint(p):
            out.append((seg_id, seg))
    return out


def verify_incident_profiled(
    index: SpatialIndex, candidates: Iterable[int], p: Point, prof
) -> List[Tuple[int, Segment]]:
    """The same dedup/verify loop, attributing the segment-table fetches."""
    counters = index.ctx.counters
    out: List[Tuple[int, Segment]] = []
    seen = set()
    for seg_id in candidates:
        prof.count(COUNT_CANDIDATES)
        if seg_id in seen:
            prof.count(COUNT_DUPLICATES)
            continue
        seen.add(seg_id)
        with prof.charge(CAUSE_SEGMENT_TABLE, counters) as bucket:
            seg = index.ctx.segments.fetch(seg_id)
        bucket.node_visits += 1
        prof.count(COUNT_SEGMENT_FETCHES)
        if seg.has_endpoint(p):
            out.append((seg_id, seg))
            prof.count(COUNT_RESULTS)
    return out


def segments_at_point(index: SpatialIndex, p: Point) -> List[int]:
    """**Query 1**: ids of all segments with an endpoint at ``p``.

    .. deprecated::
        Thin shim; execute ``QuerySpec.point(p)`` through a backend.
    """
    warnings.warn(
        "segments_at_point() is deprecated; execute QuerySpec.point() "
        "through a TraversalBackend",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_spec(index, QuerySpec.point(p))


def segments_at_other_endpoint(
    index: SpatialIndex, p: Point, seg_id: int
) -> Tuple[Point, List[int]]:
    """**Query 2**: incidences at the other endpoint of a given segment.

    .. deprecated::
        Thin shim; execute ``QuerySpec.other_endpoint(p, seg_id)``
        through a backend.
    """
    warnings.warn(
        "segments_at_other_endpoint() is deprecated; execute "
        "QuerySpec.other_endpoint() through a TraversalBackend",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_spec(index, QuerySpec.other_endpoint(p, seg_id))


def other_endpoint_via(index: SpatialIndex, p: Point, seg_id: int, backend):
    """Query 2 driver, composed from two backend point lookups.

    ``p`` is one endpoint of segment ``seg_id``; the segment is located by
    a point query at ``p`` (as the paper's formulation implies), then a
    second point query runs at its other endpoint. Returns that endpoint
    and the incident segment ids (excluding ``seg_id`` itself).
    """
    target = None
    for sid, seg in backend.run(index, QuerySpec.incident(p)):
        if sid == seg_id:
            target = seg
            break
    if target is None:
        raise KeyError(f"segment {seg_id} is not incident at {p!r}")
    other = target.other_endpoint(p)
    ids = backend.run(index, QuerySpec.point(other))
    return other, [sid for sid in ids if sid != seg_id]
