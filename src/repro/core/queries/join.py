"""Spatial intersection join (map overlay, Section 7).

The paper's concluding remarks argue that for composing operations over
*different* maps -- "such as overlay of maps of different types" -- the
PMR quadtree beats the R+-tree because "the decomposition lines are
always in the same positions": two quadtrees over the same world are
block-aligned, so an overlay is one synchronized walk. The paper never
measures this; the ``overlay_join`` benchmark does, using the two join
algorithms here.

* :func:`rtree_join` -- the classic synchronized R-tree join (Brinkhoff,
  Kriegel & Seeger): descend pairs of nodes whose MBRs intersect.
  Works on any two R-tree variants (Guttman or R*).
* :func:`quadtree_join` -- the aligned quadtree join: walk both block
  directories in lockstep; block pairs are either identical regions or
  ancestor/descendant, never partially overlapping, so no rectangle
  intersection tests are needed above the bucket level.

Both return the set of ``(seg_id_a, seg_id_b)`` pairs whose segments
intersect, verified against actual geometry (each fetch is a segment
comparison on its own structure's counters).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.pmr.blocks import PMRBlock
from repro.core.pmr.pmr import PMRQuadtree
from repro.core.rtree.node import RTreeNode
from repro.core.rtree.rtree import GuttmanRTree
from repro.geometry import Segment
from repro.geometry.predicates import segments_intersect

Pair = Tuple[int, int]


def _verify_pair(
    a: GuttmanRTree, b, sid_a: int, sid_b: int, cache_a: Dict, cache_b: Dict
) -> bool:
    seg_a = cache_a.get(sid_a)
    if seg_a is None:
        seg_a = cache_a[sid_a] = a.ctx.segments.fetch(sid_a)
    seg_b = cache_b.get(sid_b)
    if seg_b is None:
        seg_b = cache_b[sid_b] = b.ctx.segments.fetch(sid_b)
    return segments_intersect(seg_a.start, seg_a.end, seg_b.start, seg_b.end)


def rtree_join(a: GuttmanRTree, b: GuttmanRTree) -> Set[Pair]:
    """Synchronized descent over two R-trees.

    Node pairs with intersecting MBRs are expanded together; when the
    trees have different heights the deeper side keeps descending alone.
    Every rectangle pair examined charges one bounding box computation to
    *each* structure (both nodes are in memory for the test).
    """
    results: Set[Pair] = set()
    cache_a: Dict[int, Segment] = {}
    cache_b: Dict[int, Segment] = {}

    # (page_a, page_b) pairs; read both nodes through their own pools.
    stack: List[Tuple[int, int]] = [(a._root_id, b._root_id)]
    while stack:
        pa, pb = stack.pop()
        na: RTreeNode = a.ctx.pool.get(pa)
        nb: RTreeNode = b.ctx.pool.get(pb)
        pairs_tested = 0

        if na.is_leaf and nb.is_leaf:
            for ra, sid_a in na.entries:
                for rb, sid_b in nb.entries:
                    pairs_tested += 1
                    if ra.intersects(rb) and _verify_pair(
                        a, b, sid_a, sid_b, cache_a, cache_b
                    ):
                        results.add((sid_a, sid_b))
        elif nb.is_leaf or (not na.is_leaf and len(na.entries) >= len(nb.entries)):
            # Expand a's side against all of b's entries.
            for ra, child_a in na.entries:
                for rb, _ in nb.entries:
                    pairs_tested += 1
                if any(ra.intersects(rb) for rb, _ in nb.entries):
                    stack.append((child_a, pb))
        else:
            for rb, child_b in nb.entries:
                for ra, _ in na.entries:
                    pairs_tested += 1
                if any(ra.intersects(rb) for ra, _ in na.entries):
                    stack.append((pa, child_b))

        a.ctx.counters.bbox_comps += pairs_tested
        b.ctx.counters.bbox_comps += pairs_tested
    return results


def quadtree_join(a: PMRQuadtree, b: PMRQuadtree) -> Set[Pair]:
    """Aligned overlay of two PMR (or PM) quadtrees over the same world.

    Raises ``ValueError`` when the worlds differ (alignment is the whole
    point). Bucket computations are charged per bucket whose contents
    are read, exactly as in the single-map queries.
    """
    if a.world_size != b.world_size or a.max_depth != b.max_depth:
        raise ValueError("quadtree_join requires identical world decompositions")

    results: Set[Pair] = set()
    cache_a: Dict[int, Segment] = {}
    cache_b: Dict[int, Segment] = {}

    def leaf_values(tree: PMRQuadtree, block: PMRBlock) -> List[int]:
        tree.ctx.counters.bbox_comps += 1
        return [tree._seg_id_of(v) for v in tree.btree.scan_eq(tree._code(block))]

    def _cross(first: List[int], second: List[int], first_is_a: bool) -> None:
        for f in first:
            for s in second:
                pair = (f, s) if first_is_a else (s, f)
                if pair in results:
                    continue
                if _verify_pair(a, b, pair[0], pair[1], cache_a, cache_b):
                    results.add(pair)

    def join_leaf_subtree(
        leaf_ids: List[int],
        other_tree: PMRQuadtree,
        other_block: PMRBlock,
        leaf_is_a: bool,
    ) -> None:
        """Cross one leaf's contents with every bucket under a subtree."""
        if not leaf_ids:
            return
        if other_block.children is not None:
            for child in other_block.children:
                join_leaf_subtree(leaf_ids, other_tree, child, leaf_is_a)
            return
        other_ids = leaf_values(other_tree, other_block)
        _cross(leaf_ids, other_ids, first_is_a=leaf_is_a)

    def walk(block_a: PMRBlock, block_b: PMRBlock) -> None:
        a_leaf = block_a.children is None
        b_leaf = block_b.children is None
        if a_leaf and b_leaf:
            ids_a = leaf_values(a, block_a)
            if not ids_a:
                return
            _cross(ids_a, leaf_values(b, block_b), first_is_a=True)
        elif a_leaf:
            ids_a = leaf_values(a, block_a)
            join_leaf_subtree(ids_a, b, block_b, leaf_is_a=True)
        elif b_leaf:
            ids_b = leaf_values(b, block_b)
            join_leaf_subtree(ids_b, a, block_a, leaf_is_a=False)
        else:
            for ca, cb in zip(block_a.children, block_b.children):
                walk(ca, cb)

    walk(a.root, b.root)
    return results


def brute_force_join(
    segments_a: List[Segment], segments_b: List[Segment]
) -> Set[Pair]:
    """O(n x m) oracle for the tests."""
    out: Set[Pair] = set()
    for i, sa in enumerate(segments_a):
        for j, sb in enumerate(segments_b):
            if segments_intersect(sa.start, sa.end, sb.start, sb.end):
                out.add((i, j))
    return out