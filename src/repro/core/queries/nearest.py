"""Query 3: nearest line segment, by incremental best-first search.

This is the Hjaltason-Samet priority-queue algorithm the paper cites (via
[11]): a single heap holds index nodes (keyed by a lower bound on the
distance to anything inside them), unverified segment candidates (keyed by
the bound inherited from the node that produced them), and verified
segments (keyed by their true distance). When a verified segment reaches
the top of the heap nothing nearer can exist, so results stream out in
distance order -- ``iter_nearest`` can be resumed for k-nearest queries at
no extra cost.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Iterator, Optional, Tuple, Union

from repro.core.interface import NNQuery, SegmentQuery, SpatialIndex
from repro.geometry import Point, Segment
from repro.geometry.distance import segment_segment_distance2
from repro.obs.explain import (
    CAUSE_SEGMENT_TABLE,
    COUNT_CANDIDATES,
    COUNT_SEGMENT_FETCHES,
)
from repro.obs.trace import TRACER

# Heap entry kinds. On distance ties, nodes expand and candidates verify
# BEFORE any verified segment is yielded, and verified ties order by
# segment id -- so exact ties (e.g. several segments meeting at the
# vertex nearest to the query) resolve identically in every structure.
_NODE = 0
_CANDIDATE = 1
_VERIFIED = 2


def _true_distance2(query: NNQuery, seg: Segment) -> float:
    if isinstance(query, SegmentQuery):
        q = query.segment
        return segment_segment_distance2(q.start, q.end, seg.start, seg.end)
    return seg.distance2_to_point(query)


def iter_nearest(
    index: SpatialIndex, query: Union[Point, Segment, SegmentQuery]
) -> Iterator[Tuple[int, float]]:
    """Yield ``(seg_id, distance^2)`` in non-decreasing distance order.

    ``query`` may be a point (the paper's query 3) or a segment (the
    "nearest line to a given line" of Section 2); segment queries are
    bounded by MBR-to-rectangle distances during the search.
    """
    if isinstance(query, Segment):
        query = SegmentQuery.of(query)
    tiebreak = count()
    heap = []
    for item in index.nn_start(query):
        kind = _CANDIDATE if item.is_segment else _NODE
        heapq.heappush(heap, (item.dist2, kind, next(tiebreak), item.ref))

    # Captured once per search, not per pop: the engine attaches the
    # EXPLAIN profile for the whole query before this generator advances.
    prof = TRACER.current_profile() if TRACER.profiling else None
    resolved = set()
    while heap:
        dist2, kind, _, ref = heapq.heappop(heap)
        if kind == _VERIFIED:
            yield ref, dist2
        elif kind == _CANDIDATE:
            if ref in resolved:
                continue
            resolved.add(ref)
            if prof is not None:
                prof.count(COUNT_CANDIDATES)
                with prof.charge(CAUSE_SEGMENT_TABLE, index.ctx.counters) as b:
                    seg = index.ctx.segments.fetch(ref)
                b.node_visits += 1
                prof.count(COUNT_SEGMENT_FETCHES)
            else:
                seg = index.ctx.segments.fetch(ref)
            true_d2 = _true_distance2(query, seg)
            heapq.heappush(heap, (true_d2, _VERIFIED, ref, ref))
        else:
            for item in index.nn_expand(ref, query):
                child_kind = _CANDIDATE if item.is_segment else _NODE
                if child_kind == _CANDIDATE and item.ref in resolved:
                    continue
                heapq.heappush(
                    heap, (item.dist2, child_kind, next(tiebreak), item.ref)
                )


def nearest_segment(
    index: SpatialIndex, p: Point
) -> Optional[Tuple[int, float]]:
    """**Query 3**: the nearest segment to ``p`` (or ``None`` if empty).

    .. deprecated::
        Thin shim; execute ``QuerySpec.nearest(p, 1)`` through a
        :class:`~repro.core.interface.TraversalBackend` instead.
    """
    import warnings

    warnings.warn(
        "nearest_segment() is deprecated; execute QuerySpec.nearest() "
        "through a TraversalBackend",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.queries.spec import QuerySpec, execute_spec

    out = execute_spec(index, QuerySpec.nearest(p, 1))
    return out[0] if out else None


def scalar_nearest_segment(
    index: SpatialIndex, p: Point
) -> Optional[Tuple[int, float]]:
    """Scalar reference implementation of query 3."""
    for seg_id, dist2 in iter_nearest(index, p):
        return seg_id, dist2
    return None


def nearest_k_segments(
    index: SpatialIndex, p: Point, k: int
) -> "list[Tuple[int, float]]":
    """The ``k`` nearest segments, by resuming the incremental search.

    .. deprecated::
        Thin shim; execute ``QuerySpec.nearest(p, k)`` through a
        :class:`~repro.core.interface.TraversalBackend` instead.
    """
    import warnings

    warnings.warn(
        "nearest_k_segments() is deprecated; execute QuerySpec.nearest() "
        "through a TraversalBackend",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.queries.spec import QuerySpec, execute_spec

    return execute_spec(index, QuerySpec.nearest(p, k))


def scalar_nearest_k(
    index: SpatialIndex, p: Point, k: int
) -> "list[Tuple[int, float]]":
    """Scalar reference implementation of k-nearest.

    Costs no more than a single nearest-neighbour query plus the extra
    expansion needed for the additional results -- the advantage of the
    incremental formulation over repeated range guessing. Both backends
    share this heap-driven search: its cost is dominated by node
    expansions and per-candidate geometry fetches that must stay
    charge-identical, so there is nothing to batch.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    out = []
    for seg_id, dist2 in iter_nearest(index, p):
        out.append((seg_id, dist2))
        if len(out) == k:
            break
    return out


def nearest_segment_to_segment(
    index: SpatialIndex, query: Segment, exclude: Optional[int] = None
) -> Optional[Tuple[int, float]]:
    """Section 2's other proximity question: the stored segment nearest
    to a *query segment* (e.g. "which other road runs closest to this
    one?"). ``exclude`` skips an id, typically the query segment's own
    when it is itself stored in the index."""
    for seg_id, dist2 in iter_nearest(index, query):
        if seg_id != exclude:
            return seg_id, dist2
    return None
