"""The "true" R+-tree of Faloutsos, Sellis & Roussopoulos.

Section 3 of the paper distinguishes three disjoint-decomposition
variants by what their non-leaf entries carry:

* the **k-d-B-tree** stores the raw partition rectangles;
* the **true R+-tree** stores, inside each partition, the *minimum
  enclosing rectangle of the contents* -- "this distinction minimizes
  dead space in the R+-tree";
* the paper's **hybrid** (our :class:`RPlusTree`) keeps MBRs only in the
  leaves.

Paper claims for the true variant relative to the k-d-B-tree / hybrid:
point searches can fail earlier on dead space, range and nearest queries
prune more, and building is slower because the MBRs must be maintained
on every insertion. The ablation benchmark measures all three.

Implementation: the partition structure and all insert/split machinery
are inherited from the hybrid (entries keep carrying partition
rectangles, so splits and routing are untouched); the per-child content
MBRs are maintained through the hybrid's mutation hooks in a sidecar map
and used by the search methods for pruning. A disk implementation would
keep the MBR inside the 20-byte tuple in place of the partition
rectangle and recover partitions from the split history, so the byte
accounting is unchanged -- the sidecar is navigation metadata exactly
like the PMR's block directory.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.interface import NNItem, query_lower_bound
from repro.core.rplus.node import RPlusNode
from repro.core.rplus.rplus import RPlusTree, _clip_rect
from repro.geometry import Point, Rect


class TrueRPlusTree(RPlusTree):
    name = "R+t"

    def __init__(self, ctx, world: Optional[Rect] = None, capacity=None) -> None:
        super().__init__(ctx, world=world, capacity=capacity)
        #: Content MBR per page, always clipped to the page's partition.
        #: Absent key = empty node (nothing can match inside it).
        self._content_mbr: Dict[int, Rect] = {}

    # ------------------------------------------------------------------
    # MBR maintenance through the hybrid's hooks
    # ------------------------------------------------------------------
    def _note_leaf_insert(self, page_id: int, region: Rect, mbr: Rect) -> None:
        clipped = _clip_rect(mbr, region)
        current = self._content_mbr.get(page_id)
        self._content_mbr[page_id] = (
            clipped if current is None else current.merged(clipped)
        )
        # Maintaining the enclosing rectangle is the extra work the paper
        # charges the true R+-tree for at build time.
        self.ctx.counters.bbox_comps += 1

    def _note_internal_insert(self, page_id: int, region: Rect, mbr: Rect) -> None:
        # The subtree below this node now holds (a piece of) the segment:
        # grow its content MBR by the clipped segment MBR. Splits below
        # recompute exact MBRs afterwards, which only tightens this.
        clipped = _clip_rect(mbr, region)
        current = self._content_mbr.get(page_id)
        self._content_mbr[page_id] = (
            clipped if current is None else current.merged(clipped)
        )
        self.ctx.counters.bbox_comps += 1

    def _note_node_rewritten(
        self, page_id: int, region: Rect, node: RPlusNode
    ) -> None:
        mbr: Optional[Rect] = None
        if node.is_leaf:
            for r, _ in node.entries:
                clipped = _clip_rect(r, region)
                mbr = clipped if mbr is None else mbr.merged(clipped)
        else:
            for r, child in node.entries:
                child_mbr = self._content_mbr.get(child)
                if child_mbr is None:
                    continue
                mbr = child_mbr if mbr is None else mbr.merged(child_mbr)
        self.ctx.counters.bbox_comps += len(node.entries)
        if mbr is None:
            self._content_mbr.pop(page_id, None)
        else:
            self._content_mbr[page_id] = _clip_rect(mbr, region)

    def _prune_rect(self, child: int, partition: Rect) -> Optional[Rect]:
        """The rectangle a search must test: the content MBR (or nothing
        at all for an empty subtree)."""
        return self._content_mbr.get(child)

    # ------------------------------------------------------------------
    # Searches (pruned by content MBRs)
    # ------------------------------------------------------------------
    def candidate_ids_at_point(self, p: Point) -> List[int]:
        out: List[int] = []
        pool = self.ctx.pool
        counters = self.ctx.counters
        stack = [self._root_id]
        while stack:
            page_id = stack.pop()
            node: RPlusNode = pool.get(page_id)
            counters.bbox_comps += len(node.entries)
            if node.is_leaf:
                out.extend(ref for r, ref in node.entries if r.contains_point(p))
            else:
                for r, child in node.entries:
                    prune = self._prune_rect(child, r)
                    if prune is not None and prune.contains_point(p):
                        stack.append(child)
        return out

    def candidate_ids_in_rect(self, rect: Rect) -> List[int]:
        out: List[int] = []
        pool = self.ctx.pool
        counters = self.ctx.counters
        stack = [self._root_id]
        while stack:
            page_id = stack.pop()
            node: RPlusNode = pool.get(page_id)
            counters.bbox_comps += len(node.entries)
            if node.is_leaf:
                out.extend(ref for r, ref in node.entries if r.intersects(rect))
            else:
                for r, child in node.entries:
                    prune = self._prune_rect(child, r)
                    if prune is not None and prune.intersects(rect):
                        stack.append(child)
        return out

    def nn_expand(self, ref: Any, p: Point) -> List[NNItem]:
        node: RPlusNode = self.ctx.pool.get(ref)
        self.ctx.counters.bbox_comps += len(node.entries)
        if node.is_leaf:
            if not node.entries:
                return []
            d = query_lower_bound(p, Rect.union_of(r for r, _ in node.entries))
            return [NNItem(d, True, child) for _, child in node.entries]
        out: List[NNItem] = []
        for r, child in node.entries:
            prune = self._prune_rect(child, r)
            if prune is None:
                continue  # empty subtree: nothing to visit
            out.append(NNItem(query_lower_bound(p, prune), False, child))
        return out

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        super().check_invariants()
        self._check_mbrs(self._root_id, self.world)

    def _check_mbrs(self, page_id: int, region: Rect) -> Optional[Rect]:
        """The sidecar MBR must contain the true content MBR (it may be
        loose after deletions, never tight-side wrong)."""
        node: RPlusNode = self.ctx.pool.get(page_id)
        actual: Optional[Rect] = None
        if node.is_leaf:
            for r, _ in node.entries:
                clipped = _clip_rect(r, region)
                actual = clipped if actual is None else actual.merged(clipped)
        else:
            for r, child in node.entries:
                child_mbr = self._check_mbrs(child, r)
                if child_mbr is not None:
                    actual = (
                        child_mbr if actual is None else actual.merged(child_mbr)
                    )
        stored = self._content_mbr.get(page_id)
        if actual is not None:
            assert stored is not None, f"missing content MBR for page {page_id}"
            assert stored.contains_rect(actual), (
                f"content MBR of page {page_id} does not cover its contents"
            )
            assert region.contains_rect(stored), (
                f"content MBR of page {page_id} escapes its partition"
            )
        return stored
