"""The hybrid R+-tree / k-d-B-tree used in the paper.

Following Section 3 of Hoel & Samet:

* Non-leaf entries carry the raw *partition* rectangles of the k-d-B-tree
  (no minimum bounding rectangles above the leaves); sibling regions are
  disjoint and tile the parent region exactly.
* Leaf entries carry segment MBRs; a segment is stored in **every** leaf
  whose region it intersects, so point search follows a single path.
* A node is split by the axis-parallel line that cuts the fewest line
  segments (bounding rectangles for non-leaf nodes); ties are broken by
  the evenness of the resulting distribution.
* Splitting a non-leaf region along a line forces every straddling child
  to split by the same line, recursively (the k-d-B downward cascade).

As the paper notes, minimum fill cannot be guaranteed: a downward cascade
can produce nearly-empty (even empty) nodes, and a leaf whose segments all
cross every candidate line cannot be usefully split. In the latter
(pathological, never observed on road maps) case the leaf is left
overfull, and :meth:`page_count` charges the overflow pages it would
occupy on disk.
"""

from __future__ import annotations

from math import ceil
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.interface import WORLD_SIZE, NNItem, SpatialIndex, query_lower_bound
from repro.core.profiled import profiled_nn_expand, profiled_tree_search
from repro.core.rplus.node import Entry, RPlusNode
from repro.obs.trace import TRACER
from repro.geometry import Point, Rect, Segment
from repro.storage.context import StorageContext
from repro.storage.layout import (
    RTREE_PAGE_HEADER_BYTES,
    RTREE_TUPLE_BYTES,
    entries_per_page,
)

#: A (region, page_id) pair describing one tile of a partitioned region.
Piece = Tuple[Rect, int]


def _split_region(region: Rect, axis: int, pos: float) -> Tuple[Rect, Rect]:
    if axis == 0:
        return (
            Rect(region.xmin, region.ymin, pos, region.ymax),
            Rect(pos, region.ymin, region.xmax, region.ymax),
        )
    return (
        Rect(region.xmin, region.ymin, region.xmax, pos),
        Rect(region.xmin, pos, region.xmax, region.ymax),
    )


def _clip_rect(r: Rect, region: Rect) -> Rect:
    """Clip ``r`` to ``region`` (callers guarantee they intersect)."""
    clipped = r.intersection(region)
    return clipped if clipped is not None else r


class RPlusTree(SpatialIndex):
    name = "R+"

    #: Available split-line rules. The paper: "The R+-tree implementations
    #: described in the literature do not specify a splitting policy, and
    #: it should be clear that there are a number of possible ways to
    #: proceed." ``min_cut`` is the paper's choice (fewest segments cut,
    #: ties by evenness); ``median`` is the classic k-d-B rule (median
    #: entry boundary on the wider axis), ablated in the benchmarks.
    SPLIT_RULES = ("min_cut", "median")

    def __init__(
        self,
        ctx: StorageContext,
        world: Optional[Rect] = None,
        capacity: Optional[int] = None,
        split_rule: str = "min_cut",
    ) -> None:
        super().__init__(ctx)
        if split_rule not in self.SPLIT_RULES:
            raise ValueError(
                f"split_rule must be one of {self.SPLIT_RULES}, got {split_rule!r}"
            )
        self.split_rule = split_rule
        self.world = world if world is not None else Rect(0, 0, WORLD_SIZE, WORLD_SIZE)
        self.capacity = (
            capacity
            if capacity is not None
            else entries_per_page(
                ctx.page_size, RTREE_TUPLE_BYTES, RTREE_PAGE_HEADER_BYTES
            )
        )
        if self.capacity < 4:
            raise ValueError(f"page too small: node capacity {self.capacity} < 4")
        self._root_id = ctx.pool.create(RPlusNode(is_leaf=True))
        self._height = 1
        self._page_ids = {self._root_id}
        self._seg_count = 0
        self._entry_count = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, seg_id: int) -> None:
        seg = self.ctx.segments.fetch(seg_id)
        mbr = seg.mbr()
        pieces = self._insert_rec(self._root_id, self.world, seg, seg_id, mbr)
        if pieces is not None:
            self._grow_root(pieces)
        self._seg_count += 1

    def delete(self, seg_id: int) -> None:
        """Remove the segment from every leaf holding a copy.

        Routing uses the segment's MBR, not its exact geometry: leaf
        placement is MBR-conservative (a split can assign a copy to a
        side the segment itself only grazes), so deletion must visit at
        least every subtree placement could have reached.
        """
        seg = self.ctx.segments.fetch(seg_id)
        removed = self._delete_rec(self._root_id, self.world, seg.mbr(), seg_id)
        if removed == 0:
            raise KeyError(f"segment {seg_id} not in the tree")
        self._entry_count -= removed
        self._seg_count -= 1

    # ------------------------------------------------------------------
    # Searches
    # ------------------------------------------------------------------
    def candidate_ids_at_point(self, p: Point) -> List[int]:
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            return profiled_tree_search(
                prof,
                self.ctx.pool,
                self.ctx.counters,
                self._root_id,
                lambda r: r.contains_point(p),
            )
        out: List[int] = []
        pool = self.ctx.pool
        counters = self.ctx.counters
        stack = [self._root_id]
        while stack:
            node: RPlusNode = pool.get(stack.pop())
            counters.bbox_comps += len(node.entries)
            if node.is_leaf:
                out.extend(ref for r, ref in node.entries if r.contains_point(p))
            else:
                # Disjoint regions: at most the boundary-sharing children match.
                stack.extend(ref for r, ref in node.entries if r.contains_point(p))
        return out

    def candidate_ids_in_rect(self, rect: Rect) -> List[int]:
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            return profiled_tree_search(
                prof,
                self.ctx.pool,
                self.ctx.counters,
                self._root_id,
                lambda r: r.intersects(rect),
            )
        out: List[int] = []
        pool = self.ctx.pool
        counters = self.ctx.counters
        stack = [self._root_id]
        while stack:
            node: RPlusNode = pool.get(stack.pop())
            counters.bbox_comps += len(node.entries)
            if node.is_leaf:
                out.extend(ref for r, ref in node.entries if r.intersects(rect))
            else:
                stack.extend(ref for r, ref in node.entries if r.intersects(rect))
        return out

    def nn_start(self, p: Point) -> List[NNItem]:
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            prof.set_node_level(self._root_id, 0)
        return [NNItem(0.0, False, self._root_id)]

    def nn_expand(self, ref: Any, p: Point) -> List[NNItem]:
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            return profiled_nn_expand(
                prof,
                self.ctx.pool,
                self.ctx.counters,
                ref,
                p,
                lambda node: Rect.union_of(r for r, _ in node.entries),
            )
        node: RPlusNode = self.ctx.pool.get(ref)
        self.ctx.counters.bbox_comps += len(node.entries)
        if node.is_leaf:
            # Examining a leaf examines its segments (see the R-tree note):
            # candidates inherit the leaf's lower bound.
            if not node.entries:
                return []
            d = query_lower_bound(p, Rect.union_of(r for r, _ in node.entries))
            return [NNItem(d, True, child) for _, child in node.entries]
        return [
            NNItem(query_lower_bound(p, r), False, child)
            for r, child in node.entries
        ]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def page_count(self) -> int:
        """Pages including overflow pages of any pathologically-full leaf."""
        extra = 0
        for pid in self._page_ids:
            node = self.ctx.disk.peek(pid)
            if len(node.entries) > self.capacity:
                extra += ceil(len(node.entries) / self.capacity) - 1
        return len(self._page_ids) + extra

    def height(self) -> int:
        return self._height

    def entry_count(self) -> int:
        """Total leaf entries; exceeds the segment count due to duplication."""
        return self._entry_count

    def segment_count(self) -> int:
        return self._seg_count

    def leaf_occupancy(self) -> float:
        """Average entries per leaf page (bypasses the pool: instrumentation)."""
        leaves = entries = 0
        for pid in self._page_ids:
            node = self.ctx.disk.peek(pid)
            if node.is_leaf:
                leaves += 1
                entries += len(node.entries)
        return entries / leaves if leaves else 0.0

    # ------------------------------------------------------------------
    # Insertion internals
    # ------------------------------------------------------------------
    def _insert_rec(
        self, page_id: int, region: Rect, seg: Segment, seg_id: int, mbr: Rect
    ) -> Optional[List[Piece]]:
        """Insert into the subtree; return replacement pieces if it split."""
        pool = self.ctx.pool
        node: RPlusNode = pool.get(page_id)

        if node.is_leaf:
            node.entries.append((mbr, seg_id))
            self._entry_count += 1
            pool.mark_dirty(page_id)
            self._note_leaf_insert(page_id, region, mbr)
            if len(node.entries) > self.capacity:
                return self._split_leaf(page_id, region, node)
            return None

        self.ctx.counters.bbox_comps += len(node.entries)
        replacements: Dict[int, List[Piece]] = {}
        for r, child in node.entries:
            if seg.intersects_rect(r):
                pieces = self._insert_rec(child, r, seg, seg_id, mbr)
                if pieces is not None:
                    replacements[child] = pieces
        self._note_internal_insert(page_id, region, mbr)
        if replacements:
            new_entries: List[Entry] = []
            for r, child in node.entries:
                if child in replacements:
                    new_entries.extend(replacements[child])
                else:
                    new_entries.append((r, child))
            node.entries = new_entries
            pool.mark_dirty(page_id)
            if len(node.entries) > self.capacity:
                return self._split_internal(page_id, region, node)
        return None

    def _grow_root(self, pieces: List[Piece]) -> None:
        root = RPlusNode(is_leaf=False, entries=list(pieces))
        self._root_id = self.ctx.pool.create(root)
        self._page_ids.add(self._root_id)
        self._height += 1
        self._note_node_rewritten(self._root_id, self.world, root)

    # -- subclass hooks ---------------------------------------------------
    def _note_leaf_insert(self, page_id: int, region: Rect, mbr: Rect) -> None:
        """Called after an entry lands in a leaf (hook for the true
        R+-tree's content-MBR maintenance). No-op in the hybrid."""

    def _note_internal_insert(self, page_id: int, region: Rect, mbr: Rect) -> None:
        """Called for each internal node an insertion descends through
        (hook for content-MBR maintenance). No-op in the hybrid."""

    def _note_node_rewritten(
        self, page_id: int, region: Rect, node: RPlusNode
    ) -> None:
        """Called whenever a split rewrites a node's entry list (hook for
        content-MBR maintenance). No-op in the hybrid."""

    # -- split-line selection ------------------------------------------
    def _choose_split_line(
        self, extents: Sequence[Tuple[float, float, float, float]], region: Rect
    ) -> Optional[Tuple[int, float]]:
        """Pick (axis, position) per the configured split rule.

        ``extents`` are (xmin, ymin, xmax, ymax) clipped to ``region``.
        The default rule cuts the fewest extents, ties broken by the
        evenness of the split; the ``median`` rule takes the median
        extent boundary on the region's longer axis. Returns ``None``
        when no strictly-interior candidate line exists.
        """
        if self.split_rule == "median":
            return self._median_split_line(extents, region)
        best: Optional[Tuple[int, float]] = None
        best_key: Optional[Tuple[int, int]] = None
        total = len(extents)

        for axis in (0, 1):
            lo_r = region.xmin if axis == 0 else region.ymin
            hi_r = region.xmax if axis == 0 else region.ymax
            candidates = set()
            for e in extents:
                lo = e[axis]
                hi = e[axis + 2]
                if lo_r < lo < hi_r:
                    candidates.add(lo)
                if lo_r < hi < hi_r:
                    candidates.add(hi)
            mid = (lo_r + hi_r) / 2.0
            if lo_r < mid < hi_r:
                candidates.add(mid)

            for pos in candidates:
                cuts = left = right = 0
                for e in extents:
                    lo = e[axis]
                    hi = e[axis + 2]
                    if lo < pos < hi:
                        cuts += 1
                        left += 1
                        right += 1
                    else:
                        in_left = lo < pos or hi <= pos
                        if in_left:
                            left += 1
                        if hi > pos or lo >= pos:
                            right += 1
                # A split must make progress on at least one side.
                if left >= total and right >= total:
                    continue
                key = (cuts, abs(left - right))
                if best_key is None or key < best_key:
                    best_key = key
                    best = (axis, pos)
        return best

    def _median_split_line(
        self, extents: Sequence[Tuple[float, float, float, float]], region: Rect
    ) -> Optional[Tuple[int, float]]:
        """The k-d-B rule: median entry midpoint on the longer axis,
        falling back to the other axis, then to ``min_cut``."""
        axes = (0, 1) if region.width >= region.height else (1, 0)
        for axis in axes:
            lo_r = region.xmin if axis == 0 else region.ymin
            hi_r = region.xmax if axis == 0 else region.ymax
            mids = sorted((e[axis] + e[axis + 2]) / 2.0 for e in extents)
            pos = mids[len(mids) // 2]
            if lo_r < pos < hi_r:
                # The split must make progress on at least one side.
                left = right = 0
                for e in extents:
                    in_left, in_right = self._assign_side(e, axis, pos)
                    left += in_left
                    right += in_right
                if left < len(extents) or right < len(extents):
                    return (axis, pos)
        # Degenerate medians: fall back to the cut-minimizing search.
        saved, self.split_rule = self.split_rule, "min_cut"
        try:
            return self._choose_split_line(extents, region)
        finally:
            self.split_rule = saved

    @staticmethod
    def _assign_side(
        extent: Tuple[float, float, float, float], axis: int, pos: float
    ) -> Tuple[bool, bool]:
        """(in_left, in_right) membership of a clipped extent w.r.t. a line."""
        lo = extent[axis]
        hi = extent[axis + 2]
        in_left = lo < pos or hi <= pos
        in_right = hi > pos or lo >= pos
        return in_left, in_right

    # -- leaf split ------------------------------------------------------
    def _split_leaf(
        self, page_id: int, region: Rect, node: RPlusNode
    ) -> Optional[List[Piece]]:
        extents = [tuple(_clip_rect(r, region)) for r, _ in node.entries]
        choice = self._choose_split_line(extents, region)
        if choice is None:
            return None  # pathological: leave the leaf overfull
        axis, pos = choice
        left_region, right_region = _split_region(region, axis, pos)

        left_entries: List[Entry] = []
        right_entries: List[Entry] = []
        for extent, entry in zip(extents, node.entries):
            in_left, in_right = self._assign_side(extent, axis, pos)
            if in_left:
                left_entries.append(entry)
            if in_right:
                right_entries.append(entry)

        self._entry_count += len(left_entries) + len(right_entries) - len(node.entries)
        node.entries = left_entries
        self.ctx.pool.mark_dirty(page_id)
        right_node = RPlusNode(is_leaf=True, entries=right_entries)
        right_id = self.ctx.pool.create(right_node)
        self._page_ids.add(right_id)
        self._note_node_rewritten(page_id, left_region, node)
        self._note_node_rewritten(right_id, right_region, right_node)
        return [(left_region, page_id), (right_region, right_id)]

    # -- internal split (with downward cascade) ---------------------------
    def _split_internal(
        self, page_id: int, region: Rect, node: RPlusNode
    ) -> Optional[List[Piece]]:
        extents = [tuple(r) for r, _ in node.entries]
        choice = self._choose_split_line(extents, region)
        if choice is None:
            return None
        axis, pos = choice
        left_region, right_region = _split_region(region, axis, pos)

        left_entries: List[Entry] = []
        right_entries: List[Entry] = []
        for r, child in node.entries:
            if (r.xmax if axis == 0 else r.ymax) <= pos:
                left_entries.append((r, child))
            elif (r.xmin if axis == 0 else r.ymin) >= pos:
                right_entries.append((r, child))
            else:
                l_piece, r_piece = self._split_subtree(child, r, axis, pos)
                left_entries.append(l_piece)
                right_entries.append(r_piece)

        node.entries = left_entries
        self.ctx.pool.mark_dirty(page_id)
        right_node = RPlusNode(is_leaf=False, entries=right_entries)
        right_id = self.ctx.pool.create(right_node)
        self._page_ids.add(right_id)
        self._note_node_rewritten(page_id, left_region, node)
        self._note_node_rewritten(right_id, right_region, right_node)
        return [(left_region, page_id), (right_region, right_id)]

    def _split_subtree(
        self, page_id: int, region: Rect, axis: int, pos: float
    ) -> Tuple[Piece, Piece]:
        """Split a whole subtree by a line (the k-d-B downward cascade)."""
        pool = self.ctx.pool
        node: RPlusNode = pool.get(page_id)
        left_region, right_region = _split_region(region, axis, pos)

        left_entries: List[Entry] = []
        right_entries: List[Entry] = []
        if node.is_leaf:
            for r, ref in node.entries:
                extent = tuple(_clip_rect(r, region))
                in_left, in_right = self._assign_side(extent, axis, pos)
                if in_left:
                    left_entries.append((r, ref))
                if in_right:
                    right_entries.append((r, ref))
            self._entry_count += (
                len(left_entries) + len(right_entries) - len(node.entries)
            )
        else:
            for r, child in node.entries:
                if (r.xmax if axis == 0 else r.ymax) <= pos:
                    left_entries.append((r, child))
                elif (r.xmin if axis == 0 else r.ymin) >= pos:
                    right_entries.append((r, child))
                else:
                    l_piece, r_piece = self._split_subtree(child, r, axis, pos)
                    left_entries.append(l_piece)
                    right_entries.append(r_piece)

        node.entries = left_entries
        pool.mark_dirty(page_id)
        right_node = RPlusNode(node.is_leaf, right_entries)
        right_id = pool.create(right_node)
        self._page_ids.add(right_id)
        self._note_node_rewritten(page_id, left_region, node)
        self._note_node_rewritten(right_id, right_region, right_node)
        return (left_region, page_id), (right_region, right_id)

    # ------------------------------------------------------------------
    # Deletion internals
    # ------------------------------------------------------------------
    def _delete_rec(
        self, page_id: int, region: Rect, mbr: Rect, seg_id: int
    ) -> int:
        pool = self.ctx.pool
        node: RPlusNode = pool.get(page_id)
        if node.is_leaf:
            before = len(node.entries)
            node.entries = [e for e in node.entries if e[1] != seg_id]
            removed = before - len(node.entries)
            if removed:
                pool.mark_dirty(page_id)
            return removed
        removed = 0
        self.ctx.counters.bbox_comps += len(node.entries)
        for r, child in node.entries:
            if mbr.intersects(r):
                removed += self._delete_rec(child, r, mbr, seg_id)
        return removed

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        pool = self.ctx.pool
        seen_pages = set()
        leaf_entry_total = 0
        seg_ids = set()

        def walk(page_id: int, region: Rect, depth: int) -> None:
            nonlocal leaf_entry_total
            assert page_id in self._page_ids, f"page {page_id} untracked"
            assert page_id not in seen_pages, f"page {page_id} shared"
            seen_pages.add(page_id)
            node: RPlusNode = pool.get(page_id)
            if node.is_leaf:
                assert depth == self._height, "leaf at wrong depth"
                leaf_entry_total += len(node.entries)
                ids_here = [ref for _, ref in node.entries]
                assert len(ids_here) == len(set(ids_here)), "duplicate entry in leaf"
                seg_ids.update(ids_here)
                for r, _ in node.entries:
                    assert r.intersects(region), "leaf entry outside region"
                return
            # The downward cascade can leave an internal node with a single
            # child (the k-d-B-tree's known near-empty-node deficiency);
            # zero children would break region coverage and is a bug.
            assert len(node.entries) >= 1, "internal node with no children"
            area = 0.0
            for i, (r, child) in enumerate(node.entries):
                assert region.contains_rect(r), "child region escapes parent"
                area += r.area()
                for r2, _ in node.entries[i + 1 :]:
                    assert r.overlap_area(r2) == 0, "sibling regions overlap"
                walk(child, r, depth + 1)
            assert abs(area - region.area()) < 1e-6 * max(region.area(), 1.0), (
                "child regions do not tile the parent region"
            )

        walk(self._root_id, self.world, 1)
        assert seen_pages == self._page_ids, "page bookkeeping mismatch"
        assert leaf_entry_total == self._entry_count, "entry count mismatch"
        assert len(seg_ids) == self._seg_count, "segment count mismatch"

        # Completeness: every stored segment is present in every leaf whose
        # region contains a positive-length piece of it (a segment grazing a
        # region only at a boundary point may legitimately live in the
        # neighbouring leaf instead). Uses the instrumentation bypass.
        for seg_id in seg_ids:
            seg = self.ctx.segments.peek(seg_id)
            self._check_complete(self._root_id, self.world, seg, seg_id)

    def _check_complete(self, page_id: int, region: Rect, seg, seg_id: int) -> None:
        node: RPlusNode = self.ctx.pool.get(page_id)
        if node.is_leaf:
            qedge = seg.clipped(region)
            if qedge is None or qedge.is_degenerate():
                return
            assert any(ref == seg_id for _, ref in node.entries), (
                f"segment {seg_id} missing from a leaf its geometry crosses"
            )
            return
        for r, child in node.entries:
            if seg.intersects_rect(r):
                self._check_complete(child, r, seg, seg_id)
