"""The paper's hybrid R+-tree / k-d-B-tree, and the true R+-tree."""

from repro.core.rplus.node import RPlusNode
from repro.core.rplus.rplus import RPlusTree
from repro.core.rplus.true_rplus import TrueRPlusTree

__all__ = ["RPlusNode", "RPlusTree", "TrueRPlusTree"]
