"""R+-tree node payload (one node per disk page)."""

from __future__ import annotations

from typing import List, Tuple

from repro.geometry import Rect

#: In non-leaf nodes entries are (partition region, child page id); the
#: regions of one node tile its own region exactly (the k-d-B discipline
#: the paper's hybrid adopts). In leaves entries are (segment MBR, seg id).
Entry = Tuple[Rect, int]


class RPlusNode:
    __slots__ = ("is_leaf", "entries")

    def __init__(self, is_leaf: bool, entries: List[Entry] = None) -> None:
        self.is_leaf = is_leaf
        self.entries: List[Entry] = entries if entries is not None else []

    def __len__(self) -> int:
        return len(self.entries)
