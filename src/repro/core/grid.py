"""The uniform grid of Section 2 (Figure 1), as an extension baseline.

Space is cut into ``granularity x granularity`` equal cells; a segment is
registered in every cell it crosses. Cell contents live in the same paged
B-tree layout as the PMR quadtree (8-byte tuples keyed by the cell's
Morton index), so storage and disk accounting are directly comparable.
As the paper notes, the uniform grid is ideal for uniformly distributed
data and wasteful for skewed data -- the benchmarks show exactly that on
the road maps.
"""

from __future__ import annotations

from typing import Any, List

from repro.btree import BPlusTree
from repro.core.interface import WORLD_SIZE, NNItem, SpatialIndex, query_lower_bound
from repro.core.pmr.locational import interleave
from repro.geometry import Point, Rect
from repro.storage.context import StorageContext
from repro.storage.layout import (
    BTREE_INTERNAL_ENTRY_BYTES,
    BTREE_PAGE_HEADER_BYTES,
    PMR_TUPLE_BYTES,
    entries_per_page,
)


class UniformGrid(SpatialIndex):
    name = "grid"

    def __init__(
        self,
        ctx: StorageContext,
        granularity: int = 64,
        world_size: int = WORLD_SIZE,
    ) -> None:
        super().__init__(ctx)
        if granularity < 1 or granularity & (granularity - 1):
            raise ValueError(
                f"granularity must be a positive power of two, got {granularity}"
            )
        self.granularity = granularity
        self.world_size = world_size
        self.cell_size = world_size / granularity
        cap = entries_per_page(ctx.page_size, PMR_TUPLE_BYTES, BTREE_PAGE_HEADER_BYTES)
        internal_cap = entries_per_page(
            ctx.page_size, BTREE_INTERNAL_ENTRY_BYTES, BTREE_PAGE_HEADER_BYTES
        )
        self.btree = BPlusTree(
            ctx.pool, leaf_capacity=cap, internal_capacity=internal_cap
        )
        self._seg_count = 0

    # ------------------------------------------------------------------
    # Cell helpers
    # ------------------------------------------------------------------
    def _cell_rect(self, cx: int, cy: int) -> Rect:
        s = self.cell_size
        return Rect(cx * s, cy * s, (cx + 1) * s, (cy + 1) * s)

    def _cell_of(self, x: float, y: float) -> tuple:
        g = self.granularity
        cx = min(int(x / self.cell_size), g - 1)
        cy = min(int(y / self.cell_size), g - 1)
        return max(cx, 0), max(cy, 0)

    def _cells_of_segment(self, seg) -> List[tuple]:
        """All grid cells a segment crosses (closed intersection)."""
        mbr = seg.mbr()
        cx0, cy0 = self._cell_of(mbr.xmin, mbr.ymin)
        cx1, cy1 = self._cell_of(mbr.xmax, mbr.ymax)
        out = []
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                if seg.intersects_rect(self._cell_rect(cx, cy)):
                    out.append((cx, cy))
        return out

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, seg_id: int) -> None:
        seg = self.ctx.segments.fetch(seg_id)
        for cx, cy in self._cells_of_segment(seg):
            self.btree.insert(interleave(cx, cy), seg_id)
        self._seg_count += 1

    def delete(self, seg_id: int) -> None:
        seg = self.ctx.segments.fetch(seg_id)
        removed = 0
        for cx, cy in self._cells_of_segment(seg):
            key = interleave(cx, cy)
            if self.btree.contains(key, seg_id):
                self.btree.delete(key, seg_id)
                removed += 1
        if removed == 0:
            raise KeyError(f"segment {seg_id} not in the grid")
        self._seg_count -= 1

    # ------------------------------------------------------------------
    # Searches
    # ------------------------------------------------------------------
    def candidate_ids_at_point(self, p: Point) -> List[int]:
        cx, cy = self._cell_of(p.x, p.y)
        self.ctx.counters.bbox_comps += 1
        return list(self.btree.scan_eq(interleave(cx, cy)))

    def candidate_ids_in_rect(self, rect: Rect) -> List[int]:
        cx0, cy0 = self._cell_of(rect.xmin, rect.ymin)
        cx1, cy1 = self._cell_of(rect.xmax, rect.ymax)
        out: List[int] = []
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                self.ctx.counters.bbox_comps += 1
                out.extend(self.btree.scan_eq(interleave(cx, cy)))
        return out

    def nn_start(self, p: Point) -> List[NNItem]:
        return [NNItem(0.0, False, None)]

    def nn_expand(self, ref: Any, p: Point) -> List[NNItem]:
        if ref is None:
            # Expand the root marker into all cells, keyed by MINDIST.
            return [
                NNItem(query_lower_bound(p, self._cell_rect(cx, cy)), False, (cx, cy))
                for cx in range(self.granularity)
                for cy in range(self.granularity)
            ]
        cx, cy = ref
        self.ctx.counters.bbox_comps += 1
        d = query_lower_bound(p, self._cell_rect(cx, cy))
        return [
            NNItem(d, True, seg_id)
            for seg_id in self.btree.scan_eq(interleave(cx, cy))
        ]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def page_count(self) -> int:
        return self.btree.page_count

    def height(self) -> int:
        return self.btree.height

    def entry_count(self) -> int:
        return len(self.btree)

    def segment_count(self) -> int:
        return self._seg_count

    def check_invariants(self) -> None:
        seg_ids = set()
        for key, seg_id in self.btree.items():
            seg_ids.add(seg_id)
        assert len(seg_ids) == self._seg_count, "segment count mismatch"
        for seg_id in seg_ids:
            seg = self.ctx.segments.peek(seg_id)
            cells = self._cells_of_segment(seg)
            assert cells, "segment crosses no cell"
            for cx, cy in cells:
                assert self.btree.contains(interleave(cx, cy), seg_id), (
                    f"segment {seg_id} missing from cell ({cx},{cy})"
                )
