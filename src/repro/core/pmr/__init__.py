"""The PMR quadtree, stored as a linear quadtree in a paged B-tree, and
the PM1/PM2/PM3 quadtrees of the same family (Section 3)."""

from repro.core.pmr.blocks import PMRBlock
from repro.core.pmr.locational import deinterleave, interleave, locational_code
from repro.core.pmr.pm1 import PM1Quadtree
from repro.core.pmr.pm23 import PM2Quadtree, PM3Quadtree
from repro.core.pmr.pmr import PMRQuadtree

__all__ = [
    "PM1Quadtree",
    "PM2Quadtree",
    "PM3Quadtree",
    "PMRBlock",
    "PMRQuadtree",
    "deinterleave",
    "interleave",
    "locational_code",
]
