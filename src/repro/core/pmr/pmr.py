"""The PMR quadtree (Nelson & Samet), as implemented in QUILT.

Edge-based bucket quadtree with the probabilistic splitting rule:

* a segment is inserted into every leaf block it intersects;
* any affected block whose occupancy then *exceeds* the splitting
  threshold is split **once, and only once** into four equal blocks
  (children above the threshold do not split until a later insertion
  touches them);
* deletion removes the segment from every block it intersects, and a
  split block whose children are all leaves holding fewer distinct
  segments than the threshold is merged back, recursively.

Storage is the paper's linear quadtree: each q-edge is an ``(L, O)``
2-tuple in a paged B-tree keyed on the Morton locational code ``L`` (8
bytes per tuple, about 120 per 1 KiB page). The in-memory block directory
(:mod:`repro.core.pmr.blocks`) only navigates; every entry access goes
through the B-tree and is therefore charged for disk activity.

``store_bboxes=True`` builds the Section 6 variant that keeps a compressed
per-segment bounding box in each tuple (12 bytes), trading storage for
fewer segment comparisons; it is exercised by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.btree import BPlusTree, ScanStats
from repro.core.interface import WORLD_DEPTH, WORLD_SIZE, NNItem, SpatialIndex, query_lower_bound
from repro.core.pmr.blocks import PMRBlock
from repro.core.pmr.locational import hilbert_code, locational_code
from repro.geometry import Point, Rect, Segment
from repro.obs.explain import (
    CAUSE_BTREE,
    COUNT_BLOCKS_DECODED,
    COUNT_BTREE_INTERNAL,
    COUNT_BTREE_LEAVES,
    COUNT_BTREE_SCANS,
    COUNT_NN_EXPANSIONS,
)
from repro.obs.trace import TRACER
from repro.storage.context import StorageContext
from repro.storage.layout import (
    BTREE_INTERNAL_ENTRY_BYTES,
    BTREE_PAGE_HEADER_BYTES,
    PMR_BBOX_EXTRA_BYTES,
    PMR_TUPLE_BYTES,
    entries_per_page,
)

#: Space-filling curves available for the locational codes. Both keep a
#: block's descendants in one contiguous code interval, which the window
#: decomposition and the linear-quadtree layout rely on.
_CODE_FUNCTIONS = {"morton": locational_code, "hilbert": hilbert_code}


class PMRQuadtree(SpatialIndex):
    name = "PMR"

    def __init__(
        self,
        ctx: StorageContext,
        threshold: int = 4,
        max_depth: int = WORLD_DEPTH,
        world_size: int = WORLD_SIZE,
        store_bboxes: bool = False,
        curve: str = "morton",
    ) -> None:
        super().__init__(ctx)
        if threshold < 1:
            raise ValueError(f"splitting threshold must be >= 1, got {threshold}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if world_size & (world_size - 1):
            raise ValueError(f"world_size must be a power of two, got {world_size}")
        if curve not in _CODE_FUNCTIONS:
            raise ValueError(
                f"curve must be one of {sorted(_CODE_FUNCTIONS)}, got {curve!r}"
            )
        self.threshold = threshold
        self.max_depth = max_depth
        self.world_size = world_size
        self.store_bboxes = store_bboxes
        self.curve = curve
        self._code_fn = _CODE_FUNCTIONS[curve]
        entry_bytes = PMR_TUPLE_BYTES + (
            PMR_BBOX_EXTRA_BYTES if store_bboxes else 0
        )
        cap = entries_per_page(ctx.page_size, entry_bytes, BTREE_PAGE_HEADER_BYTES)
        internal_cap = entries_per_page(
            ctx.page_size, BTREE_INTERNAL_ENTRY_BYTES, BTREE_PAGE_HEADER_BYTES
        )
        self.btree = BPlusTree(
            ctx.pool, leaf_capacity=cap, internal_capacity=internal_cap
        )
        self.root = PMRBlock(0, 0, 0)
        self._seg_count = 0

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _code(self, block: PMRBlock) -> int:
        return self._code_fn(block.bx, block.by, block.depth, self.max_depth)

    def _rect(self, block: PMRBlock) -> Rect:
        return block.rect(self.world_size)

    def _value(self, seg_id: int, seg: Segment) -> Any:
        if self.store_bboxes:
            return (seg_id, tuple(seg.mbr()))
        return seg_id

    @staticmethod
    def _seg_id_of(value: Any) -> int:
        return value[0] if isinstance(value, tuple) else value

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, seg_id: int) -> None:
        seg = self.ctx.segments.fetch(seg_id)
        value = self._value(seg_id, seg)
        affected: List[PMRBlock] = []
        self._insert_into(self.root, seg, value, affected)
        for block in affected:
            self._resolve_overflow(block)
        self._seg_count += 1

    def _insert_into(
        self, block: PMRBlock, seg: Segment, value: Any, affected: List[PMRBlock]
    ) -> None:
        if block.children is not None:
            for child in block.children:
                if seg.intersects_rect(self._rect(child)):
                    self._insert_into(child, seg, value, affected)
            return
        self.btree.insert(self._code(block), value)
        block.count += 1
        affected.append(block)

    def _resolve_overflow(self, block: PMRBlock) -> None:
        """The PMR splitting rule: an affected block whose occupancy now
        exceeds the threshold is split **once, and only once** -- children
        left above the threshold wait for the next insertion that touches
        them. Subclasses (the PM family) override this with their own
        decomposition criteria."""
        if (
            block.is_leaf
            and block.count > self.threshold
            and block.depth < self.max_depth
        ):
            self._split_block(block)

    def _split_block(self, block: PMRBlock) -> None:
        code = self._code(block)
        values = self.btree.scan_eq(code)
        for v in values:
            self.btree.delete(code, v)
        children = block.split()
        child_rects = [self._rect(c) for c in children]
        for v in values:
            seg = self.ctx.segments.fetch(self._seg_id_of(v))
            for child, rect in zip(children, child_rects):
                if seg.intersects_rect(rect):
                    self.btree.insert(self._code(child), v)
                    child.count += 1

    def delete(self, seg_id: int) -> None:
        seg = self.ctx.segments.fetch(seg_id)
        value = self._value(seg_id, seg)
        removed = self._delete_from(self.root, seg, value)
        if removed == 0:
            raise KeyError(f"segment {seg_id} not in the quadtree")
        self._seg_count -= 1

    def _delete_from(self, block: PMRBlock, seg: Segment, value: Any) -> int:
        if block.children is None:
            code = self._code(block)
            if self.btree.contains(code, value):
                self.btree.delete(code, value)
                block.count -= 1
                return 1
            return 0
        removed = 0
        for child in block.children:
            if seg.intersects_rect(self._rect(child)):
                removed += self._delete_from(child, seg, value)
        if removed:
            self._try_merge(block)
        return removed

    def _try_merge(self, block: PMRBlock) -> None:
        """Merge the children back when the merged block would be legal
        again (for the PMR: distinct occupancy below the threshold)."""
        if block.children is None or not all(c.is_leaf for c in block.children):
            return
        distinct: Set[Any] = set()
        for child in block.children:
            distinct.update(self.btree.scan_eq(self._code(child)))
        if not self._should_merge(block, distinct):
            return
        for child in block.children:
            code = self._code(child)
            for v in self.btree.scan_eq(code):
                self.btree.delete(code, v)
        block.merge()
        code = self._code(block)
        for v in sorted(distinct, key=self._seg_id_of):
            self.btree.insert(code, v)
        block.count = len(distinct)

    def _should_merge(self, block: PMRBlock, distinct: Set[Any]) -> bool:
        """The paper's rule: merge when the splitting threshold exceeds
        the occupancy of the block and its siblings."""
        return len(distinct) < self.threshold

    # ------------------------------------------------------------------
    # Searches
    # ------------------------------------------------------------------
    def _leaf_block_at(self, p: Point) -> PMRBlock:
        """The unique leaf whose half-open pixel region contains ``p``."""
        block = self.root
        while block.children is not None:
            block = block.child_containing(p.x, p.y, self.world_size)
        return block

    def candidate_ids_at_point(self, p: Point) -> List[int]:
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            return self._point_profiled(prof, p)
        block = self._leaf_block_at(p)
        self.ctx.counters.bbox_comps += 1  # one bucket examined
        values = self.btree.scan_eq(self._code(block))
        if self.store_bboxes:
            return [
                v[0]
                for v in values
                if v[1][0] <= p.x <= v[1][2] and v[1][1] <= p.y <= v[1][3]
            ]
        return [self._seg_id_of(v) for v in values]

    def _point_profiled(self, prof, p: Point) -> List[int]:
        """``candidate_ids_at_point`` with EXPLAIN attribution.

        Same storage traffic and counter charges as the plain path; the
        in-memory directory descent is additionally recorded as node
        visits per level (it moves no counters, so those buckets show
        zero disk work -- which is itself the finding: the PMR pays for
        buckets and B-tree pages, never for directory levels).
        """
        counters = self.ctx.counters
        block = self.root
        decoded = 1
        while block.children is not None:
            prof.level(block.depth).node_visits += 1
            block = block.child_containing(p.x, p.y, self.world_size)
            decoded += 1
        prof.count(COUNT_BLOCKS_DECODED, decoded)
        with prof.charge_level(block.depth, counters) as bucket:
            counters.bbox_comps += 1  # one bucket examined
            bucket.node_visits += 1
            bucket.entries_examined += 1
            bucket.entries_matched += 1
        acct = ScanStats()
        with prof.charge(CAUSE_BTREE, counters):
            values = self.btree.scan_eq(self._code(block), acct)
        self._note_btree_scans(prof, acct, scans=1)
        if self.store_bboxes:
            return [
                v[0]
                for v in values
                if v[1][0] <= p.x <= v[1][2] and v[1][1] <= p.y <= v[1][3]
            ]
        return [self._seg_id_of(v) for v in values]

    def _note_btree_scans(self, prof, acct: ScanStats, scans: int) -> None:
        cause = prof.cause(CAUSE_BTREE)
        cause.node_visits += acct.internal + acct.leaves
        prof.count(COUNT_BTREE_SCANS, scans)
        prof.count(COUNT_BTREE_LEAVES, acct.leaves)
        prof.count(COUNT_BTREE_INTERNAL, acct.internal)

    def candidate_ids_in_rect(self, rect: Rect) -> List[int]:
        """Window decomposition in the style of Aref & Samet [1].

        The directory is walked in Z-order; intersecting leaf buckets
        whose locational-code intervals are contiguous form *runs*, and
        each run is retrieved with a single B-tree interval scan. A
        window therefore costs one descent per time the Z curve enters
        the window, not one per bucket -- which is what makes the linear
        quadtree competitive on range queries despite its many buckets.
        """
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            return self._window_profiled(prof, rect)
        intervals: List[List[int]] = []  # [lo, hi] code intervals

        def walk(block: PMRBlock) -> None:
            if block.children is not None:
                for child in block.children:
                    if self._rect(child).intersects(rect):
                        walk(child)
                return
            lo = self._code(block)
            intervals.append(
                [lo, lo + (1 << (2 * (self.max_depth - block.depth))) - 1]
            )

        walk(self.root)
        self.ctx.counters.bbox_comps += len(intervals)

        # Coalesce adjacent code intervals into maximal runs. The DFS
        # emits Z-order for Morton codes but not for Hilbert, so sort by
        # code before merging.
        intervals.sort()
        runs: List[List[int]] = []
        for lo, hi in intervals:
            if runs and runs[-1][1] + 1 == lo:
                runs[-1][1] = hi
            else:
                runs.append([lo, hi])

        out: List[int] = []
        for lo, hi in runs:
            for _, v in self.btree.scan_range(lo, hi):
                if self.store_bboxes:
                    if Rect(v[1][0], v[1][1], v[1][2], v[1][3]).intersects(rect):
                        out.append(v[0])
                else:
                    out.append(self._seg_id_of(v))
        return out

    def _window_profiled(self, prof, rect: Rect) -> List[int]:
        """``candidate_ids_in_rect`` with EXPLAIN attribution.

        The bucket comparisons the plain path charges in one lump
        (``bbox_comps += len(intervals)``) are charged per decomposition
        depth here -- same total, attributed -- and the interval scans'
        B-tree traffic lands in the ``btree`` cause bucket with leaf/
        internal visit tallies from :class:`~repro.btree.ScanStats`.
        """
        counters = self.ctx.counters
        intervals: List[Tuple[int, int, int]] = []  # (lo, hi, depth)
        decoded = 0

        def walk(block: PMRBlock) -> None:
            nonlocal decoded
            decoded += 1
            if block.children is not None:
                prof.level(block.depth).node_visits += 1
                for child in block.children:
                    if self._rect(child).intersects(rect):
                        walk(child)
                return
            lo = self._code(block)
            intervals.append(
                (lo, lo + (1 << (2 * (self.max_depth - block.depth))) - 1, block.depth)
            )

        walk(self.root)
        prof.count(COUNT_BLOCKS_DECODED, decoded)
        by_depth: Dict[int, int] = {}
        for _, _, depth in intervals:
            by_depth[depth] = by_depth.get(depth, 0) + 1
        for depth in sorted(by_depth):
            n = by_depth[depth]
            with prof.charge_level(depth, counters) as bucket:
                counters.bbox_comps += n
                bucket.node_visits += n
                bucket.entries_examined += n
                bucket.entries_matched += n

        pairs = sorted([lo, hi] for lo, hi, _ in intervals)
        runs: List[List[int]] = []
        for lo, hi in pairs:
            if runs and runs[-1][1] + 1 == lo:
                runs[-1][1] = hi
            else:
                runs.append([lo, hi])

        out: List[int] = []
        acct = ScanStats()
        with prof.charge(CAUSE_BTREE, counters):
            for lo, hi in runs:
                for _, v in self.btree.scan_range(lo, hi, acct):
                    if self.store_bboxes:
                        if Rect(v[1][0], v[1][1], v[1][2], v[1][3]).intersects(rect):
                            out.append(v[0])
                    else:
                        out.append(self._seg_id_of(v))
        self._note_btree_scans(prof, acct, scans=len(runs))
        return out

    def nn_start(self, p: Point) -> List[NNItem]:
        return [NNItem(0.0, False, self.root)]

    def nn_expand(self, ref: Any, p: Point) -> List[NNItem]:
        if TRACER.profiling and (prof := TRACER.current_profile()) is not None:
            return self._nn_expand_profiled(prof, ref, p)
        block: PMRBlock = ref
        if block.children is not None:
            return [
                NNItem(query_lower_bound(p, self._rect(c)), False, c)
                for c in block.children
            ]
        self.ctx.counters.bbox_comps += 1  # bucket whose contents we examine
        d_block = query_lower_bound(p, self._rect(block))
        values = self.btree.scan_eq(self._code(block))
        if self.store_bboxes:
            return [
                NNItem(
                    query_lower_bound(p, Rect(*v[1])),
                    True,
                    v[0],
                )
                for v in values
            ]
        return [NNItem(d_block, True, self._seg_id_of(v)) for v in values]

    def _nn_expand_profiled(self, prof, ref: Any, p: Point) -> List[NNItem]:
        """``nn_expand`` with EXPLAIN attribution (levels = block depths)."""
        counters = self.ctx.counters
        block: PMRBlock = ref
        prof.count(COUNT_NN_EXPANSIONS, 1)
        if block.children is not None:
            # Directory expansion: in-memory, moves no counters.
            bucket = prof.level(block.depth)
            bucket.node_visits += 1
            bucket.entries_examined += len(block.children)
            bucket.entries_matched += len(block.children)
            prof.count(COUNT_BLOCKS_DECODED, 1)
            return [
                NNItem(query_lower_bound(p, self._rect(c)), False, c)
                for c in block.children
            ]
        with prof.charge_level(block.depth, counters) as bucket:
            counters.bbox_comps += 1  # bucket whose contents we examine
            bucket.node_visits += 1
            bucket.entries_examined += 1
            bucket.entries_matched += 1
        d_block = query_lower_bound(p, self._rect(block))
        acct = ScanStats()
        with prof.charge(CAUSE_BTREE, counters):
            values = self.btree.scan_eq(self._code(block), acct)
        self._note_btree_scans(prof, acct, scans=1)
        if self.store_bboxes:
            return [
                NNItem(
                    query_lower_bound(p, Rect(*v[1])),
                    True,
                    v[0],
                )
                for v in values
            ]
        return [NNItem(d_block, True, self._seg_id_of(v)) for v in values]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def page_count(self) -> int:
        return self.btree.page_count

    def height(self) -> int:
        return self.btree.height

    def entry_count(self) -> int:
        return len(self.btree)

    def segment_count(self) -> int:
        return self._seg_count

    def leaf_blocks(self) -> List[PMRBlock]:
        """All leaf blocks (used by the paper's 2-stage query-point model)."""
        return list(self.root.iter_leaves())

    def bucket_occupancy(self, include_empty: bool = False) -> float:
        """Average q-edges per bucket (Concluding Remarks: about 0.5x)."""
        leaves = self.leaf_blocks()
        if not include_empty:
            leaves = [b for b in leaves if b.count > 0]
        if not leaves:
            return 0.0
        return sum(b.count for b in leaves) / len(leaves)

    def depth(self) -> int:
        """Depth of the deepest block in the decomposition."""
        return max(b.depth for b in self.root.iter_leaves())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _check_occupancy_bound(self, block: PMRBlock) -> None:
        """Section 3's bound: a bucket holds at most threshold + depth
        q-edges (max-depth blocks are exempt, they can never split)."""
        if block.depth < self.max_depth:
            assert block.count <= self.threshold + block.depth, (
                "bucket exceeds the threshold + depth bound"
            )

    def check_invariants(self) -> None:
        total = 0
        seg_ids: Set[int] = set()
        for block in self.root.iter_leaves():
            values = self.btree.scan_eq(self._code(block))
            assert len(values) == block.count, (
                f"directory count {block.count} != B-tree count {len(values)} "
                f"at block ({block.depth},{block.bx},{block.by})"
            )
            self._check_occupancy_bound(block)
            total += len(values)
            rect = self._rect(block)
            for v in values:
                seg_id = self._seg_id_of(v)
                seg_ids.add(seg_id)
                seg = self.ctx.segments.peek(seg_id)
                assert seg.intersects_rect(rect), "q-edge outside its block"
        assert total == len(self.btree), "directory/B-tree total mismatch"
        assert len(seg_ids) == self._seg_count, "segment count mismatch"

        # Completeness: every segment lives in every leaf block that a
        # positive-length piece of it crosses. Descend only into blocks
        # the segment's geometry touches, so the check stays near-linear
        # and runs even on paper-scale structures.
        for seg_id in seg_ids:
            seg = self.ctx.segments.peek(seg_id)
            self._check_complete(self.root, seg, seg_id)

    def _check_complete(self, block: PMRBlock, seg: Segment, seg_id: int) -> None:
        rect = self._rect(block)
        if not seg.intersects_rect(rect):
            return
        if block.children is not None:
            for child in block.children:
                self._check_complete(child, seg, seg_id)
            return
        qedge = seg.clipped(rect)
        if qedge is None or qedge.is_degenerate():
            return
        present = any(
            self._seg_id_of(v) == seg_id
            for v in self.btree.scan_eq(self._code(block))
        )
        assert present, f"segment {seg_id} missing from a crossed block"
