"""The PM1 quadtree (Samet & Webber), the strictest member of the PM
family the paper's PMR quadtree belongs to.

Section 3 places the PMR inside "a family of data structures that
adaptively sort the line segments into buckets of varying size"; the PM
quadtrees are the vertex-based end of that family. A PM1 leaf block must
satisfy:

1. it contains at most one vertex (segment endpoint);
2. if it contains a vertex, every q-edge in the block is incident at
   that vertex;
3. if it contains no vertex, it holds at most one q-edge.

Unlike the PMR's probabilistic split-once rule, a violating PM1 block is
split *recursively* until the criteria hold (or the maximum depth is
reached, where violations are tolerated -- the pixel grid cannot resolve
further). This is exactly the pathological behaviour the PMR's rule was
invented to avoid: a pair of nearly-touching parallel segments forces
the PM1 to decompose all the way down, while the PMR splits once per
insertion. The ``pm_family`` ablation benchmark measures that contrast.

Storage, queries, and metrics are inherited unchanged from
:class:`~repro.core.pmr.pmr.PMRQuadtree` (the same linear quadtree in
the same paged B-tree), so comparisons between the two isolate the
decomposition rule alone.
"""

from __future__ import annotations

from typing import Any, List, Set

from repro.core.interface import WORLD_DEPTH, WORLD_SIZE
from repro.core.pmr.blocks import PMRBlock
from repro.core.pmr.pmr import PMRQuadtree
from repro.geometry import Point
from repro.storage.context import StorageContext


class PM1Quadtree(PMRQuadtree):
    name = "PM1"

    def __init__(
        self,
        ctx: StorageContext,
        max_depth: int = WORLD_DEPTH,
        world_size: int = WORLD_SIZE,
    ) -> None:
        # The PM1 has no splitting threshold; the inherited machinery
        # only uses it inside the hooks overridden below.
        super().__init__(
            ctx, threshold=1, max_depth=max_depth, world_size=world_size
        )

    # ------------------------------------------------------------------
    # Decomposition criteria
    # ------------------------------------------------------------------
    def _block_is_legal(self, block: PMRBlock, seg_ids: List[int]) -> bool:
        """Check the three PM1 criteria for a block holding ``seg_ids``.

        Geometry is fetched through the segment table, so deciding a
        split is charged segment comparisons exactly as a disk-resident
        implementation would pay them.
        """
        if len(seg_ids) <= 1:
            return True
        rect = self._rect(block)

        def vertex_inside(p: Point) -> bool:
            # Half-open pixel domain: each vertex belongs to one block.
            return (
                rect.xmin <= p.x < rect.xmax and rect.ymin <= p.y < rect.ymax
            )

        vertices: Set[Point] = set()
        segments = []
        for seg_id in seg_ids:
            seg = self.ctx.segments.fetch(seg_id)
            segments.append(seg)
            for p in seg.endpoints():
                if vertex_inside(p):
                    vertices.add(p)

        if len(vertices) > 1:
            return False
        if not vertices:
            return len(segments) <= 1
        (v,) = vertices
        return all(s.has_endpoint(v) for s in segments)

    # ------------------------------------------------------------------
    # Hook overrides
    # ------------------------------------------------------------------
    def _resolve_overflow(self, block: PMRBlock) -> None:
        """Split recursively until every descendant is legal."""
        if not block.is_leaf or block.depth >= self.max_depth:
            return
        seg_ids = [
            self._seg_id_of(v) for v in self.btree.scan_eq(self._code(block))
        ]
        if self._block_is_legal(block, seg_ids):
            return
        self._split_block(block)
        for child in block.children:
            self._resolve_overflow(child)

    def _should_merge(self, block: PMRBlock, distinct: Set[Any]) -> bool:
        """Merge when the reunited block would satisfy the PM1 criteria."""
        seg_ids = sorted(self._seg_id_of(v) for v in distinct)
        return self._block_is_legal(block, seg_ids)

    def _check_occupancy_bound(self, block: PMRBlock) -> None:
        """PM1 invariant: every non-maximal-depth leaf is legal."""
        if block.depth >= self.max_depth:
            return
        seg_ids = [
            self._seg_id_of(v) for v in self.btree.scan_eq(self._code(block))
        ]
        assert self._block_is_legal(block, seg_ids), (
            f"PM1 criteria violated at block "
            f"({block.depth},{block.bx},{block.by})"
        )
