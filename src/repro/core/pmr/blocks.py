"""The in-memory quadtree directory of a linear PMR quadtree.

Only the *entries* of the PMR quadtree are disk-resident (in the B-tree);
the block decomposition itself is navigational state. A pure linear
quadtree recovers it from B-tree probes; we keep it as an explicit
directory of lightweight blocks, which leaves the disk traffic identical
(every entry read or write still goes through the B-tree) while making
block navigation -- the paper's cheap "bounding bucket computations" --
explicit and countable.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.pmr.locational import locational_code
from repro.geometry import Rect


class PMRBlock:
    """One quadtree block: a leaf bucket or an internal (split) block.

    ``count`` is the number of q-edge entries stored under this block's
    locational code in the B-tree; it is meaningful only for leaves.
    Children are ordered SW, SE, NW, NE (Morton order).
    """

    __slots__ = ("depth", "bx", "by", "count", "children")

    def __init__(self, depth: int, bx: int, by: int) -> None:
        self.depth = depth
        self.bx = bx
        self.by = by
        self.count = 0
        self.children: Optional[List["PMRBlock"]] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def code(self, max_depth: int) -> int:
        return locational_code(self.bx, self.by, self.depth, max_depth)

    def rect(self, world_size: int) -> Rect:
        size = world_size >> self.depth
        x = self.bx * size
        y = self.by * size
        return Rect(x, y, x + size, y + size)

    def split(self) -> List["PMRBlock"]:
        """Create the four equal children (the caller moves the entries)."""
        if self.children is not None:
            raise ValueError("block is already split")
        d = self.depth + 1
        self.children = [
            PMRBlock(d, 2 * self.bx, 2 * self.by),  # SW
            PMRBlock(d, 2 * self.bx + 1, 2 * self.by),  # SE
            PMRBlock(d, 2 * self.bx, 2 * self.by + 1),  # NW
            PMRBlock(d, 2 * self.bx + 1, 2 * self.by + 1),  # NE
        ]
        self.count = 0
        return self.children

    def merge(self) -> None:
        """Fold the children back into this block (caller moves entries)."""
        if self.children is None:
            raise ValueError("cannot merge a leaf")
        self.children = None

    def child_containing(self, x: float, y: float, world_size: int) -> "PMRBlock":
        """The unique child whose half-open pixel region contains (x, y)."""
        if self.children is None:
            raise ValueError("leaf has no children")
        half = world_size >> (self.depth + 1)
        dx = 1 if x >= (2 * self.bx + 1) * half else 0
        dy = 1 if y >= (2 * self.by + 1) * half else 0
        return self.children[2 * dy + dx]

    def iter_leaves(self) -> Iterator["PMRBlock"]:
        if self.children is None:
            yield self
        else:
            for child in self.children:
                yield from child.iter_leaves()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"<PMRBlock {kind} d={self.depth} ({self.bx},{self.by}) n={self.count}>"
