"""The PM2 and PM3 quadtrees: the rest of the vertex-based PM family.

Relaxations of the PM1 criteria (see :mod:`repro.core.pmr.pm1`):

* **PM2**: a block may hold any number of q-edges provided they all meet
  at one common vertex -- which, unlike PM1, may lie *outside* the
  block. High-degree vertices no longer force deep decomposition around
  their incident edges.
* **PM3**: only the vertex criterion remains -- at most one vertex per
  block; q-edges passing through are unrestricted.

Decomposition granularity is therefore PM1 >= PM2 >= PM3 on any map,
which the tests assert, and all three stand in contrast to the PMR's
probabilistic rule that bounds bucket occupancy without geometric
criteria at all.
"""

from __future__ import annotations

from typing import List, Set

from repro.core.pmr.blocks import PMRBlock
from repro.core.pmr.pm1 import PM1Quadtree
from repro.geometry import Point


class PM2Quadtree(PM1Quadtree):
    name = "PM2"

    def _block_is_legal(self, block: PMRBlock, seg_ids: List[int]) -> bool:
        if len(seg_ids) <= 1:
            return True
        rect = self._rect(block)

        vertices: Set[Point] = set()
        segments = []
        for seg_id in seg_ids:
            seg = self.ctx.segments.fetch(seg_id)
            segments.append(seg)
            for p in seg.endpoints():
                if rect.xmin <= p.x < rect.xmax and rect.ymin <= p.y < rect.ymax:
                    vertices.add(p)

        if len(vertices) > 1:
            return False
        if len(vertices) == 1:
            (v,) = vertices
            return all(s.has_endpoint(v) for s in segments)
        # No vertex inside: legal iff all q-edges share a common endpoint
        # anywhere (they are fragments of a fan around one vertex).
        first = segments[0]
        for shared in first.endpoints():
            if all(s.has_endpoint(shared) for s in segments[1:]):
                return True
        return False


class PM3Quadtree(PM1Quadtree):
    name = "PM3"

    def _block_is_legal(self, block: PMRBlock, seg_ids: List[int]) -> bool:
        if len(seg_ids) <= 1:
            return True
        rect = self._rect(block)
        vertices: Set[Point] = set()
        for seg_id in seg_ids:
            seg = self.ctx.segments.fetch(seg_id)
            for p in seg.endpoints():
                if rect.xmin <= p.x < rect.xmax and rect.ymin <= p.y < rect.ymax:
                    vertices.add(p)
                    if len(vertices) > 1:
                        return False
        return True
