"""Morton (Z-order) locational codes.

The paper's linear quadtree stores, per q-edge, a 2-tuple ``(L, O)`` where
``L`` is the *locational code* of the block: the bit-interleaved value of
the x and y coordinates of its lower-left corner together with its depth.
Sorting blocks by the interleaved corner value (at full resolution) lays
the leaf blocks out in Z-order, which is what makes a B-tree on ``L``
cluster spatially-adjacent buckets on the same pages.
"""

from __future__ import annotations

from typing import Tuple

_B = [
    0x5555555555555555,
    0x3333333333333333,
    0x0F0F0F0F0F0F0F0F,
    0x00FF00FF00FF00FF,
    0x0000FFFF0000FFFF,
]


def _part1by1(n: int) -> int:
    """Spread the low 32 bits of ``n`` to the even bit positions."""
    n &= 0xFFFFFFFF
    n = (n | (n << 16)) & _B[4]
    n = (n | (n << 8)) & _B[3]
    n = (n | (n << 4)) & _B[2]
    n = (n | (n << 2)) & _B[1]
    n = (n | (n << 1)) & _B[0]
    return n


def _compact1by1(n: int) -> int:
    """Inverse of :func:`_part1by1`."""
    n &= _B[0]
    n = (n | (n >> 1)) & _B[1]
    n = (n | (n >> 2)) & _B[2]
    n = (n | (n >> 4)) & _B[3]
    n = (n | (n >> 8)) & _B[4]
    n = (n | (n >> 16)) & 0xFFFFFFFF
    return n


def interleave(x: int, y: int) -> int:
    """Morton code: x in the even bit positions, y in the odd ones."""
    return _part1by1(x) | (_part1by1(y) << 1)


def deinterleave(code: int) -> Tuple[int, int]:
    """Recover (x, y) from a Morton code."""
    return _compact1by1(code), _compact1by1(code >> 1)


def locational_code(bx: int, by: int, depth: int, max_depth: int) -> int:
    """The B-tree key of the block at grid position (bx, by) and ``depth``.

    The code is the Morton index of the block's lower-left corner expressed
    at full (``max_depth``) resolution, so the half-open code intervals of
    the leaf blocks partition ``[0, 4**max_depth)`` and sort in Z-order.
    """
    return interleave(bx, by) << (2 * (max_depth - depth))


def hilbert_index(order: int, x: int, y: int) -> int:
    """Index of cell (x, y) along the Hilbert curve of ``2^order`` cells
    per side. The classic iterative quadrant-rotation algorithm."""
    d = 0
    s = 1 << (order - 1) if order > 0 else 0
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_point(order: int, d: int) -> Tuple[int, int]:
    """Inverse of :func:`hilbert_index`: the cell (x, y) at distance ``d``
    along the Hilbert curve of ``2^order`` cells per side.

    The shard layer uses this to turn a half-open curve-key range back
    into the set of grid cells it covers, from which a shard's spatial
    extent is derived.
    """
    n = 1 << order
    if not 0 <= d < n * n:
        raise ValueError(f"index {d} outside the order-{order} curve")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_code(bx: int, by: int, depth: int, max_depth: int) -> int:
    """Hilbert-curve analogue of :func:`locational_code`.

    Self-similarity gives the Hilbert curve the same property Morton
    codes rely on: every quadtree block occupies one contiguous run of
    ``4^(max_depth - depth)`` cells along the curve, so the block's key
    is its depth-level Hilbert index scaled to full resolution. Hilbert
    ordering keeps more spatially-adjacent blocks adjacent on B-tree
    pages; the curve ablation measures the effect on window queries.
    """
    return hilbert_index(depth, bx, by) << (2 * (max_depth - depth))
