"""Profiled twins of the hot traversal loops, shared by the tree indexes.

When a query runs under EXPLAIN the index routes its search through one
of these helpers instead of its plain loop. The contract that makes the
explain report *exact* rather than estimated: a profiled traversal
performs the **same buffer-pool requests and the same counter charges in
the same order** as the plain one -- it only adds a depth alongside each
stack item and brackets each node visit in a
:meth:`~repro.obs.explain.ExplainProfile.charge_level` window. Any
divergence between the two loops is a bug the explain exactness tests
catch (attributed totals must equal the engine's observed deltas).

This lives in ``repro.core`` (not ``repro.obs``) deliberately: the
charge ``counters.bbox_comps += len(node.entries)`` is a counter
mutation, and lint rule RP03 restricts those to the storage and core
layers that own the measurement.

The Guttman/R* and R+ node classes share the shape these helpers rely
on: ``is_leaf`` plus ``entries`` of ``(rect, ref)`` pairs.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from repro.core.interface import NNItem, query_lower_bound
from repro.geometry import Point, Rect


def profiled_tree_search(
    prof,
    pool,
    counters,
    root_id: int,
    match: Callable[[Rect], bool],
) -> List[int]:
    """The stack-based containment/overlap search, with level attribution.

    Mirrors ``candidate_ids_at_point`` / ``candidate_ids_in_rect`` of the
    R-tree family (Guttman, R*, R+): pop a page, charge one bbox
    comparison per entry, collect matching leaf refs, push matching
    children. ``match`` is the per-rectangle predicate
    (``contains_point`` or ``intersects`` bound to the query).
    """
    out: List[int] = []
    stack: List[Tuple[int, int]] = [(root_id, 0)]
    while stack:
        page_id, depth = stack.pop()
        with prof.charge_level(depth, counters) as bucket:
            node = pool.get(page_id)
            counters.bbox_comps += len(node.entries)
            matched = [ref for r, ref in node.entries if match(r)]
            bucket.node_visits += 1
            bucket.entries_examined += len(node.entries)
            bucket.entries_matched += len(matched)
            bucket.entries_pruned += len(node.entries) - len(matched)
        if node.is_leaf:
            out.extend(matched)
        else:
            stack.extend((ref, depth + 1) for ref in matched)
    return out


def profiled_nn_expand(
    prof,
    pool,
    counters,
    ref: Any,
    p: Point,
    leaf_bound: Callable[[Any], Rect],
) -> List[NNItem]:
    """One nearest-neighbour node expansion, with level attribution.

    Mirrors ``nn_expand`` of the R-tree family. The node's level comes
    from the profile's node-level map (the root is seeded at 0 by the
    profiled ``nn_start`` wrapper; children are registered here at
    ``depth + 1``), so the best-first visiting order still attributes to
    the right level. ``leaf_bound`` supplies the rectangle whose distance
    lower-bounds a leaf's candidates -- the node MBR for Guttman/R*, the
    union of entry rectangles for R+ (whose stored regions are partition
    tiles, not content bounds).
    """
    depth = prof.node_level(ref)
    with prof.charge_level(depth, counters) as bucket:
        node = pool.get(ref)
        counters.bbox_comps += len(node.entries)
        bucket.node_visits += 1
        bucket.entries_examined += len(node.entries)
        bucket.entries_matched += len(node.entries)
        if node.is_leaf:
            if not node.entries:
                return []
            d = query_lower_bound(p, leaf_bound(node))
            return [NNItem(d, True, child) for _, child in node.entries]
        items = []
        for r, child in node.entries:
            prof.set_node_level(child, depth + 1)
            items.append(NNItem(query_lower_bound(p, r), False, child))
        return items
