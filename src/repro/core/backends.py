"""Traversal backends: the scalar reference path and the resolver.

The :class:`~repro.core.interface.TraversalBackend` seam lets the engine
swap *how* queries traverse an index without changing *what* they
measure. :class:`ScalarBackend` is the paper's per-entry loop, factored
out of the historical ad-hoc entry points; :class:`repro.core.vector`
provides the numpy struct-of-arrays twin. :func:`resolve_backend` picks
one by name and degrades gracefully -- asking for ``"vector"`` without
numpy installed yields a scalar backend that reports the fallback in
``describe()`` (surfaced by the engine's ``stats`` op).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.interface import SpatialIndex, TraversalBackend
from repro.core.queries.nearest import scalar_nearest_k
from repro.core.queries.point import other_endpoint_via, scalar_incident_segments
from repro.core.queries.polygon import walk_enclosing_polygon
from repro.core.queries.spec import QuerySpec
from repro.core.queries.window import scalar_window_query

#: Names :func:`resolve_backend` accepts.
BACKEND_NAMES = ("scalar", "vector")


class ScalarBackend(TraversalBackend):
    """The reference backend: the paper's scalar per-entry traversal."""

    name = "scalar"
    supports_batch = False

    def __init__(self, requested: Optional[str] = None) -> None:
        #: The backend the caller asked for, when this one is a fallback.
        self.requested = requested if requested is not None else self.name

    def run(self, index: SpatialIndex, spec: QuerySpec):
        op = spec.op
        if op == "window":
            return scalar_window_query(index, spec.to_rect(), spec.mode)
        if op == "point":
            return [
                sid
                for sid, _ in scalar_incident_segments(index, spec.to_point())
            ]
        if op == "incident":
            return scalar_incident_segments(index, spec.to_point())
        if op == "nearest":
            return scalar_nearest_k(index, spec.to_point(), spec.k)
        if op == "other_endpoint":
            return other_endpoint_via(index, spec.to_point(), spec.seg_id, self)
        if op == "polygon":
            return walk_enclosing_polygon(
                index, spec.to_point(), spec.max_steps, self
            )
        raise ValueError(f"unknown spec op {spec.op!r}")

    def describe(self) -> dict:
        out = {"name": self.name, "requested": self.requested}
        if self.requested != self.name:
            out["fallback"] = True
        return out


#: Module-level reference backend for spec execution outside an engine
#: (the harness, the crash tester, the legacy shims). Stateless, so
#: sharing one instance across indexes is safe.
SCALAR_BACKEND = ScalarBackend()


def resolve_backend(backend=None) -> TraversalBackend:
    """Resolve an engine's ``backend=`` argument to an instance.

    Accepts ``None``/``"scalar"`` (the reference path), ``"vector"``
    (numpy struct-of-arrays; falls back to scalar *with a stats
    indicator* when numpy is unavailable), or an existing
    :class:`~repro.core.interface.TraversalBackend` instance, which is
    returned as-is. Each call returns a fresh instance for the stateful
    kinds -- a vector backend's node mirrors belong to one engine.
    """
    if backend is None or backend == "scalar":
        return ScalarBackend()
    if isinstance(backend, TraversalBackend):
        return backend
    if backend == "vector":
        from repro.core import vector

        if vector.HAVE_NUMPY:
            return vector.VectorBackend()
        return ScalarBackend(requested="vector")
    raise ValueError(
        f"unknown traversal backend {backend!r} (expected one of "
        f"{BACKEND_NAMES} or a TraversalBackend instance)"
    )
