"""The paper's subjects: three disk-resident spatial indexes and the query
algorithms that run over them.

* :class:`~repro.core.rtree.RStarTree` -- the R*-tree of Beckmann et al.
* :class:`~repro.core.rplus.RPlusTree` -- the paper's hybrid R+-tree /
  k-d-B-tree with disjoint non-leaf regions.
* :class:`~repro.core.pmr.PMRQuadtree` -- the edge-based PMR quadtree
  stored as a linear quadtree in a paged B-tree.
* :class:`~repro.core.rtree.GuttmanRTree` -- the original R-tree (kept as a
  baseline for the split-policy ablation).
* :class:`~repro.core.kdb.KDBTree` -- the pure k-d-B-tree variant the
  paper contrasts with its hybrid (Section 3).
* :class:`~repro.core.grid.UniformGrid` -- the Section 2 uniform grid.
* :mod:`~repro.core.queries` -- the five queries of Section 5.
"""

from repro.core.grid import UniformGrid
from repro.core.interface import NNItem, SpatialIndex
from repro.core.kdb import KDBTree
from repro.core.pmr import PM1Quadtree, PM2Quadtree, PM3Quadtree, PMRQuadtree
from repro.core.rplus import RPlusTree, TrueRPlusTree
from repro.core.rtree import GuttmanRTree, RStarTree

__all__ = [
    "GuttmanRTree",
    "KDBTree",
    "NNItem",
    "PM1Quadtree",
    "PM2Quadtree",
    "PM3Quadtree",
    "PMRQuadtree",
    "RPlusTree",
    "RStarTree",
    "SpatialIndex",
    "TrueRPlusTree",
    "UniformGrid",
]
