"""A counted latch for shared storage structures.

The simulated storage stack is single-threaded by construction; the
service layer (:mod:`repro.service`) shares one buffer pool between many
worker threads and therefore needs mutual exclusion around every
traversal. A :class:`Latch` is a reentrant lock that additionally counts
acquisitions and contended acquisitions, so a server can report how hot
the pool latch is under load.
"""

from __future__ import annotations

import threading

from repro.sanitize import SANITIZER


class Latch:
    """A reentrant lock with acquisition statistics.

    ``acquisitions`` counts every outermost acquire; ``contended`` counts
    the subset that had to wait because another thread held the latch.
    Both are maintained under the latch itself, so they are exact.
    """

    def __init__(self, name: str = "latch") -> None:
        self.name = name
        self._lock = threading.RLock()
        self._holder: int | None = None
        self._depth = 0
        self.acquisitions = 0
        self.contended = 0

    def acquire(self) -> None:
        me = threading.get_ident()
        if self._holder == me:  # reentrant: no stats, no blocking
            self._depth += 1
            return
        contended = not self._lock.acquire(blocking=False)
        if contended:
            # The contended slow path can raise (e.g. an interrupt lands
            # between the non-blocking probe and the blocking acquire).
            # Nothing was acquired in that case, so bookkeeping must stay
            # untouched -- the latch remains fully usable afterwards.
            self._lock.acquire()
        try:
            self._holder = me
            self._depth = 1
            self._record_acquire(contended)
            if SANITIZER.enabled:
                SANITIZER.note_acquire(f"latch:{self.name}")
        except BaseException:
            # Bookkeeping failed after the lock was obtained: back out
            # completely rather than leave a held lock with no holder.
            self._holder = None
            self._depth = 0
            self._lock.release()
            raise

    def _record_acquire(self, contended: bool) -> None:
        """Update acquisition statistics (separate so tests can verify
        that a failure here cannot leak the underlying lock)."""
        self.acquisitions += 1
        if contended:
            self.contended += 1

    def release(self) -> None:
        if self._holder != threading.get_ident():
            raise RuntimeError(f"latch {self.name!r} released by non-holder")
        self._depth -= 1
        if self._depth == 0:
            if SANITIZER.enabled:
                SANITIZER.note_release(f"latch:{self.name}")
            self._holder = None
            self._lock.release()

    def __enter__(self) -> "Latch":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def stats(self) -> dict:
        return {
            "name": self.name,
            "acquisitions": self.acquisitions,
            "contended": self.contended,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Latch {self.name!r} acquisitions={self.acquisitions} "
            f"contended={self.contended}>"
        )
