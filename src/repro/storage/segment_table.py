"""The disk-resident segment table.

Every structure stores only *pointers* (segment ids) to geometry; the
endpoints live here, 16 bytes per segment, in insertion order. Insertion
order gives the table the spatial locality the paper relies on ("since the
segments are usually in proximity, they will be stored close to each
other"): maps are generated road-by-road, so consecutive ids are usually
spatial neighbours.

Each access through :meth:`SegmentTable.fetch` is one of the paper's
*segment comparisons* and may fault a table page into the buffer pool.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.geometry.segment import Segment
from repro.obs.trace import TRACER
from repro.storage.buffer_pool import BufferPool
from repro.storage.layout import SEGMENT_RECORD_BYTES, entries_per_page


class SegmentTable:
    """Append-only paged table of segment endpoints."""

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        self.per_page = entries_per_page(pool.disk.page_size, SEGMENT_RECORD_BYTES)
        self._page_ids: List[int] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @classmethod
    def attach(
        cls, pool: BufferPool, page_ids: List[int], count: int
    ) -> "SegmentTable":
        """Re-bind a table to pages already on disk (snapshot restore).

        ``page_ids`` must list the table's pages in id order and ``count``
        the stored segments; both come from a snapshot manifest.
        """
        table = cls(pool)
        if count > len(page_ids) * table.per_page:
            raise ValueError(
                f"{count} segments cannot fit in {len(page_ids)} pages "
                f"of {table.per_page} records"
            )
        for page_id in page_ids:
            if not pool.disk.is_allocated(page_id):
                raise ValueError(f"segment table page {page_id} is not on disk")
        table._page_ids = list(page_ids)
        table._count = count
        return table

    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    @property
    def bytes_used(self) -> int:
        """Bytes occupied on disk (whole pages, as the paper counts them)."""
        return len(self._page_ids) * self.pool.disk.page_size

    def append(self, segment: Segment) -> int:
        """Store a segment and return its id (sequential from zero)."""
        seg_id = self._count
        slot = seg_id % self.per_page
        if slot == 0:
            page_id = self.pool.create([segment])
            self._page_ids.append(page_id)
        else:
            page_id = self._page_ids[-1]
            payload: List[Segment] = self.pool.get(page_id)
            payload.append(segment)
            self.pool.mark_dirty(page_id)
        self._count += 1
        return seg_id

    def extend(self, segments: List[Segment]) -> List[int]:
        """Append many segments, returning their ids."""
        return [self.append(s) for s in segments]

    def fetch(self, seg_id: int) -> Segment:
        """Fetch a segment's endpoints, charging one segment comparison."""
        if not 0 <= seg_id < self._count:
            raise IndexError(f"segment id {seg_id} out of range (0..{self._count - 1})")
        self.pool.counters.segment_comps += 1
        if TRACER.enabled:
            TRACER.event("segment_read", seg_id=seg_id)
        page = self.pool.get(self._page_ids[seg_id // self.per_page])
        return page[seg_id % self.per_page]

    @property
    def page_ids(self) -> List[int]:
        """The table's page ids in slot order (read-only by convention).

        ``seg_id // per_page`` indexes this list; exposed so batched
        readers (the vectorized verify) can plan run-collapsed page
        access without reaching into private state.
        """
        return self._page_ids

    def peek(self, seg_id: int) -> Segment:
        """Fetch a segment WITHOUT touching counters or the buffer pool.

        Instrumentation bypass for test oracles, map statistics, and data
        generation. Never call this from index or query code: it would
        hide segment comparisons from the measurements.
        """
        if not 0 <= seg_id < self._count:
            raise IndexError(f"segment id {seg_id} out of range (0..{self._count - 1})")
        page = self.pool.disk._pages[self._page_ids[seg_id // self.per_page]]
        return page[seg_id % self.per_page]

    def iter_ids(self) -> Iterator[int]:
        return iter(range(self._count))
