"""One structure's complete storage stack.

The paper gives each structure under test its own 16-page buffer pool; a
:class:`StorageContext` bundles the disk, pool, counters, and segment table
so that every disk access and segment comparison is attributed to exactly
one structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.geometry.segment import Segment
from repro.storage.buffer_pool import BufferPool
from repro.storage.counters import MetricsCounters
from repro.storage.disk import DiskManager
from repro.storage.policies import ReplacementPolicy
from repro.storage.segment_table import SegmentTable


@dataclass
class StorageContext:
    """Disk + buffer pool + counters + segment table for one structure."""

    disk: DiskManager
    counters: MetricsCounters
    pool: BufferPool
    segments: SegmentTable

    @classmethod
    def create(
        cls,
        page_size: int = 1024,
        pool_pages: int = 16,
        policy: Optional[ReplacementPolicy] = None,
    ) -> "StorageContext":
        """Build a fresh stack with the paper's defaults (1 KiB x 16, LRU)."""
        disk = DiskManager(page_size=page_size)
        counters = MetricsCounters()
        pool = BufferPool(disk, capacity=pool_pages, counters=counters, policy=policy)
        table = SegmentTable(pool)
        return cls(disk=disk, counters=counters, pool=pool, segments=table)

    @classmethod
    def from_disk(
        cls,
        disk: DiskManager,
        pool_pages: int = 16,
        policy: Optional[ReplacementPolicy] = None,
        segment_page_ids: Optional[List[int]] = None,
        segment_count: int = 0,
    ) -> "StorageContext":
        """Build a stack over an existing (e.g. snapshot-loaded) disk.

        When ``segment_page_ids`` is given the segment table is re-bound
        to those pages instead of starting empty.
        """
        counters = MetricsCounters()
        pool = BufferPool(disk, capacity=pool_pages, counters=counters, policy=policy)
        if segment_page_ids is None:
            table = SegmentTable(pool)
        else:
            table = SegmentTable.attach(pool, segment_page_ids, segment_count)
        return cls(disk=disk, counters=counters, pool=pool, segments=table)

    @property
    def page_size(self) -> int:
        return self.disk.page_size

    def load_segments(self, segments: Iterable[Segment]) -> List[int]:
        """Append segments to the table, returning their assigned ids."""
        return [self.segments.append(s) for s in segments]
