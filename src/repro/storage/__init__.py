"""Paged storage substrate.

The paper measures *disk accesses*: "operations that are expected to cause
reading a page of data that is not currently resident in main memory". This
package provides exactly that measurement apparatus:

* :class:`~repro.storage.disk.DiskManager` -- a page-granular simulated
  disk (pages are Python payloads with byte-accounted layouts).
* :class:`~repro.storage.buffer_pool.BufferPool` -- a fixed-capacity page
  cache with pluggable replacement (LRU by default, as in the paper's
  16-page least-recently-used pool), counting read misses and write-backs.
* :class:`~repro.storage.counters.MetricsCounters` -- the three quantities
  the paper tabulates: disk accesses, segment comparisons, and bounding
  box / bounding bucket computations.
* :class:`~repro.storage.segment_table.SegmentTable` -- the disk-resident
  table of segment endpoints shared (logically) by all structures; every
  "segment comparison" in the paper is an access to this table.
* :class:`~repro.storage.context.StorageContext` -- bundles one structure's
  complete storage stack so experiments attribute every access correctly.
"""

from repro.storage.buffer_pool import BufferPool
from repro.storage.codec import CodecError
from repro.storage.context import StorageContext
from repro.storage.counters import MetricsCounters, MetricsSnapshot
from repro.storage.disk import DiskManager, PageNotAllocatedError
from repro.storage.latch import Latch
from repro.storage.layout import (
    BTREE_PAGE_HEADER_BYTES,
    PMR_TUPLE_BYTES,
    RTREE_PAGE_HEADER_BYTES,
    RTREE_TUPLE_BYTES,
    SEGMENT_RECORD_BYTES,
    entries_per_page,
)
from repro.storage.policies import ClockPolicy, FIFOPolicy, LRUPolicy, ReplacementPolicy
from repro.storage.segment_table import SegmentTable

__all__ = [
    "BTREE_PAGE_HEADER_BYTES",
    "BufferPool",
    "ClockPolicy",
    "CodecError",
    "DiskManager",
    "FIFOPolicy",
    "LRUPolicy",
    "Latch",
    "MetricsCounters",
    "MetricsSnapshot",
    "PMR_TUPLE_BYTES",
    "PageNotAllocatedError",
    "RTREE_PAGE_HEADER_BYTES",
    "RTREE_TUPLE_BYTES",
    "ReplacementPolicy",
    "SEGMENT_RECORD_BYTES",
    "SegmentTable",
    "StorageContext",
    "entries_per_page",
]
