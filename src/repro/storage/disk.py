"""Simulated page-granular disk.

Pages carry arbitrary Python payloads; byte-level layout is enforced by the
structures that own the pages (see :mod:`repro.storage.layout`), which keeps
the simulation honest about capacities without paying serialization costs on
every access. The :mod:`repro.storage.codec` module provides real byte
serialization for persistence.
"""

from __future__ import annotations

from typing import Any, Dict, List


class PageNotAllocatedError(KeyError):
    """Raised when reading or writing a page id that was never allocated."""


class DiskManager:
    """A growable array of pages addressed by integer page id.

    Physical read/write counts are tracked here (they differ from the
    buffer pool's logical counts only if a pool is bypassed, which the
    tests exploit to verify the pool actually absorbs traffic).

    Freed page ids go on a free list and are handed out again by
    :meth:`allocate` before any new id is minted, so a long-running
    insert/delete workload occupies a bounded id range (and therefore a
    bounded file when the disk is dumped) instead of growing forever.
    """

    def __init__(self, page_size: int = 1024) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self._pages: Dict[int, Any] = {}
        self._next_id = 0
        self._free_ids: List[int] = []
        self.physical_reads = 0
        self.physical_writes = 0

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def allocated_bytes(self) -> int:
        """Total bytes occupied on 'disk' (pages are fixed-size units)."""
        return len(self._pages) * self.page_size

    @property
    def high_water_bytes(self) -> int:
        """Bytes the underlying file would need: the highest id ever minted."""
        return self._next_id * self.page_size

    @property
    def free_page_count(self) -> int:
        return len(self._free_ids)

    def allocate(self, payload: Any = None) -> int:
        """Allocate a page, reusing a freed id before minting a new one."""
        if self._free_ids:
            page_id = self._free_ids.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
        self._pages[page_id] = payload
        return page_id

    def is_allocated(self, page_id: int) -> bool:
        return page_id in self._pages

    def read(self, page_id: int) -> Any:
        try:
            payload = self._pages[page_id]
        except KeyError:
            raise PageNotAllocatedError(page_id) from None
        self.physical_reads += 1
        return payload

    def peek(self, page_id: int) -> Any:
        """Read a page WITHOUT charging a physical read.

        The sanctioned instrumentation bypass: statistics accessors, the
        visualizer, and the :mod:`repro.analysis` fsck read pages through
        here so that inspecting a structure never perturbs the paper's
        measurements. Never call this from index or query code -- page
        traffic on measured paths must go through the buffer pool (the
        RP01 lint rule enforces this for ``read``/``write``/``_pages``).
        """
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotAllocatedError(page_id) from None

    def allocated_ids(self) -> List[int]:
        """All currently-allocated page ids, ascending (fsck inventory)."""
        return sorted(self._pages)

    def free_ids(self) -> List[int]:
        """The free list, ascending (fsck inventory)."""
        return sorted(self._free_ids)

    def write(self, page_id: int, payload: Any) -> None:
        if page_id not in self._pages:
            raise PageNotAllocatedError(page_id)
        self._pages[page_id] = payload
        self.physical_writes += 1

    def free(self, page_id: int) -> None:
        """Release a page (after a node merge, for instance).

        The id is recycled: a later :meth:`allocate` will reuse it.
        """
        try:
            del self._pages[page_id]
        except KeyError:
            raise PageNotAllocatedError(page_id) from None
        self._free_ids.append(page_id)
