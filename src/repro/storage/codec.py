"""Byte-level page codecs.

The hot path keeps page payloads as Python objects for speed, with
capacities enforced by the byte accounting in :mod:`repro.storage.layout`.
This module makes that accounting *real*: every payload type serializes
to the exact on-disk format the layout constants describe, and the
encoders refuse to emit a page larger than the page size. The round-trip
tests pin the two views of the format together, and
:func:`dump_database` / :func:`load_database` persist a whole simulated
disk to a single file.

Formats (little-endian):

* R-tree / R+-tree node: header ``<BxxxI`` (leaf flag, entry count) then
  20-byte entries ``<4fi`` (4 float32 rectangle coordinates + pointer);
  24-byte header + 50 entries = 1024 bytes, as in the paper.
* B-tree leaf: header ``<BxxxIq`` (leaf flag, count, next page or -1)
  then 8-byte entries ``<Ii`` (locational code low word + pointer).
  Codes wider than 32 bits use the extended entry ``<QI`` transparently.
* Segment table page: count then 16-byte ``<4f`` endpoint records.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO, Dict, List, Optional, Tuple

from repro.btree.node import InternalNode, LeafNode
from repro.core.rplus.node import RPlusNode
from repro.core.rtree.node import RTreeNode
from repro.geometry import Rect, Segment
from repro.storage.disk import DiskManager

_RTREE_HEADER = struct.Struct("<BxxxI")  # is_leaf, count (padded to 8)
_RTREE_ENTRY = struct.Struct("<4fi")  # 20 bytes, as the paper charges
_BTREE_HEADER = struct.Struct("<BxxxIq")  # is_leaf, count, next_page
_BTREE_ENTRY = struct.Struct("<Ii")  # 8 bytes: code (depth-14 Morton fits
# in 28 bits) + pointer -- the paper's (L, O) 2-tuple
_SEG_HEADER = struct.Struct("<I")
_SEG_ENTRY = struct.Struct("<4f")  # 16 bytes per segment


# Historically defined here; now part of the consolidated hierarchy in
# repro.errors (still a ValueError, so existing handlers keep working).
from repro.errors import CodecError  # noqa: E402  (re-export)


# ----------------------------------------------------------------------
# R-tree family nodes
# ----------------------------------------------------------------------
def encode_rtree_node(node, page_size: int) -> bytes:
    """Serialize an :class:`RTreeNode` or :class:`RPlusNode`."""
    out = bytearray(_RTREE_HEADER.pack(node.is_leaf, len(node.entries)))
    for rect, ref in node.entries:
        out += _RTREE_ENTRY.pack(rect[0], rect[1], rect[2], rect[3], ref)
    if len(out) > page_size:
        raise CodecError(
            f"node with {len(node.entries)} entries needs {len(out)} bytes; "
            f"page is {page_size}"
        )
    return bytes(out)


def decode_rtree_node(data: bytes, cls=RTreeNode):
    is_leaf, count = _RTREE_HEADER.unpack_from(data, 0)
    entries: List[Tuple[Rect, int]] = []
    offset = _RTREE_HEADER.size
    for _ in range(count):
        x1, y1, x2, y2, ref = _RTREE_ENTRY.unpack_from(data, offset)
        entries.append((Rect(x1, y1, x2, y2), ref))
        offset += _RTREE_ENTRY.size
    return cls(bool(is_leaf), entries)


# ----------------------------------------------------------------------
# B-tree nodes (PMR linear quadtree)
# ----------------------------------------------------------------------
def encode_btree_node(node, page_size: int) -> bytes:
    try:
        if node.is_leaf:
            next_page = node.next_page if node.next_page is not None else -1
            out = bytearray(_BTREE_HEADER.pack(1, len(node.entries), next_page))
            for key, value in node.entries:
                if not isinstance(key, int) or not isinstance(value, int):
                    raise CodecError(
                        f"only (int code, int pointer) leaf entries serialize; "
                        f"got {(key, value)!r}"
                    )
                out += _BTREE_ENTRY.pack(key, value)
        else:
            out = bytearray(_BTREE_HEADER.pack(0, len(node.keys), -1))
            for key in node.keys:
                if not (isinstance(key, tuple) and len(key) == 2):
                    raise CodecError(f"separator {key!r} is not a (code, ptr) pair")
                out += _BTREE_ENTRY.pack(key[0], key[1])
            for child in node.children:
                out += struct.pack("<i", child)
    except struct.error as exc:
        raise CodecError(f"B-tree entry out of 32-bit range: {exc}") from None
    if len(out) > page_size:
        raise CodecError(f"B-tree node needs {len(out)} bytes; page is {page_size}")
    return bytes(out)


def decode_btree_node(data: bytes):
    is_leaf, count, next_page = _BTREE_HEADER.unpack_from(data, 0)
    offset = _BTREE_HEADER.size
    if is_leaf:
        entries = []
        for _ in range(count):
            key, value = _BTREE_ENTRY.unpack_from(data, offset)
            entries.append((key, value))
            offset += _BTREE_ENTRY.size
        return LeafNode(entries, None if next_page < 0 else next_page)
    keys = []
    for _ in range(count):
        code, ptr = _BTREE_ENTRY.unpack_from(data, offset)
        keys.append((code, ptr))
        offset += _BTREE_ENTRY.size
    children = []
    for _ in range(count + 1):
        (child,) = struct.unpack_from("<i", data, offset)
        children.append(child)
        offset += 4
    return InternalNode(keys, children)


# ----------------------------------------------------------------------
# Segment table pages
# ----------------------------------------------------------------------
def encode_segment_page(segments: List[Segment], page_size: int) -> bytes:
    out = bytearray(_SEG_HEADER.pack(len(segments)))
    for s in segments:
        out += _SEG_ENTRY.pack(s.x1, s.y1, s.x2, s.y2)
    if len(out) > page_size + _SEG_HEADER.size:
        raise CodecError(
            f"segment page needs {len(out)} bytes; page is {page_size}"
        )
    return bytes(out)


def decode_segment_page(data: bytes) -> List[Segment]:
    (count,) = _SEG_HEADER.unpack_from(data, 0)
    offset = _SEG_HEADER.size
    out = []
    for _ in range(count):
        x1, y1, x2, y2 = _SEG_ENTRY.unpack_from(data, offset)
        out.append(Segment(x1, y1, x2, y2))
        offset += _SEG_ENTRY.size
    return out


# ----------------------------------------------------------------------
# Whole-database snapshots
# ----------------------------------------------------------------------
_PAYLOAD_CODECS = {
    "rtree": (
        lambda p, ps: encode_rtree_node(p, ps),
        lambda d: decode_rtree_node(d, RTreeNode),
    ),
    "rplus": (
        lambda p, ps: encode_rtree_node(p, ps),
        lambda d: decode_rtree_node(d, RPlusNode),
    ),
    "btree": (encode_btree_node, decode_btree_node),
    "segments": (encode_segment_page, decode_segment_page),
}


def _payload_kind(payload: Any) -> str:
    if isinstance(payload, RPlusNode):
        return "rplus"
    if isinstance(payload, RTreeNode):
        return "rtree"
    if isinstance(payload, (LeafNode, InternalNode)):
        return "btree"
    if isinstance(payload, list) and (
        not payload or isinstance(payload[0], Segment)
    ):
        return "segments"
    raise CodecError(f"no codec for payload of type {type(payload).__name__}")


def dump_database(
    disk: DiskManager,
    fh: BinaryIO,
    manifest: Optional[Dict[str, Any]] = None,
    pool=None,
) -> int:
    """Write every allocated page of a simulated disk to ``fh``.

    Returns the number of pages written. Pages are serialized with the
    codec matching their payload type; the JSON header records enough to
    reallocate them on load (including the free list and the physical
    read/write history, so a reloaded disk is indistinguishable from the
    original).

    ``manifest`` is an arbitrary JSON-serializable object stored in the
    header; the service layer uses it to record which index lives in the
    snapshot (see :mod:`repro.service.snapshot`).

    ``pool`` is the buffer pool in front of ``disk``, if any. Passing it
    arms the staleness guard: dumping while the pool holds dirty
    (unflushed) pages raises :class:`CodecError`, because the disk's
    payloads would not reflect the latest mutations. Flush first.
    """
    if pool is not None and pool.has_dirty():
        dirty = sorted(pool.dirty_pages())
        raise CodecError(
            f"buffer pool holds {len(dirty)} dirty page(s) {dirty[:8]}...; "
            f"flush before dumping or the snapshot would persist stale pages"
        )
    pages: Dict[int, Tuple[str, bytes]] = {}
    for page_id, payload in sorted(disk._pages.items()):
        kind = _payload_kind(payload)
        encoder, _ = _PAYLOAD_CODECS[kind]
        pages[page_id] = (kind, encoder(payload, disk.page_size))

    header = {
        "format": 2,
        "page_size": disk.page_size,
        "next_id": disk._next_id,
        "free_ids": sorted(disk._free_ids),
        "physical_reads": disk.physical_reads,
        "physical_writes": disk.physical_writes,
        "manifest": manifest,
        "pages": [
            {"id": pid, "kind": kind, "length": len(blob)}
            for pid, (kind, blob) in pages.items()
        ],
    }
    header_bytes = json.dumps(header).encode("utf-8")
    fh.write(struct.pack("<I", len(header_bytes)))
    fh.write(header_bytes)
    for pid, (kind, blob) in pages.items():
        fh.write(blob)
    return len(pages)


def read_header(fh: BinaryIO) -> Dict[str, Any]:
    """Read only the JSON header of a dumped database (no page decoding).

    Raises :class:`CodecError` when ``fh`` does not start with a header
    written by :func:`dump_database` (truncated, corrupt, or not a dump
    at all).
    """
    prefix = fh.read(4)
    if len(prefix) != 4:
        raise CodecError("not a database dump: file shorter than its header")
    (header_len,) = struct.unpack("<I", prefix)
    try:
        header = json.loads(fh.read(header_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"not a database dump: malformed header ({exc})") from exc
    if not isinstance(header, dict) or "pages" not in header:
        raise CodecError("not a database dump: header lacks a page table")
    return header


def load_snapshot(fh: BinaryIO) -> Tuple[DiskManager, Optional[Dict[str, Any]]]:
    """Rebuild a dumped disk, returning it with the stored manifest.

    A page area shorter or more damaged than the header promises raises
    :class:`CodecError`: a truncated dump must fail loudly, never load
    as a partially-populated disk.
    """
    header = read_header(fh)
    disk = DiskManager(page_size=header["page_size"])
    for meta in header["pages"]:
        blob = fh.read(meta["length"])
        if len(blob) != meta["length"]:
            raise CodecError(
                f"dump is truncated: page {meta['id']} promises "
                f"{meta['length']} bytes, only {len(blob)} remain"
            )
        _, decoder = _PAYLOAD_CODECS[meta["kind"]]
        try:
            disk._pages[meta["id"]] = decoder(blob)
        except (struct.error, ValueError, KeyError, IndexError) as exc:
            raise CodecError(
                f"page {meta['id']} ({meta['kind']}) cannot be decoded: {exc}"
            ) from exc
    disk._next_id = header["next_id"]
    disk._free_ids = list(header.get("free_ids", []))
    disk.physical_reads = header.get("physical_reads", 0)
    disk.physical_writes = header.get("physical_writes", 0)
    return disk, header.get("manifest")


def load_database(fh: BinaryIO) -> DiskManager:
    """Rebuild a simulated disk written by :func:`dump_database`."""
    disk, _ = load_snapshot(fh)
    return disk
