"""Byte accounting for page layouts.

The paper's capacities (Section 4):

* R-tree variants: each entry is a 2-tuple ``(R, O)`` of 5 four-byte values
  (4 rectangle coordinates + 1 pointer) = 20 bytes, "and thus each 1K byte
  page contains a maximum of 50 line segments". 1024 bytes minus a 24-byte
  page header leaves exactly 50 slots.
* PMR quadtree (linear quadtree in a B-tree): each entry is a 2-tuple
  ``(L, O)`` of 2 four-byte values = 8 bytes, "we can store 120 line
  segments on each page". 1024 bytes minus a 64-byte header (the B-tree
  page needs sibling/child bookkeeping) leaves exactly 120 slots.
* Segment table: 4 coordinates at 4 bytes = 16 bytes per segment.

These constants generalize the capacities to the other page sizes swept in
Figure 6 (512 B to 4 KiB).
"""

from __future__ import annotations

RTREE_TUPLE_BYTES = 20
RTREE_PAGE_HEADER_BYTES = 24

PMR_TUPLE_BYTES = 8
BTREE_PAGE_HEADER_BYTES = 64

# A non-leaf B-tree entry carries a full 8-byte separator (locational
# code + pointer, keeping duplicate keys exactly ordered) plus a 4-byte
# child page pointer. The paper's "120 line segments per page" concerns
# leaf tuples only; internal fanout follows from this entry size.
BTREE_INTERNAL_ENTRY_BYTES = 12

SEGMENT_RECORD_BYTES = 16

# The Section 6 discussion considers a PMR variant storing a compressed
# per-segment bounding box alongside each 2-tuple; the paper argues it
# needs "considerably less than 16 bytes". We charge 4 bytes: the
# locational code already pins the block, so offsets fit in one byte per
# rectangle side.
PMR_BBOX_EXTRA_BYTES = 4


def entries_per_page(page_size: int, entry_bytes: int, header_bytes: int = 0) -> int:
    """How many fixed-size entries fit on a page after the header.

    Raises ``ValueError`` when not even one entry fits, because a node
    that cannot hold a single record can never be split into validity.
    """
    if page_size <= 0 or entry_bytes <= 0 or header_bytes < 0:
        raise ValueError(
            f"invalid layout: page_size={page_size} entry_bytes={entry_bytes} "
            f"header_bytes={header_bytes}"
        )
    capacity = (page_size - header_bytes) // entry_bytes
    if capacity < 1:
        raise ValueError(
            f"page of {page_size} bytes cannot hold any {entry_bytes}-byte "
            f"entries after a {header_bytes}-byte header"
        )
    return capacity
