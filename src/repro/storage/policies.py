"""Buffer replacement policies.

The paper uses least-recently-used replacement throughout; FIFO and Clock
are provided for the replacement-policy ablation benchmark.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, List


class ReplacementPolicy(ABC):
    """Tracks the set of resident pages and picks eviction victims."""

    @abstractmethod
    def record_access(self, page_id: int) -> None:
        """Note that ``page_id`` was just requested (it may be new)."""

    @abstractmethod
    def evict(self) -> int:
        """Remove and return the victim page id. Raises ``LookupError`` if empty."""

    @abstractmethod
    def remove(self, page_id: int) -> None:
        """Forget ``page_id`` (e.g. the page was freed), if present."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __contains__(self, page_id: int) -> bool: ...


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: evict the page untouched for the longest time."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def record_access(self, page_id: int) -> None:
        if page_id in self._order:
            self._order.move_to_end(page_id)
        else:
            self._order[page_id] = None

    def evict(self) -> int:
        if not self._order:
            raise LookupError("no pages to evict")
        page_id, _ = self._order.popitem(last=False)
        return page_id

    def remove(self, page_id: int) -> None:
        self._order.pop(page_id, None)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._order


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: evict the page resident for the longest time."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def record_access(self, page_id: int) -> None:
        if page_id not in self._order:
            self._order[page_id] = None

    def evict(self) -> int:
        if not self._order:
            raise LookupError("no pages to evict")
        page_id, _ = self._order.popitem(last=False)
        return page_id

    def remove(self, page_id: int) -> None:
        self._order.pop(page_id, None)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._order


class ClockPolicy(ReplacementPolicy):
    """Second-chance (clock) replacement."""

    def __init__(self) -> None:
        self._ring: List[int] = []
        self._referenced: Dict[int, bool] = {}
        self._hand = 0

    def record_access(self, page_id: int) -> None:
        if page_id in self._referenced:
            self._referenced[page_id] = True
        else:
            self._ring.insert(self._hand, page_id)
            self._hand += 1
            if self._hand >= len(self._ring):
                self._hand = 0
            self._referenced[page_id] = False

    def evict(self) -> int:
        if not self._ring:
            raise LookupError("no pages to evict")
        while True:
            if self._hand >= len(self._ring):
                self._hand = 0
            page_id = self._ring[self._hand]
            if self._referenced[page_id]:
                self._referenced[page_id] = False
                self._hand += 1
            else:
                self._ring.pop(self._hand)
                del self._referenced[page_id]
                return page_id

    def remove(self, page_id: int) -> None:
        if page_id in self._referenced:
            idx = self._ring.index(page_id)
            self._ring.pop(idx)
            if idx < self._hand:
                self._hand -= 1
            del self._referenced[page_id]

    def __len__(self) -> int:
        return len(self._ring)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._referenced
