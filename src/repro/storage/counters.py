"""Measurement counters for the paper's three tabulated quantities.

Field names are shared with every reporting layer through
:mod:`repro.metric_names` -- the one place they may be spelled as string
literals (lint rule RP03 enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, NamedTuple

from repro.metric_names import COUNTER_FIELDS, DISK_ACCESSES


class MetricsSnapshot(NamedTuple):
    """An immutable copy of the counters, used to delta a single query."""

    disk_reads: int
    disk_writes: int
    buffer_hits: int
    segment_comps: int
    bbox_comps: int

    @property
    def disk_accesses(self) -> int:
        """The paper's headline metric: pages read that were not resident."""
        return self.disk_reads

    def as_dict(self) -> Dict[str, int]:
        """The five fields plus the reporting alias, keyed by canonical name."""
        out = {name: getattr(self, name) for name in COUNTER_FIELDS}
        out[DISK_ACCESSES] = self.disk_accesses
        return out

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":  # type: ignore[override]
        return MetricsSnapshot(
            self.disk_reads - other.disk_reads,
            self.disk_writes - other.disk_writes,
            self.buffer_hits - other.buffer_hits,
            self.segment_comps - other.segment_comps,
            self.bbox_comps - other.bbox_comps,
        )

    def __add__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":  # type: ignore[override]
        return MetricsSnapshot(
            self.disk_reads + other.disk_reads,
            self.disk_writes + other.disk_writes,
            self.buffer_hits + other.buffer_hits,
            self.segment_comps + other.segment_comps,
            self.bbox_comps + other.bbox_comps,
        )


@dataclass
class MetricsCounters:
    """Mutable counters threaded through one structure's storage stack.

    Attributes mirror the paper's measurements:

    * ``disk_reads`` -- buffer-pool read misses ("disk accesses").
    * ``disk_writes`` -- dirty pages written back on eviction or flush.
    * ``buffer_hits`` -- page requests satisfied from the pool (not a paper
      metric, but needed to sanity-check the pool and for the page/buffer
      size sweep of Figure 6).
    * ``segment_comps`` -- accesses to the disk-resident segment table;
      each one implies comparing the query against actual segment geometry.
    * ``bbox_comps`` -- bounding *box* computations in the R-tree variants
      and bounding *bucket* computations in the PMR quadtree; the paper
      plots these in Figure 7 and Table 2.
    """

    disk_reads: int = 0
    disk_writes: int = 0
    buffer_hits: int = 0
    segment_comps: int = 0
    bbox_comps: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The five fields plus the reporting alias, keyed by canonical name."""
        return self.snapshot().as_dict()

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            self.disk_reads,
            self.disk_writes,
            self.buffer_hits,
            self.segment_comps,
            self.bbox_comps,
        )

    def since(self, start: MetricsSnapshot) -> MetricsSnapshot:
        """Counter deltas accumulated since ``start`` was taken."""
        return self.snapshot() - start

    def merge(self, other: "MetricsCounters | MetricsSnapshot") -> None:
        """Accumulate another counter set into this one.

        The service layer's per-session attribution relies on this: each
        query runs against a scratch counter set which is then merged into
        both the session's counters and the engine totals, so the session
        counters always sum exactly to the totals.
        """
        self.disk_reads += other.disk_reads
        self.disk_writes += other.disk_writes
        self.buffer_hits += other.buffer_hits
        self.segment_comps += other.segment_comps
        self.bbox_comps += other.bbox_comps

    def reset(self) -> None:
        self.disk_reads = 0
        self.disk_writes = 0
        self.buffer_hits = 0
        self.segment_comps = 0
        self.bbox_comps = 0

    @property
    def disk_accesses(self) -> int:
        return self.disk_reads
