"""Fixed-capacity page cache with pluggable replacement.

All page traffic from the spatial indexes, the B-tree, and the segment
table flows through a pool; a request for a non-resident page is the
paper's "disk access".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs.trace import TRACER
from repro.storage.counters import MetricsCounters
from repro.storage.disk import DiskManager
from repro.storage.policies import LRUPolicy, ReplacementPolicy


@dataclass
class _Frame:
    payload: Any
    dirty: bool


class BufferPool:
    """A pool of ``capacity`` page frames in front of a :class:`DiskManager`.

    The paper's configuration is 16 frames of 1 KiB pages with LRU
    replacement; both knobs are swept in the Figure 6 reproduction.
    """

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = 16,
        counters: Optional[MetricsCounters] = None,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self.counters = counters if counters is not None else MetricsCounters()
        self._policy = policy if policy is not None else LRUPolicy()
        self._frames: Dict[int, _Frame] = {}

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def get(self, page_id: int) -> Any:
        """Fetch a page's payload, faulting it in from disk if needed."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.counters.buffer_hits += 1
            self._policy.record_access(page_id)
            if TRACER.enabled:
                TRACER.event("page_fetch", page=page_id, outcome="hit")
            return frame.payload

        self.counters.disk_reads += 1
        if TRACER.enabled:
            TRACER.event("page_fetch", page=page_id, outcome="miss")
        payload = self.disk.read(page_id)
        self._admit(page_id, payload, dirty=False)
        return payload

    def get_run(self, page_id: int, count: int) -> Any:
        """Fetch a page charged as ``count`` back-to-back accesses.

        Counter-, trace- and replacement-equivalent to calling
        :meth:`get` ``count`` times in a row: the first access takes the
        hit/miss decision, the remaining ``count - 1`` are buffer hits
        on the now-resident page, and the policy sees one net access
        position (LRU is idempotent under repeated touches). Exists so
        the vectorized verify can collapse a run of same-page segment
        fetches into one call without perturbing any measurement.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        frame = self._frames.get(page_id)
        if frame is not None:
            self.counters.buffer_hits += count
            self._policy.record_access(page_id)
            if TRACER.enabled:
                for _ in range(count):
                    TRACER.event("page_fetch", page=page_id, outcome="hit")
            return frame.payload
        self.counters.disk_reads += 1
        self.counters.buffer_hits += count - 1
        if TRACER.enabled:
            TRACER.event("page_fetch", page=page_id, outcome="miss")
            for _ in range(count - 1):
                TRACER.event("page_fetch", page=page_id, outcome="hit")
        payload = self.disk.read(page_id)
        self._admit(page_id, payload, dirty=False)
        return payload

    def get_runs(self, runs) -> None:
        """Charge an ordered sequence of ``(page_id, count)`` access runs.

        Equivalent to calling :meth:`get_run` once per pair, in order,
        discarding the payloads: same counters, same trace events, same
        residency and replacement state afterwards. One call amortizes
        the per-access overhead when a vectorized reader has already
        planned a whole query's page traffic.
        """
        if TRACER.enabled:
            for page_id, count in runs:
                self.get_run(page_id, count)
            return
        counters = self.counters
        frames = self._frames
        record = self._policy.record_access
        read = self.disk.read
        for page_id, count in runs:
            if count <= 0:
                raise ValueError(f"count must be positive, got {count}")
            if page_id in frames:
                counters.buffer_hits += count
                record(page_id)
            else:
                counters.disk_reads += 1
                counters.buffer_hits += count - 1
                self._admit(page_id, read(page_id), dirty=False)

    def create(self, payload: Any) -> int:
        """Allocate a new page born dirty in the pool (no read charged)."""
        page_id = self.disk.allocate(payload)
        self._admit(page_id, payload, dirty=True)
        return page_id

    def mark_dirty(self, page_id: int) -> None:
        """Record that a resident page's payload was mutated.

        The page is faulted in first if it is not resident, since mutating
        a page requires reading it.
        """
        frame = self._frames.get(page_id)
        if frame is None:
            self.get(page_id)
            frame = self._frames[page_id]
        frame.dirty = True

    def put(self, page_id: int, payload: Any) -> None:
        """Replace a page's payload entirely (faulting it in if absent)."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.counters.buffer_hits += 1
            self._policy.record_access(page_id)
            frame.payload = payload
            frame.dirty = True
        else:
            # Blind overwrite: no read is charged because the old contents
            # are not consulted.
            self._admit(page_id, payload, dirty=True)

    def drop(self, page_id: int) -> None:
        """Discard a page from the pool without write-back (page freed)."""
        self._frames.pop(page_id, None)
        self._policy.remove(page_id)

    def flush(self) -> None:
        """Write back every dirty page; residency is unchanged."""
        for page_id, frame in self._frames.items():
            if frame.dirty:
                self.disk.write(page_id, frame.payload)
                self.counters.disk_writes += 1
                frame.dirty = False

    def clear(self) -> None:
        """Flush, then empty the pool (used to cold-start a measurement)."""
        self.flush()
        self._frames.clear()
        while len(self._policy):
            self._policy.evict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_resident(self, page_id: int) -> bool:
        return page_id in self._frames

    def resident_pages(self) -> frozenset:
        return frozenset(self._frames)

    def dirty_pages(self) -> frozenset:
        """Ids of resident pages whose payload has not been written back."""
        return frozenset(
            page_id for page_id, frame in self._frames.items() if frame.dirty
        )

    def has_dirty(self) -> bool:
        return any(frame.dirty for frame in self._frames.values())

    def __len__(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(self, page_id: int, payload: Any, dirty: bool) -> None:
        while len(self._frames) >= self.capacity:
            victim = self._policy.evict()
            victim_frame = self._frames.pop(victim)
            if victim_frame.dirty:
                self.disk.write(victim, victim_frame.payload)
                self.counters.disk_writes += 1
                if TRACER.enabled:
                    TRACER.event("page_write", page=victim, cause="evict")
        self._frames[page_id] = _Frame(payload, dirty)
        self._policy.record_access(page_id)
