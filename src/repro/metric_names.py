"""Single source of truth for the paper-metric counter names.

The five fields of :class:`repro.storage.counters.MetricsCounters` -- and
the ``disk_accesses`` alias the tables report -- appear as dictionary
keys in stats endpoints, bench records, EXPLAIN profiles, and Prometheus
mirrors. A hand-typed ``"segment_comps"`` in one of those places can
silently diverge from the counter it claims to report, so every layer
imports the names from here; lint rule RP03 flags counter-name string
literals anywhere else under ``src/``.

This module is deliberately import-free (no ``repro`` imports at all):
``repro.storage.counters`` and ``repro.obs.metrics`` both depend on it,
and it must never complete that cycle.
"""

from __future__ import annotations

from typing import Tuple

#: Buffer-pool read misses -- the paper's "disk accesses".
DISK_READS = "disk_reads"
#: Dirty pages written back on eviction or flush.
DISK_WRITES = "disk_writes"
#: Page requests satisfied from the pool.
BUFFER_HITS = "buffer_hits"
#: Segment-table fetches (each implies comparing real geometry).
SEGMENT_COMPS = "segment_comps"
#: Bounding box / bucket computations (Figure 7, Table 2).
BBOX_COMPS = "bbox_comps"
#: Reporting alias for ``disk_reads`` used by the tables and stats.
DISK_ACCESSES = "disk_accesses"

#: The mutable fields of ``MetricsCounters``, in declaration order.
COUNTER_FIELDS: Tuple[str, ...] = (
    DISK_READS,
    DISK_WRITES,
    BUFFER_HITS,
    SEGMENT_COMPS,
    BBOX_COMPS,
)

#: The three quantities the paper tabulates per query.
PAPER_METRICS: Tuple[str, ...] = (DISK_ACCESSES, SEGMENT_COMPS, BBOX_COMPS)

#: Fields owned by ``repro.storage`` (I/O accounting).
IO_FIELDS: Tuple[str, ...] = (DISK_READS, DISK_WRITES, BUFFER_HITS)

#: Fields ``repro.core`` may also charge (the measurement instrument).
COMP_FIELDS: Tuple[str, ...] = (SEGMENT_COMPS, BBOX_COMPS)
