"""Planar geometry substrate for the line-segment database reproduction.

Coordinates live on the integer grid used by the paper (a 16K x 16K image
after normalization), but every routine also accepts floats so the same
predicates serve raw map coordinates before normalization.

The public surface is:

* :class:`~repro.geometry.point.Point`, :class:`~repro.geometry.rect.Rect`,
  :class:`~repro.geometry.segment.Segment` -- the value types every other
  package traffics in.
* :mod:`~repro.geometry.predicates` -- exact orientation tests and angular
  ordering around a vertex (used by the enclosing-polygon traversal).
* :mod:`~repro.geometry.clipping` -- Cohen-Sutherland and Liang-Barsky
  segment/rectangle clipping (used to derive q-edges).
* :mod:`~repro.geometry.distance` -- squared Euclidean distances between
  points, segments, and rectangles (used by nearest-neighbour search).
"""

from repro.geometry.batch import batch_intersections
from repro.geometry.clipping import (
    clip_cohen_sutherland,
    clip_liang_barsky,
    segment_intersects_rect,
)
from repro.geometry.distance import (
    point_point_distance2,
    point_rect_distance2,
    point_segment_distance2,
    rect_rect_distance2,
)
from repro.geometry.point import Point
from repro.geometry.predicates import (
    collinear_point_on_segment,
    orientation,
    pseudo_angle,
    segments_intersect,
)
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

__all__ = [
    "Point",
    "Rect",
    "Segment",
    "batch_intersections",
    "clip_cohen_sutherland",
    "clip_liang_barsky",
    "collinear_point_on_segment",
    "orientation",
    "point_point_distance2",
    "point_rect_distance2",
    "point_segment_distance2",
    "pseudo_angle",
    "rect_rect_distance2",
    "segment_intersects_rect",
    "segments_intersect",
]
