"""Batch segment intersection detection.

TIGER data — and everything the enclosing-polygon query touches — must be
*noded*: segments may meet only at shared endpoints. Verifying that for a
50 000-segment county with the O(n²) pairwise test is hopeless, so this
module provides an expected O(n + k) detector using uniform spatial
hashing: each segment is binned into the grid cells it crosses and only
co-resident pairs are tested exactly.

Used by :meth:`repro.data.generator.MapData.planarity_violations` and by
tests as a fast oracle; it is itself property-tested against the brute
pairwise check.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.geometry.clipping import segment_intersects_rect
from repro.geometry.predicates import segments_intersect
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

Pair = Tuple[int, int]


def _cells_of(seg: Segment, cell: float) -> Iterator[Tuple[int, int]]:
    """Grid cells the segment's geometry crosses (closed intersection)."""
    x0 = int(min(seg.x1, seg.x2) // cell)
    x1 = int(max(seg.x1, seg.x2) // cell)
    y0 = int(min(seg.y1, seg.y2) // cell)
    y1 = int(max(seg.y1, seg.y2) // cell)
    if x1 - x0 <= 1 and y1 - y0 <= 1:
        # MBR covers at most 4 cells: no clipping needed.
        for cx in range(x0, x1 + 1):
            for cy in range(y0, y1 + 1):
                yield (cx, cy)
        return
    for cx in range(x0, x1 + 1):
        for cy in range(y0, y1 + 1):
            r = Rect(cx * cell, cy * cell, (cx + 1) * cell, (cy + 1) * cell)
            if segment_intersects_rect(seg.start, seg.end, r):
                yield (cx, cy)


def batch_intersections(
    segments: Sequence[Segment],
    cell_size: float = 0.0,
    ignore_shared_endpoints: bool = False,
) -> Set[Pair]:
    """All index pairs ``(i, j)`` with ``i < j`` whose segments intersect.

    ``cell_size`` defaults to roughly the average segment extent (a good
    bin size for road data); pass it explicitly for degenerate inputs.
    With ``ignore_shared_endpoints`` a pair that only touches at a common
    endpoint is not reported -- which makes the function a direct
    planarity checker.
    """
    n = len(segments)
    if n < 2:
        return set()

    if cell_size <= 0:
        total = sum(
            max(abs(s.x2 - s.x1), abs(s.y2 - s.y1)) for s in segments
        )
        cell_size = max(total / n, 1.0)

    bins: Dict[Tuple[int, int], List[int]] = {}
    for idx, seg in enumerate(segments):
        for cell in _cells_of(seg, cell_size):
            bins.setdefault(cell, []).append(idx)

    out: Set[Pair] = set()
    tested: Set[Pair] = set()
    for members in bins.values():
        for a in range(len(members)):
            i = members[a]
            si = segments[i]
            for b in range(a + 1, len(members)):
                j = members[b]
                pair = (i, j) if i < j else (j, i)
                if pair in tested:
                    continue
                tested.add(pair)
                sj = segments[j]
                if not segments_intersect(si.start, si.end, sj.start, sj.end):
                    continue
                if ignore_shared_endpoints:
                    shared = {si.start, si.end} & {sj.start, sj.end}
                    if shared:
                        # Sharing an endpoint is legal noding unless the
                        # segments also overlap beyond the shared point
                        # (collinear overlap), which two quick interior
                        # probes detect.
                        if not _collinear_overlap(si, sj):
                            continue
                out.add(pair)
    return out


def _collinear_overlap(a: Segment, b: Segment) -> bool:
    """Whether two endpoint-sharing segments overlap along a line."""
    from repro.geometry.predicates import (
        collinear_point_on_segment,
        orientation,
    )

    if orientation(a.start, a.end, b.start) != 0 or orientation(
        a.start, a.end, b.end
    ) != 0:
        return False
    # Collinear: they overlap iff some non-shared endpoint lies strictly
    # inside the other segment.
    for p in (b.start, b.end):
        if p not in (a.start, a.end) and collinear_point_on_segment(
            a.start, a.end, p
        ):
            return True
    for p in (a.start, a.end):
        if p not in (b.start, b.end) and collinear_point_on_segment(
            b.start, b.end, p
        ):
            return True
    # Identical segments overlap.
    return {a.start, a.end} == {b.start, b.end}
