"""Axis-aligned rectangle (minimum bounding rectangle) value type."""

from __future__ import annotations

from typing import Iterable, NamedTuple, Optional

from repro.geometry.point import Point


class Rect(NamedTuple):
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    Degenerate rectangles (zero width and/or height) are legal: the MBR of
    a horizontal, vertical, or point-like segment is degenerate, and the
    R-tree variants store such MBRs routinely.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """The MBR of two points (e.g. a segment's endpoints)."""
        return cls(
            a.x if a.x <= b.x else b.x,
            a.y if a.y <= b.y else b.y,
            a.x if a.x >= b.x else b.x,
            a.y if a.y >= b.y else b.y,
        )

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """The MBR of a non-empty collection of rectangles."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("union_of() requires at least one rectangle") from None
        xmin, ymin, xmax, ymax = first
        for r in it:
            if r.xmin < xmin:
                xmin = r.xmin
            if r.ymin < ymin:
                ymin = r.ymin
            if r.xmax > xmax:
                xmax = r.xmax
            if r.ymax > ymax:
                ymax = r.ymax
        return cls(xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------
    # Scalar properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def is_valid(self) -> bool:
        """True when min corners do not exceed max corners."""
        return self.xmin <= self.xmax and self.ymin <= self.ymax

    def area(self) -> float:
        """Area; zero for degenerate rectangles."""
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def perimeter(self) -> float:
        """Perimeter (the R*-tree split criterion calls this *margin*)."""
        return 2.0 * ((self.xmax - self.xmin) + (self.ymax - self.ymin))

    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """Closed containment: boundary points are contained."""
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        """Closed intersection: touching edges/corners count."""
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def merged(self, other: "Rect") -> "Rect":
        """The MBR of this rectangle and ``other``."""
        return Rect(
            self.xmin if self.xmin <= other.xmin else other.xmin,
            self.ymin if self.ymin <= other.ymin else other.ymin,
            self.xmax if self.xmax >= other.xmax else other.xmax,
            self.ymax if self.ymax >= other.ymax else other.ymax,
        )

    def expanded_to_point(self, p: Point) -> "Rect":
        return Rect(
            self.xmin if self.xmin <= p.x else p.x,
            self.ymin if self.ymin <= p.y else p.y,
            self.xmax if self.xmax >= p.x else p.x,
            self.ymax if self.ymax >= p.y else p.y,
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlap rectangle, or ``None`` when disjoint."""
        xmin = self.xmin if self.xmin >= other.xmin else other.xmin
        ymin = self.ymin if self.ymin >= other.ymin else other.ymin
        xmax = self.xmax if self.xmax <= other.xmax else other.xmax
        ymax = self.ymax if self.ymax <= other.ymax else other.ymax
        if xmin > xmax or ymin > ymax:
            return None
        return Rect(xmin, ymin, xmax, ymax)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the overlap with ``other`` (zero when disjoint)."""
        w = (self.xmax if self.xmax <= other.xmax else other.xmax) - (
            self.xmin if self.xmin >= other.xmin else other.xmin
        )
        if w <= 0:
            return 0.0
        h = (self.ymax if self.ymax <= other.ymax else other.ymax) - (
            self.ymin if self.ymin >= other.ymin else other.ymin
        )
        if h <= 0:
            return 0.0
        return w * h

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for this rectangle to also cover ``other``.

        This is the classic Guttman ``ChooseLeaf`` criterion.
        """
        merged = self.merged(other)
        return merged.area() - self.area()
