"""Segment/rectangle clipping.

The paper stores, per bucket, only *pointers* to full line segments; the
part of a segment inside a block (its *q-edge*) is recovered on demand by
clipping the segment against the block. Both textbook algorithms the paper
cites (via Foley et al.) are provided: Cohen-Sutherland and Liang-Barsky.
They are cross-checked against each other in the property tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect

# Cohen-Sutherland outcodes.
_INSIDE = 0
_LEFT = 1
_RIGHT = 2
_BOTTOM = 4
_TOP = 8


def _outcode(x: float, y: float, r: Rect) -> int:
    code = _INSIDE
    if x < r.xmin:
        code |= _LEFT
    elif x > r.xmax:
        code |= _RIGHT
    if y < r.ymin:
        code |= _BOTTOM
    elif y > r.ymax:
        code |= _TOP
    return code


def clip_cohen_sutherland(
    p1: Point, p2: Point, rect: Rect
) -> Optional[Tuple[Point, Point]]:
    """Clip segment ``p1 p2`` to ``rect`` with the Cohen-Sutherland algorithm.

    Returns the clipped endpoints, or ``None`` when the segment misses the
    rectangle entirely. Grazing contact (a single boundary point) returns a
    degenerate segment, matching the closed-rectangle convention used by
    the indexes.
    """
    x1, y1 = p1
    x2, y2 = p2
    code1 = _outcode(x1, y1, rect)
    code2 = _outcode(x2, y2, rect)

    while True:
        if not (code1 | code2):
            return Point(x1, y1), Point(x2, y2)
        if code1 & code2:
            return None

        # Pick an endpoint that is outside and move it to the boundary.
        out = code1 if code1 else code2
        if out & _TOP:
            x = x1 + (x2 - x1) * (rect.ymax - y1) / (y2 - y1)
            y = rect.ymax
        elif out & _BOTTOM:
            x = x1 + (x2 - x1) * (rect.ymin - y1) / (y2 - y1)
            y = rect.ymin
        elif out & _RIGHT:
            y = y1 + (y2 - y1) * (rect.xmax - x1) / (x2 - x1)
            x = rect.xmax
        else:  # _LEFT
            y = y1 + (y2 - y1) * (rect.xmin - x1) / (x2 - x1)
            x = rect.xmin

        if out == code1:
            x1, y1 = x, y
            code1 = _outcode(x1, y1, rect)
        else:
            x2, y2 = x, y
            code2 = _outcode(x2, y2, rect)


def clip_liang_barsky(
    p1: Point, p2: Point, rect: Rect
) -> Optional[Tuple[Point, Point]]:
    """Clip segment ``p1 p2`` to ``rect`` with the Liang-Barsky algorithm.

    Parametric clipping; returns the same results as Cohen-Sutherland (up
    to floating-point rounding) with fewer intersection computations.
    """
    x1, y1 = p1
    x2, y2 = p2
    dx = x2 - x1
    dy = y2 - y1

    t0 = 0.0
    t1 = 1.0
    for p, q in (
        (-dx, x1 - rect.xmin),
        (dx, rect.xmax - x1),
        (-dy, y1 - rect.ymin),
        (dy, rect.ymax - y1),
    ):
        if p == 0:
            if q < 0:
                return None  # parallel and outside this boundary
            continue
        t = q / p
        if p < 0:
            if t > t1:
                return None
            if t > t0:
                t0 = t
        else:
            if t < t0:
                return None
            if t < t1:
                t1 = t

    return (
        Point(x1 + t0 * dx, y1 + t0 * dy),
        Point(x1 + t1 * dx, y1 + t1 * dy),
    )


def segment_intersects_rect(p1: Point, p2: Point, rect: Rect) -> bool:
    """Fast boolean: does segment ``p1 p2`` meet the closed rectangle?

    Used on every insertion into the disjoint structures (R+-tree, PMR
    quadtree) to decide which blocks a segment belongs to, so it avoids
    divisions on the common accept/reject paths.
    """
    code1 = _outcode(p1.x, p1.y, rect)
    if not code1:
        return True
    code2 = _outcode(p2.x, p2.y, rect)
    if not code2:
        return True
    if code1 & code2:
        return False

    # Both endpoints outside, on different sides: the segment meets the
    # rectangle iff the four corners do not all lie strictly on one side
    # of the segment's supporting line.
    dx = p2.x - p1.x
    dy = p2.y - p1.y
    sign = 0
    for cx, cy in (
        (rect.xmin, rect.ymin),
        (rect.xmin, rect.ymax),
        (rect.xmax, rect.ymin),
        (rect.xmax, rect.ymax),
    ):
        cross = dx * (cy - p1.y) - dy * (cx - p1.x)
        if cross > 0:
            if sign < 0:
                return True
            sign = 1
        elif cross < 0:
            if sign > 0:
                return True
            sign = -1
        else:
            return True  # a corner lies on the line, within the slab test below

    return False
