"""Line segment value type."""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

from repro.geometry.clipping import clip_liang_barsky, segment_intersects_rect
from repro.geometry.distance import point_segment_distance2
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class Segment(NamedTuple):
    """A line segment given by its two endpoints.

    This is the *representative point* discussed in Section 2 of the paper:
    four coordinate values. The spatial indexes never store the geometry
    itself -- they store segment identifiers that resolve to one of these
    through the disk-resident segment table.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    # ------------------------------------------------------------------
    # Construction / views
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Segment":
        return cls(a.x, a.y, b.x, b.y)

    @property
    def start(self) -> Point:
        return Point(self.x1, self.y1)

    @property
    def end(self) -> Point:
        return Point(self.x2, self.y2)

    def endpoints(self) -> Tuple[Point, Point]:
        return self.start, self.end

    def reversed(self) -> "Segment":
        return Segment(self.x2, self.y2, self.x1, self.y1)

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the segment."""
        return Rect(
            self.x1 if self.x1 <= self.x2 else self.x2,
            self.y1 if self.y1 <= self.y2 else self.y2,
            self.x1 if self.x1 >= self.x2 else self.x2,
            self.y1 if self.y1 >= self.y2 else self.y2,
        )

    # ------------------------------------------------------------------
    # Scalar properties
    # ------------------------------------------------------------------
    def length2(self) -> float:
        dx = self.x2 - self.x1
        dy = self.y2 - self.y1
        return dx * dx + dy * dy

    def length(self) -> float:
        return self.length2() ** 0.5

    def is_degenerate(self) -> bool:
        """True when both endpoints coincide."""
        return self.x1 == self.x2 and self.y1 == self.y2

    # ------------------------------------------------------------------
    # Predicates and queries
    # ------------------------------------------------------------------
    def has_endpoint(self, p: Point) -> bool:
        return (self.x1 == p.x and self.y1 == p.y) or (
            self.x2 == p.x and self.y2 == p.y
        )

    def other_endpoint(self, p: Point) -> Point:
        """The endpoint that is not ``p``.

        Raises ``ValueError`` when ``p`` is not an endpoint; for a
        degenerate segment both endpoints are ``p`` and ``p`` is returned.
        """
        if self.x1 == p.x and self.y1 == p.y:
            return self.end
        if self.x2 == p.x and self.y2 == p.y:
            return self.start
        raise ValueError(f"{p!r} is not an endpoint of {self!r}")

    def intersects_rect(self, rect: Rect) -> bool:
        """Whether any part of the segment meets the closed rectangle."""
        return segment_intersects_rect(self.start, self.end, rect)

    def clipped(self, rect: Rect) -> Optional["Segment"]:
        """The q-edge of this segment within ``rect`` (or ``None``)."""
        clipped = clip_liang_barsky(self.start, self.end, rect)
        if clipped is None:
            return None
        a, b = clipped
        return Segment(a.x, a.y, b.x, b.y)

    def distance2_to_point(self, p: Point) -> float:
        return point_segment_distance2(p, self.start, self.end)
