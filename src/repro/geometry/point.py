"""Two-dimensional point value type."""

from __future__ import annotations

from typing import NamedTuple


class Point(NamedTuple):
    """A point on the map grid.

    Points are plain tuples, so they hash, compare, and unpack cheaply;
    the spatial indexes move millions of them during a build.
    """

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return this point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance2(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other``."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def as_int(self) -> "Point":
        """Return the point with coordinates rounded to the integer grid."""
        return Point(int(round(self.x)), int(round(self.y)))
