"""Squared Euclidean distances between points, segments, and rectangles.

Squared distances are used throughout (the nearest-segment search only
compares distances), so no square roots are taken on the hot path.
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def point_point_distance2(a: Point, b: Point) -> float:
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def point_segment_distance2(p: Point, a: Point, b: Point) -> float:
    """Squared distance from point ``p`` to the closed segment ``ab``."""
    abx = b.x - a.x
    aby = b.y - a.y
    apx = p.x - a.x
    apy = p.y - a.y
    denom = abx * abx + aby * aby
    if denom == 0:  # degenerate segment
        return apx * apx + apy * apy
    t = (apx * abx + apy * aby) / denom
    if t <= 0:
        return apx * apx + apy * apy
    if t >= 1:
        bpx = p.x - b.x
        bpy = p.y - b.y
        return bpx * bpx + bpy * bpy
    cx = a.x + t * abx - p.x
    cy = a.y + t * aby - p.y
    return cx * cx + cy * cy


def point_rect_distance2(p: Point, r: Rect) -> float:
    """Squared distance from ``p`` to the closed rectangle ``r``.

    Zero when ``p`` is inside or on the boundary. This is the MINDIST
    lower bound that drives best-first nearest-neighbour search over both
    R-tree nodes and quadtree blocks.
    """
    dx = 0.0
    if p.x < r.xmin:
        dx = r.xmin - p.x
    elif p.x > r.xmax:
        dx = p.x - r.xmax
    dy = 0.0
    if p.y < r.ymin:
        dy = r.ymin - p.y
    elif p.y > r.ymax:
        dy = p.y - r.ymax
    return dx * dx + dy * dy


def segment_segment_distance2(
    a1: Point, a2: Point, b1: Point, b2: Point
) -> float:
    """Squared distance between two closed segments (zero if they meet)."""
    from repro.geometry.predicates import segments_intersect

    if segments_intersect(a1, a2, b1, b2):
        return 0.0
    return min(
        point_segment_distance2(a1, b1, b2),
        point_segment_distance2(a2, b1, b2),
        point_segment_distance2(b1, a1, a2),
        point_segment_distance2(b2, a1, a2),
    )


def rect_rect_distance2(a: Rect, b: Rect) -> float:
    """Squared distance between two closed rectangles (zero if they meet)."""
    dx = 0.0
    if a.xmax < b.xmin:
        dx = b.xmin - a.xmax
    elif b.xmax < a.xmin:
        dx = a.xmin - b.xmax
    dy = 0.0
    if a.ymax < b.ymin:
        dy = b.ymin - a.ymax
    elif b.ymax < a.ymin:
        dy = a.ymin - b.ymax
    return dx * dx + dy * dy
