"""Exact orientation predicates and angular ordering.

All predicates are exact for integer inputs because they reduce to signs of
integer cross products; that exactness is what lets the polygon-traversal
query walk a planar map without robustness escapes.
"""

from __future__ import annotations

from repro.geometry.point import Point


def orientation(a: Point, b: Point, c: Point) -> int:
    """Sign of the cross product ``(b - a) x (c - a)``.

    Returns ``1`` when ``a, b, c`` make a left (counter-clockwise) turn,
    ``-1`` for a right (clockwise) turn, and ``0`` when collinear.
    """
    cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    if cross > 0:
        return 1
    if cross < 0:
        return -1
    return 0


def collinear_point_on_segment(a: Point, b: Point, p: Point) -> bool:
    """Whether ``p``, known to be collinear with ``ab``, lies on segment ``ab``."""
    return (
        min(a.x, b.x) <= p.x <= max(a.x, b.x)
        and min(a.y, b.y) <= p.y <= max(a.y, b.y)
    )


def segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """Closed segment intersection test (shared endpoints count).

    The standard orientation-based test, exact for integer coordinates.
    """
    o1 = orientation(p1, p2, q1)
    o2 = orientation(p1, p2, q2)
    o3 = orientation(q1, q2, p1)
    o4 = orientation(q1, q2, p2)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and collinear_point_on_segment(p1, p2, q1):
        return True
    if o2 == 0 and collinear_point_on_segment(p1, p2, q2):
        return True
    if o3 == 0 and collinear_point_on_segment(q1, q2, p1):
        return True
    if o4 == 0 and collinear_point_on_segment(q1, q2, p2):
        return True
    return False


def pseudo_angle(dx: float, dy: float) -> float:
    """A monotone stand-in for ``atan2(dy, dx)`` on ``[0, 4)``.

    Increases counter-clockwise starting from the positive x axis, with no
    trigonometry, so sorting edges around a vertex is cheap and (for integer
    inputs) free of rounding surprises everywhere except exact ties, which
    correspond to genuinely collinear directions.

    Raises ``ValueError`` for the zero vector, which has no direction.
    """
    if dx == 0 and dy == 0:
        raise ValueError("pseudo_angle() of zero vector")
    ax = abs(dx)
    ay = abs(dy)
    p = dy / (ax + ay)  # in [-1, 1], monotone with angle in each half-plane
    if dx < 0:
        p = 2 - p  # quadrants II/III
    elif dy < 0:
        p = 4 + p  # quadrant IV
    return p


def ccw_angle_from(base_dx: float, base_dy: float, dx: float, dy: float) -> float:
    """Counter-clockwise angle (as a pseudo-angle in ``[0, 4)``) from the
    direction ``(base_dx, base_dy)`` to the direction ``(dx, dy)``.

    Zero means the directions coincide. Used by the enclosing-polygon walk
    to pick the next edge around a shared vertex.
    """
    diff = pseudo_angle(dx, dy) - pseudo_angle(base_dx, base_dy)
    if diff < 0:
        diff += 4.0
    return diff
