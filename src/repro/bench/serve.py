"""The serving-path perf baseline: threaded vs async under load.

``python -m repro bench --serve --json BENCH_serve.json`` runs the same
seeded workload through both front ends over one built index:

* **threaded** -- the closed-loop ``bench-serve`` shape: K client
  threads, one connection and one in-flight request each, against the
  threaded :class:`~repro.service.server.MapServer`;
* **async** -- the saturation shape: ``async_multiplier`` x K pipelined
  v2 connections against the :class:`~repro.aio.server.AsyncMapServer`
  (the acceptance floor for the async front end is sustaining at least
  5x the threaded connection count), plus a durable sub-run with a
  mutation share that measures group commit: fsyncs-per-mutation, with
  1.0 being the threaded server's per-request floor.

Only deterministic points gate: request error counts (zero on a healthy
serve path) and counter consistency. Latency percentiles and the
group-commit ratio are recorded and *warned* on drift, never gated -- a
CI runner is not a benchmark rig, and fsync batching depends on disk
timing.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List, Optional

from repro.aio.loadgen import bench_serve_async
from repro.bench.runner import BENCH_SCHEMA_VERSION
from repro.obs.buildinfo import git_sha
from repro.service.loadgen import bench_serve

#: The serving record's ``kind`` discriminator.
SERVE_BENCH_KIND = "repro-serve-bench"

#: Everything that determines the deterministic gate points.
SERVE_DEFAULT_PARAMS: Dict[str, object] = {
    "county": "charles",
    "scale": 0.02,
    "structure": "R*",
    "threads": 8,
    "requests": 400,
    "pipeline": 8,
    "async_multiplier": 5,
    "mutate_frac": 0.2,
    "seed": 0,
}

#: The two serving modes every record carries.
SERVE_MODES = ("threaded", "async")


def run_serve_bench(
    params: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Produce one ``repro-serve-bench`` record (see the module docstring)."""
    p = dict(SERVE_DEFAULT_PARAMS)
    if params:
        p.update(params)
    threads = int(p["threads"])
    requests = int(p["requests"])
    pipeline = int(p["pipeline"])
    async_connections = threads * int(p["async_multiplier"])

    threaded = bench_serve(
        county=str(p["county"]),
        scale=float(p["scale"]),
        structure=str(p["structure"]),
        threads=threads,
        requests=requests,
        seed=int(p["seed"]),
    )
    # The tracing tax, measured: the same threaded workload with
    # distributed sampling armed at 1.0 (every request records, stitches,
    # and ships its span tree). Recorded and warned on drift, not gated.
    from repro.obs.trace import TRACER

    TRACER.arm(1.0)
    try:
        sampled = bench_serve(
            county=str(p["county"]),
            scale=float(p["scale"]),
            structure=str(p["structure"]),
            threads=threads,
            requests=requests,
            seed=int(p["seed"]),
        )
    finally:
        TRACER.disarm()
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        awaited = bench_serve_async(
            county=str(p["county"]),
            scale=float(p["scale"]),
            structure=str(p["structure"]),
            connections=async_connections,
            pipeline=pipeline,
            requests=requests,
            seed=int(p["seed"]),
            wal_dir=tmp + "/wal",
            mutate_frac=float(p["mutate_frac"]),
        )
    lat_t, lat_a = threaded.latency_ms, awaited.latency_ms
    p50_off = lat_t["p50"]
    p50_on = sampled.latency_ms["p50"]
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": SERVE_BENCH_KIND,
        "git_sha": git_sha(),
        "params": p,
        "trace_overhead": {
            "p50_off_ms": p50_off,
            "p50_sampled_ms": p50_on,
            "delta_pct": round(
                (p50_on - p50_off) / p50_off * 100.0, 1
            )
            if p50_off > 0
            else 0.0,
        },
        "modes": {
            "threaded": {
                "connections": threaded.threads,
                "requests": threaded.requests,
                "errors": threaded.errors,
                "counters_consistent": threaded.counters_consistent,
                "throughput_qps": threaded.throughput_qps,
                "wall": {
                    "p50_ms": lat_t["p50"],
                    "p99_ms": lat_t["p99"],
                    "max_ms": lat_t["max"],
                },
            },
            "async": {
                "connections": awaited.connections,
                "pipeline": awaited.pipeline,
                "requests": awaited.requests,
                "errors": awaited.errors,
                "overloaded": awaited.overloaded,
                "counters_consistent": awaited.counters_consistent,
                "throughput_qps": awaited.throughput_qps,
                "wall": {
                    "p50_ms": lat_a["p50"],
                    "p99_ms": lat_a["p99"],
                    "max_ms": lat_a["max"],
                },
                "group_commit": awaited.group_commit,
            },
        },
    }


def validate_serve_record(record: object) -> List[str]:
    """Schema problems in a serving record (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if record.get("kind") != SERVE_BENCH_KIND:
        problems.append(
            f"kind must be {SERVE_BENCH_KIND!r}, got {record.get('kind')!r}"
        )
    if record.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, "
            f"got {record.get('schema_version')!r}"
        )
    if not isinstance(record.get("git_sha"), str):
        problems.append("git_sha must be a string")
    params = record.get("params")
    if not isinstance(params, dict):
        problems.append("params must be an object")
    else:
        missing = sorted(set(SERVE_DEFAULT_PARAMS) - set(params))
        if missing:
            problems.append(f"params missing keys: {missing}")
    modes = record.get("modes")
    if not isinstance(modes, dict):
        return problems + ["modes must be an object"]
    for mode in SERVE_MODES:
        entry = modes.get(mode)
        if not isinstance(entry, dict):
            problems.append(f"modes.{mode} missing or not an object")
            continue
        for key in ("connections", "requests", "errors"):
            if not isinstance(entry.get(key), int):
                problems.append(f"modes.{mode}.{key} must be an integer")
        wall = entry.get("wall")
        if not isinstance(wall, dict) or not all(
            isinstance(wall.get(k), (int, float))
            for k in ("p50_ms", "p99_ms", "max_ms")
        ):
            problems.append(
                f"modes.{mode}.wall must carry p50_ms/p99_ms/max_ms numbers"
            )
    threaded = modes.get("threaded")
    awaited = modes.get("async")
    if isinstance(threaded, dict) and isinstance(awaited, dict):
        tc, ac = threaded.get("connections"), awaited.get("connections")
        if isinstance(tc, int) and isinstance(ac, int) and tc > 0 and ac < 5 * tc:
            problems.append(
                f"async connections ({ac}) must be at least 5x the threaded "
                f"count ({tc}); the async front end exists to hold more "
                f"connections, and this record does not show it"
            )
        if not isinstance(awaited.get("group_commit"), dict):
            problems.append("modes.async.group_commit must be an object")
    return problems


def serve_gate_points(record: Dict[str, object]):
    """Deterministic points: errors stay zero, counters stay consistent."""
    modes = record["modes"]
    for mode in sorted(modes):  # type: ignore[call-overload]
        entry = modes[mode]  # type: ignore[index]
        yield f"{mode}/errors", int(entry["errors"])
        yield f"{mode}/counters_inconsistent", int(
            not entry.get("counters_consistent", True)
        )


def serve_wall_points(record: Dict[str, object]):
    """Warn-only points: latency percentiles and the fsync ratio."""
    modes = record["modes"]
    for mode in sorted(modes):  # type: ignore[call-overload]
        wall = modes[mode]["wall"]  # type: ignore[index]
        yield f"{mode}/p50_ms", float(wall["p50_ms"])
        yield f"{mode}/p99_ms", float(wall["p99_ms"])
    # Additive point: absent from pre-tracing baselines, so the compare
    # loop (which only warns when both sides carry a point) skips it.
    overhead = record.get("trace_overhead") or {}
    if isinstance(overhead, dict) and "p50_sampled_ms" in overhead:
        yield "threaded/p50_sampled_ms", float(overhead["p50_sampled_ms"])
    gc = modes["async"].get("group_commit") or {}  # type: ignore[index]
    if gc.get("mutations"):
        yield "async/fsyncs_per_mutation", float(gc["fsyncs_per_mutation"])
