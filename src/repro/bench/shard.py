"""The routed perf baseline: drive a shard set through the router.

``python -m repro bench --routed --json BENCH_shard.json`` builds one
shard set per headline structure (R*, R+, PMR) in a scratch directory,
serves every shard in-process over loopback TCP, and drives five
workloads through a :class:`~repro.shard.ShardRouter` -- so the record
prices the *whole* sharded read/write path: clipping, scatter-gather,
cross-shard dedup, and the replicated-table fan-out of mutations.

The record has the same shape as the unsharded ``repro-bench`` record
(structures -> workloads -> the paper's three counters plus wall-clock
percentiles) under its own ``kind``, so the regression gate in
:mod:`repro.bench.compare` gates it with the same machinery but refuses
to compare a routed record against an unsharded baseline.

Counters come from the router's merged ``stats`` totals (the sum over
shards), sampled before and after each workload.  Requests run on a
single client thread in seeded order, so every gated counter is
deterministic; only the wall-clock numbers vary by machine, and those
never gate.
"""

from __future__ import annotations

import json
import random
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.runner import (
    BENCH_SCHEMA_VERSION,
    _wall_summary,
    validate_record,
)
from repro.data.counties import generate_county
from repro.metric_names import BBOX_COMPS, DISK_ACCESSES, PAPER_METRICS, SEGMENT_COMPS
from repro.obs.buildinfo import git_sha

#: The routed record's ``kind`` discriminator.
SHARD_BENCH_KIND = "repro-shard-bench"

#: Structures the routed baseline tracks (same headliners as the
#: unsharded bench; each gets its own shard set).
SHARD_BENCH_STRUCTURES: Tuple[str, ...] = ("R*", "R+", "PMR")

#: The five routed workloads: three scatter-gather reads, one batch
#: mix, and one mutation round-trip (inserts then deletes -- the
#: replicated-table write fan-out).
SHARD_BENCH_WORKLOADS: Tuple[str, ...] = (
    "point",
    "window",
    "nearest",
    "batch",
    "mutate",
)

#: Everything that determines the deterministic counters.  ``n_shards``
#: joins the usual workload knobs because the shard layout changes which
#: indexes a query touches.
SHARD_DEFAULT_PARAMS: Dict[str, object] = {
    "county": "cecil",
    "scale": 0.02,
    "n_queries": 25,
    "seed": 1992,
    "page_size": 2048,
    "pool_pages": 16,
    "n_shards": 4,
}


def validate_shard_record(record: object) -> List[str]:
    """Schema check for a routed record (empty list means valid)."""
    return validate_record(
        record,
        kind=SHARD_BENCH_KIND,
        required_structures=SHARD_BENCH_STRUCTURES,
        required_workloads=SHARD_BENCH_WORKLOADS,
        param_keys=tuple(SHARD_DEFAULT_PARAMS),
    )


def _workload_requests(
    map_data, n: int, seed: int
) -> Dict[str, List[Dict[str, Any]]]:
    """The five seeded request streams, as raw wire payloads.

    Point queries hit actual segment endpoints (the paper's model:
    queries are data-correlated); windows and nearest probes are
    uniform over the world square.  The mutate stream is built lazily
    by the runner because deletes need the seg_ids the inserts return.
    """
    rng = random.Random(seed)
    world = map_data.world_size
    segments = map_data.segments

    points = []
    for _ in range(n):
        seg = segments[rng.randrange(len(segments))]
        x, y = (seg.x1, seg.y1) if rng.random() < 0.5 else (seg.x2, seg.y2)
        points.append({"op": "point", "x": x, "y": y})

    windows = []
    span = world * 0.03
    for _ in range(n):
        x = rng.uniform(0.0, world - span)
        y = rng.uniform(0.0, world - span)
        windows.append(
            {"op": "window", "x1": x, "y1": y, "x2": x + span, "y2": y + span}
        )

    nearest = [
        {
            "op": "nearest",
            "x": rng.uniform(0.0, world),
            "y": rng.uniform(0.0, world),
            "k": 2,
        }
        for _ in range(n)
    ]

    batches = []
    members = points + windows + nearest
    rng.shuffle(members)
    for base in range(0, min(n * 3, len(members)), 5):
        chunk = members[base : base + 5]
        if chunk:
            batches.append({"op": "batch", "requests": chunk})

    inserts = []
    for _ in range(n):
        x = rng.uniform(0.0, world * 0.9)
        y = rng.uniform(0.0, world * 0.9)
        inserts.append(
            {
                "op": "insert",
                "x1": x,
                "y1": y,
                "x2": x + rng.uniform(1.0, world * 0.05),
                "y2": y + rng.uniform(1.0, world * 0.05),
            }
        )

    return {
        "point": points,
        "window": windows,
        "nearest": nearest,
        "batch": batches,
        "mutate": inserts,
    }


def _respond(router, payload: Dict[str, Any]) -> Any:
    """One request through the router's full respond path; raises on an
    error envelope so a broken set fails the bench loudly."""
    response = router.respond(json.dumps(payload))
    if not response.get("ok"):
        err = response.get("error", {})
        raise RuntimeError(
            f"routed bench request failed: {err.get('code')}: "
            f"{err.get('message')} (op {payload.get('op')!r})"
        )
    return response["result"]


def _totals(router) -> Dict[str, int]:
    """The router's merged counter totals (summed across shards)."""
    stats = _respond(router, {"op": "stats"})
    return dict(stats["totals"])


def _run_routed_workload(
    router, name: str, requests: List[Dict[str, Any]]
) -> Dict[str, object]:
    before = _totals(router)
    wall_ms: List[float] = []
    n = 0
    seg_ids: List[int] = []
    for payload in requests:
        start = time.perf_counter()
        result = _respond(router, payload)
        wall_ms.append((time.perf_counter() - start) * 1e3)
        n += 1
        if name == "mutate":
            seg_ids.append(int(result))
    if name == "mutate":
        # Delete everything the workload inserted, so every structure's
        # bench starts and ends with the same live set and the record
        # prices the full mutation round trip.
        for seg_id in seg_ids:
            start = time.perf_counter()
            _respond(router, {"op": "delete", "seg_id": seg_id})
            wall_ms.append((time.perf_counter() - start) * 1e3)
            n += 1
    after = _totals(router)
    out: Dict[str, object] = {"queries": n}
    for metric in PAPER_METRICS:
        out[metric] = int(after.get(metric, 0)) - int(before.get(metric, 0))
    out["wall"] = _wall_summary(wall_ms)
    return out


def run_shard_bench(
    params: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build, serve, and drive one shard set per structure; return the
    schema-versioned routed record (see :func:`validate_shard_record`)."""
    from repro.shard import LocalShardSet, ShardRouter, init_shard_set

    p = dict(SHARD_DEFAULT_PARAMS)
    if params:
        p.update(params)
    map_data = generate_county(str(p["county"]), scale=float(p["scale"]))
    streams = _workload_requests(map_data, int(p["n_queries"]), int(p["seed"]))

    structures: Dict[str, object] = {}
    for name in SHARD_BENCH_STRUCTURES:
        with tempfile.TemporaryDirectory(prefix="repro-shard-bench-") as root:
            build_start = time.perf_counter()
            smap = init_shard_set(
                root,
                name,
                map_data=map_data,
                n_shards=int(p["n_shards"]),
                page_size=int(p["page_size"]),
                pool_pages=int(p["pool_pages"]),
            )
            build_seconds = time.perf_counter() - build_start
            with LocalShardSet(root):
                router = ShardRouter(root)
                router.start_background()
                try:
                    workload_out: Dict[str, object] = {}
                    totals = {metric: 0 for metric in PAPER_METRICS}
                    for wname in SHARD_BENCH_WORKLOADS:
                        result = _run_routed_workload(
                            router, wname, streams[wname]
                        )
                        workload_out[wname] = result
                        for metric in PAPER_METRICS:
                            totals[metric] += int(result[metric])  # type: ignore[call-overload]
                finally:
                    router.close()
            structures[name] = {
                "build": {
                    "seconds": round(build_seconds, 4),
                    "shards": len(smap.shards),
                    "epoch": smap.epoch,
                    "segments": len(map_data.segments),
                },
                "workloads": workload_out,
                "totals": totals,
            }

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": SHARD_BENCH_KIND,
        "git_sha": git_sha(),
        "params": p,
        "structures": structures,
    }
