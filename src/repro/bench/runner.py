"""Run the fixed benchmark workload and emit a ``BENCH_*.json`` record.

The workload is deliberately small and fully seeded: one synthetic
county at a fixed scale, the three headline structures, and the five
query kinds of the paper's Table 2 (endpoint point query, two-endpoint
point query, nearest neighbor, enclosing polygon, range window).  Every
quantity the regression gate compares is a deterministic counter, so a
record produced on any machine is comparable with a record produced on
any other; wall-clock percentiles ride along for trending only.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.backends import SCALAR_BACKEND, resolve_backend
from repro.core.queries.spec import QuerySpec
from repro.data.counties import generate_county
from repro.harness.experiment import BuiltStructure, build_structure
from repro.harness.workloads import QueryWorkloads
from repro.metric_names import BBOX_COMPS, DISK_ACCESSES, PAPER_METRICS, SEGMENT_COMPS
from repro.obs.buildinfo import git_sha

#: Bump on any incompatible change to the record layout; the comparator
#: refuses to gate across versions.
BENCH_SCHEMA_VERSION = 1

#: The record's ``kind`` discriminator.
BENCH_KIND = "repro-bench"

#: Structures the baseline tracks (the paper's three headliners).
BENCH_STRUCTURES: Tuple[str, ...] = ("R*", "R+", "PMR")

#: The five query workloads, in table order.
BENCH_WORKLOADS: Tuple[str, ...] = (
    "point",
    "point2",
    "nearest",
    "polygon",
    "range",
)

#: Everything that determines the deterministic counters. A baseline and
#: a fresh record are only comparable when these match exactly.
DEFAULT_PARAMS: Dict[str, object] = {
    "county": "cecil",
    "scale": 0.02,
    "n_queries": 25,
    "seed": 1992,
    "page_size": 1024,
    "pool_pages": 16,
}


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _wall_summary(wall_ms: List[float]) -> Dict[str, float]:
    ordered = sorted(wall_ms)
    return {
        "p50_ms": round(_percentile(ordered, 0.50), 4),
        "p90_ms": round(_percentile(ordered, 0.90), 4),
        "max_ms": round(_percentile(ordered, 1.0), 4),
    }


def _run_workload(built: BuiltStructure, thunks) -> Dict[str, object]:
    """Cold-start the pool, run each query, total counters + times."""
    built.ctx.pool.clear()
    before = built.ctx.counters.snapshot()
    wall_ms: List[float] = []
    n = 0
    for thunk in thunks:
        start = time.perf_counter()
        thunk()
        wall_ms.append((time.perf_counter() - start) * 1e3)
        n += 1
    delta = built.ctx.counters.since(before)
    out: Dict[str, object] = {"queries": n}
    out[DISK_ACCESSES] = delta.disk_accesses
    out[SEGMENT_COMPS] = delta.segment_comps
    out[BBOX_COMPS] = delta.bbox_comps
    out["wall"] = _wall_summary(wall_ms)
    return out


def _workload_thunks(
    built: BuiltStructure, workloads: QueryWorkloads, backend=None
):
    """The five named workloads as (name, thunk-iterable) pairs."""
    idx = built.index
    be = backend if backend is not None else SCALAR_BACKEND
    return (
        (
            "point",
            [
                (lambda p=p: be.run(idx, QuerySpec.point(p)))
                for p, _ in workloads.endpoint_queries
            ],
        ),
        (
            "point2",
            [
                (lambda p=p, s=s: be.run(idx, QuerySpec.other_endpoint(p, s)))
                for p, s in workloads.endpoint_queries
            ],
        ),
        (
            "nearest",
            [
                (lambda p=p: be.run(idx, QuerySpec.nearest(p, 1)))
                for p in workloads.two_stage
            ],
        ),
        (
            "polygon",
            [
                (lambda p=p: be.run(idx, QuerySpec.polygon(p)))
                for p in workloads.two_stage
            ],
        ),
        (
            "range",
            [
                (lambda w=w: be.run(idx, QuerySpec.window(w)))
                for w in workloads.windows
            ],
        ),
    )


def run_bench(params: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Build the three structures, drive the five workloads, and return
    the schema-versioned record (see :func:`validate_record`)."""
    p = dict(DEFAULT_PARAMS)
    if params:
        p.update(params)
    map_data = generate_county(str(p["county"]), scale=float(p["scale"]))

    built: Dict[str, BuiltStructure] = {}
    for name in BENCH_STRUCTURES:
        built[name] = build_structure(
            name,
            map_data,
            page_size=int(p["page_size"]),
            pool_pages=int(p["pool_pages"]),
        )
    # The data-correlated query points come from the PMR decomposition
    # and are then reused verbatim for the R-trees (the paper's model).
    workloads = QueryWorkloads.generate(
        map_data,
        built["PMR"].index,
        int(p["n_queries"]),
        seed=int(p["seed"]),
    )

    structures: Dict[str, object] = {}
    for name in BENCH_STRUCTURES:
        b = built[name]
        build_info: Dict[str, object] = {
            "seconds": round(b.build_seconds, 4),
            "pages": b.index.page_count(),
            "height": b.index.height(),
            "entries": b.index.entry_count(),
        }
        build_info.update(b.build_metrics.as_dict())
        workload_out: Dict[str, object] = {}
        totals = {metric: 0 for metric in PAPER_METRICS}
        for wname, thunks in _workload_thunks(b, workloads):
            result = _run_workload(b, thunks)
            workload_out[wname] = result
            for metric in PAPER_METRICS:
                totals[metric] += int(result[metric])  # type: ignore[call-overload]
        structures[name] = {
            "build": build_info,
            "workloads": workload_out,
            "totals": totals,
        }

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "git_sha": git_sha(),
        "params": p,
        "structures": structures,
    }


def validate_record(
    record: object,
    kind: str = BENCH_KIND,
    required_structures: Sequence[str] = BENCH_STRUCTURES,
    required_workloads: Sequence[str] = BENCH_WORKLOADS,
    param_keys: Optional[Sequence[str]] = None,
) -> List[str]:
    """Schema check; returns a list of problems (empty means valid).

    The defaults validate a ``repro-bench`` record; the routed shard
    bench reuses the checker with its own ``kind``, structure set, and
    parameter keys (the record *shape* is shared, so the regression
    gate in :mod:`repro.bench.compare` speaks both).
    """
    if param_keys is None:
        param_keys = tuple(DEFAULT_PARAMS)
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if record.get("kind") != kind:
        problems.append(f"kind must be {kind!r}, got {record.get('kind')!r}")
    if record.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, "
            f"got {record.get('schema_version')!r}"
        )
    if not isinstance(record.get("git_sha"), str):
        problems.append("git_sha must be a string")
    params = record.get("params")
    if not isinstance(params, dict):
        problems.append("params must be an object")
    else:
        for key in param_keys:
            if key not in params:
                problems.append(f"params missing {key!r}")
    structures = record.get("structures")
    if not isinstance(structures, dict):
        return problems + ["structures must be an object"]
    for name in required_structures:
        entry = structures.get(name)
        if not isinstance(entry, dict):
            problems.append(f"structures missing {name!r}")
            continue
        totals = entry.get("totals")
        if not isinstance(totals, dict):
            problems.append(f"{name}: totals must be an object")
        else:
            for metric in PAPER_METRICS:
                if not isinstance(totals.get(metric), int):
                    problems.append(f"{name}: totals.{metric} must be an int")
        workload_out = entry.get("workloads")
        if not isinstance(workload_out, dict):
            problems.append(f"{name}: workloads must be an object")
            continue
        for wname in required_workloads:
            w = workload_out.get(wname)
            if not isinstance(w, dict):
                problems.append(f"{name}: workloads missing {wname!r}")
                continue
            for metric in PAPER_METRICS:
                if not isinstance(w.get(metric), int):
                    problems.append(f"{name}/{wname}: {metric} must be an int")
            wall = w.get("wall")
            if not isinstance(wall, dict) or not all(
                isinstance(wall.get(k), (int, float))
                for k in ("p50_ms", "p90_ms", "max_ms")
            ):
                problems.append(f"{name}/{wname}: wall percentiles malformed")
    return problems


def write_record(record: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
