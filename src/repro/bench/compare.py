"""The regression gate: compare a fresh bench record against a baseline.

Only deterministic counters gate -- per-workload and total disk
accesses, segment comparisons, and bbox comparisons, per structure.  A
fresh value may exceed the baseline by at most ``tolerance`` (relative);
anything worse is a regression and the comparison fails.  Improvements
are reported but never fail (ratcheting the baseline down is a human
decision: commit the fresh record).  Wall-clock percentiles are compared
too but only ever *warn*, because a CI runner is not a benchmark rig.

Records are only comparable when their ``schema_version`` and every
workload parameter match exactly -- a mismatch is a usage error
(distinct from a regression) so it gets its own exit code.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, NamedTuple, Tuple

from repro.bench.runner import BENCH_KIND, BENCH_SCHEMA_VERSION, validate_record
from repro.bench.serve import (
    SERVE_BENCH_KIND,
    serve_gate_points,
    serve_wall_points,
    validate_serve_record,
)
from repro.bench.shard import SHARD_BENCH_KIND, validate_shard_record
from repro.bench.vector import VECTOR_BENCH_KIND, validate_vector_record
from repro.metric_names import PAPER_METRICS


class KindSpec(NamedTuple):
    """How one record kind validates and which of its points gate/warn."""

    validator: Callable[[object], List[str]]
    gate_points: Callable[[Dict[str, object]], object]
    wall_points: Callable[[Dict[str, object]], object]

#: Comparison verdict exit codes (the CLI exits with these).
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_INCOMPARABLE = 2


def load_record(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _gate_points(record: Dict[str, object]):
    """Yield (label, value) for every gated counter in the record.

    Structure and workload names come from the record itself, so the
    same walk gates both unsharded and routed records (validation has
    already pinned the kind-specific required sets).
    """
    structures = record["structures"]
    for name in sorted(structures):  # type: ignore[call-overload]
        entry = structures[name]  # type: ignore[index]
        for metric in PAPER_METRICS:
            yield f"{name}/totals/{metric}", int(entry["totals"][metric])
        for wname in sorted(entry["workloads"]):
            w = entry["workloads"][wname]
            for metric in PAPER_METRICS:
                yield f"{name}/{wname}/{metric}", int(w[metric])


def _wall_points(record: Dict[str, object]):
    structures = record["structures"]
    for name in sorted(structures):  # type: ignore[call-overload]
        for wname in sorted(structures[name]["workloads"]):  # type: ignore[index]
            wall = structures[name]["workloads"][wname]["wall"]  # type: ignore[index]
            yield f"{name}/{wname}/p50_ms", float(wall["p50_ms"])


#: Per-kind dispatch: validator plus gate/warn point extractors. The
#: unsharded and routed records share one shape (structures ->
#: workloads -> counters); the serving record gates error counts and
#: warns on latency percentiles and the group-commit fsync ratio.
KINDS: Dict[str, KindSpec] = {
    BENCH_KIND: KindSpec(validate_record, _gate_points, _wall_points),
    SHARD_BENCH_KIND: KindSpec(
        validate_shard_record, _gate_points, _wall_points
    ),
    SERVE_BENCH_KIND: KindSpec(
        validate_serve_record, serve_gate_points, serve_wall_points
    ),
    VECTOR_BENCH_KIND: KindSpec(
        validate_vector_record, _gate_points, _wall_points
    ),
}

#: Back-compat view of :data:`KINDS` (kind -> validator).
VALIDATORS = {kind: spec.validator for kind, spec in KINDS.items()}


def compare_records(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    tolerance: float = 0.10,
) -> Tuple[int, List[str]]:
    """Return ``(exit code, report lines)``.

    ``tolerance`` is relative: a gated counter regresses when
    ``fresh > baseline * (1 + tolerance)``; a zero baseline tolerates
    only zero (any appearance of a brand-new cost is a regression).
    """
    lines: List[str] = []
    base_kind = baseline.get("kind") if isinstance(baseline, dict) else None
    fresh_kind = fresh.get("kind") if isinstance(fresh, dict) else None
    if base_kind != fresh_kind:
        lines.append(
            f"kind mismatch: baseline {base_kind!r} vs fresh {fresh_kind!r}; "
            f"records are not comparable"
        )
        return EXIT_INCOMPARABLE, lines
    spec = KINDS.get(base_kind)  # type: ignore[arg-type]
    if spec is None:
        lines.append(
            f"unknown record kind {base_kind!r} (this tool speaks "
            f"{sorted(KINDS)})"
        )
        return EXIT_INCOMPARABLE, lines
    for label, record in (("baseline", baseline), ("fresh", fresh)):
        problems = spec.validator(record)
        if problems:
            lines.append(f"{label} record is invalid:")
            lines.extend(f"  - {p}" for p in problems)
            return EXIT_INCOMPARABLE, lines
    if baseline["schema_version"] != fresh["schema_version"]:
        lines.append(
            f"schema mismatch: baseline v{baseline['schema_version']} vs "
            f"fresh v{fresh['schema_version']} (this tool speaks "
            f"v{BENCH_SCHEMA_VERSION})"
        )
        return EXIT_INCOMPARABLE, lines
    if baseline["params"] != fresh["params"]:
        lines.append("workload params differ; records are not comparable:")
        lines.append(f"  baseline: {baseline['params']}")
        lines.append(f"  fresh:    {fresh['params']}")
        return EXIT_INCOMPARABLE, lines

    base_points = dict(spec.gate_points(baseline))
    fresh_points = list(spec.gate_points(fresh))
    if set(base_points) != {label for label, _ in fresh_points}:
        lines.append(
            "structure/workload sets differ; records are not comparable"
        )
        return EXIT_INCOMPARABLE, lines
    regressions: List[str] = []
    improvements: List[str] = []
    for label, value in fresh_points:
        base = base_points[label]
        limit = base * (1.0 + tolerance)
        if value > limit:
            pct = (value - base) / base * 100 if base else float("inf")
            regressions.append(
                f"  REGRESSION {label}: {base} -> {value} "
                f"(+{pct:.1f}% > {tolerance * 100:.0f}% tolerance)"
            )
        elif value < base:
            improvements.append(f"  improved {label}: {base} -> {value}")

    base_wall = dict(spec.wall_points(baseline))
    wall_warnings: List[str] = []
    for label, value in spec.wall_points(fresh):
        base = base_wall.get(label)
        if base is not None and base > 0 and value > base * (1.0 + tolerance):
            unit = "" if label.endswith("_per_mutation") else "ms"
            wall_warnings.append(
                f"  warn (wall-clock, not gating) {label}: "
                f"{base:.3f}{unit} -> {value:.3f}{unit}"
            )

    lines.append(
        f"compared {len(base_points)} counters at "
        f"{tolerance * 100:.0f}% tolerance "
        f"(baseline {baseline['git_sha']}, fresh {fresh['git_sha']})"
    )
    if regressions:
        lines.append(f"{len(regressions)} regression(s):")
        lines.extend(regressions)
    if improvements:
        lines.append(f"{len(improvements)} improvement(s):")
        lines.extend(improvements)
    if wall_warnings:
        lines.extend(wall_warnings)
    if not regressions:
        lines.append("OK: no counter regressed")
    return (EXIT_REGRESSION if regressions else EXIT_OK), lines
