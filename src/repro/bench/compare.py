"""The regression gate: compare a fresh bench record against a baseline.

Only deterministic counters gate -- per-workload and total disk
accesses, segment comparisons, and bbox comparisons, per structure.  A
fresh value may exceed the baseline by at most ``tolerance`` (relative);
anything worse is a regression and the comparison fails.  Improvements
are reported but never fail (ratcheting the baseline down is a human
decision: commit the fresh record).  Wall-clock percentiles are compared
too but only ever *warn*, because a CI runner is not a benchmark rig.

Records are only comparable when their ``schema_version`` and every
workload parameter match exactly -- a mismatch is a usage error
(distinct from a regression) so it gets its own exit code.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.bench.runner import (
    BENCH_SCHEMA_VERSION,
    BENCH_STRUCTURES,
    BENCH_WORKLOADS,
    validate_record,
)
from repro.metric_names import PAPER_METRICS

#: Comparison verdict exit codes (the CLI exits with these).
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_INCOMPARABLE = 2


def load_record(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _gate_points(record: Dict[str, object]):
    """Yield (label, value) for every gated counter in the record."""
    structures = record["structures"]
    for name in BENCH_STRUCTURES:
        entry = structures[name]  # type: ignore[index]
        for metric in PAPER_METRICS:
            yield f"{name}/totals/{metric}", int(entry["totals"][metric])
        for wname in BENCH_WORKLOADS:
            w = entry["workloads"][wname]
            for metric in PAPER_METRICS:
                yield f"{name}/{wname}/{metric}", int(w[metric])


def _wall_points(record: Dict[str, object]):
    structures = record["structures"]
    for name in BENCH_STRUCTURES:
        for wname in BENCH_WORKLOADS:
            wall = structures[name]["workloads"][wname]["wall"]  # type: ignore[index]
            yield f"{name}/{wname}/p50_ms", float(wall["p50_ms"])


def compare_records(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    tolerance: float = 0.10,
) -> Tuple[int, List[str]]:
    """Return ``(exit code, report lines)``.

    ``tolerance`` is relative: a gated counter regresses when
    ``fresh > baseline * (1 + tolerance)``; a zero baseline tolerates
    only zero (any appearance of a brand-new cost is a regression).
    """
    lines: List[str] = []
    for label, record in (("baseline", baseline), ("fresh", fresh)):
        problems = validate_record(record)
        if problems:
            lines.append(f"{label} record is invalid:")
            lines.extend(f"  - {p}" for p in problems)
            return EXIT_INCOMPARABLE, lines
    if baseline["schema_version"] != fresh["schema_version"]:
        lines.append(
            f"schema mismatch: baseline v{baseline['schema_version']} vs "
            f"fresh v{fresh['schema_version']} (this tool speaks "
            f"v{BENCH_SCHEMA_VERSION})"
        )
        return EXIT_INCOMPARABLE, lines
    if baseline["params"] != fresh["params"]:
        lines.append("workload params differ; records are not comparable:")
        lines.append(f"  baseline: {baseline['params']}")
        lines.append(f"  fresh:    {fresh['params']}")
        return EXIT_INCOMPARABLE, lines

    base_points = dict(_gate_points(baseline))
    regressions: List[str] = []
    improvements: List[str] = []
    for label, value in _gate_points(fresh):
        base = base_points[label]
        limit = base * (1.0 + tolerance)
        if value > limit:
            pct = (value - base) / base * 100 if base else float("inf")
            regressions.append(
                f"  REGRESSION {label}: {base} -> {value} "
                f"(+{pct:.1f}% > {tolerance * 100:.0f}% tolerance)"
            )
        elif value < base:
            improvements.append(f"  improved {label}: {base} -> {value}")

    base_wall = dict(_wall_points(baseline))
    wall_warnings: List[str] = []
    for label, value in _wall_points(fresh):
        base = base_wall[label]
        if base > 0 and value > base * (1.0 + tolerance):
            wall_warnings.append(
                f"  warn (wall-clock, not gating) {label}: "
                f"{base:.3f}ms -> {value:.3f}ms"
            )

    lines.append(
        f"compared {len(base_points)} counters at "
        f"{tolerance * 100:.0f}% tolerance "
        f"(baseline {baseline['git_sha']}, fresh {fresh['git_sha']})"
    )
    if regressions:
        lines.append(f"{len(regressions)} regression(s):")
        lines.extend(regressions)
    if improvements:
        lines.append(f"{len(improvements)} improvement(s):")
        lines.extend(improvements)
    if wall_warnings:
        lines.extend(wall_warnings)
    if not regressions:
        lines.append("OK: no counter regressed")
    return (EXIT_REGRESSION if regressions else EXIT_OK), lines
