"""The continuous perf baseline: ``BENCH_*.json`` records and the gate.

``python -m repro bench --json BENCH_<sha>.json`` builds R*/R+/PMR over
one fixed synthetic county and drives the five query workloads the paper
tabulates, emitting a schema-versioned JSON record of per-structure
disk accesses, comparisons, and wall-time percentiles.  ``python -m
repro bench --compare BASELINE.json`` re-runs the same workload and
exits nonzero if any deterministic counter regressed beyond the
tolerance -- the CI ``perf-baseline`` job runs exactly that against the
committed ``benchmarks/results/BENCH_baseline.json``.

Deterministic counters (disk accesses, segment comparisons, bbox
comparisons) gate; wall-clock numbers are recorded for trending but
only warn, because CI machines are not a controlled benchmark rig.

``python -m repro bench --routed`` runs the same gate over the sharded
service instead: one shard set per structure, five workloads through
the scatter-gather router, counters summed across shards
(:mod:`repro.bench.shard`, kind ``repro-shard-bench``).  The CI
``shard-smoke`` job gates it against
``benchmarks/results/BENCH_shard_baseline.json``.

``python -m repro bench --backend vector`` runs the backend comparison
instead: scalar and vectorized traversal over the same batched
workloads at a larger scale, asserting result/counter parity in-run and
recording per-structure speedups (:mod:`repro.bench.vector`, kind
``repro-bench-vector``).  The committed baseline is
``benchmarks/results/BENCH_vector_baseline.json``.

``python -m repro bench --serve`` gates the serving path itself: the
threaded and async front ends driven by the same seeded workload
(:mod:`repro.bench.serve`, kind ``repro-serve-bench``), with request
error counts gating and latency percentiles plus the group-commit fsync
ratio recorded as warn-only trend lines.
"""

from repro.bench.compare import compare_records, load_record
from repro.bench.runner import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_PARAMS,
    run_bench,
    validate_record,
    write_record,
)
from repro.bench.serve import (
    SERVE_DEFAULT_PARAMS,
    run_serve_bench,
    validate_serve_record,
)
from repro.bench.shard import (
    SHARD_DEFAULT_PARAMS,
    run_shard_bench,
    validate_shard_record,
)
from repro.bench.vector import (
    VECTOR_DEFAULT_PARAMS,
    run_vector_bench,
    validate_vector_record,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_PARAMS",
    "SERVE_DEFAULT_PARAMS",
    "SHARD_DEFAULT_PARAMS",
    "VECTOR_DEFAULT_PARAMS",
    "compare_records",
    "load_record",
    "run_bench",
    "run_serve_bench",
    "run_shard_bench",
    "run_vector_bench",
    "validate_record",
    "validate_serve_record",
    "validate_shard_record",
    "validate_vector_record",
    "write_record",
]
