"""The continuous perf baseline: ``BENCH_*.json`` records and the gate.

``python -m repro bench --json BENCH_<sha>.json`` builds R*/R+/PMR over
one fixed synthetic county and drives the five query workloads the paper
tabulates, emitting a schema-versioned JSON record of per-structure
disk accesses, comparisons, and wall-time percentiles.  ``python -m
repro bench --compare BASELINE.json`` re-runs the same workload and
exits nonzero if any deterministic counter regressed beyond the
tolerance -- the CI ``perf-baseline`` job runs exactly that against the
committed ``benchmarks/results/BENCH_baseline.json``.

Deterministic counters (disk accesses, segment comparisons, bbox
comparisons) gate; wall-clock numbers are recorded for trending but
only warn, because CI machines are not a controlled benchmark rig.
"""

from repro.bench.compare import compare_records, load_record
from repro.bench.runner import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_PARAMS,
    run_bench,
    validate_record,
    write_record,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_PARAMS",
    "compare_records",
    "load_record",
    "run_bench",
    "validate_record",
    "write_record",
]
