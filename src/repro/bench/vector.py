"""Backend benchmark: scalar vs vector wall-clock on batched workloads.

Emits a ``repro-bench-vector`` record. Unlike the core bench (which
gates the *paper's* counters at the paper's tiny scale), this record
exists to keep the vectorized backend honest on two axes at once:

* **Parity**: for every structure and workload the vector leg must
  produce the same results, ``bbox_comps`` and ``segment_comps`` as the
  scalar reference. The run *aborts* on any mismatch -- a fast wrong
  backend must never produce a record.
* **Speed**: both legs are timed over the same cold-pool workload; the
  record stores each leg's wall clock and the resulting speedup. The
  workload is deliberately larger than the core bench (more segments,
  bigger windows) because that is the regime the batched traversal is
  for; every knob is in ``params`` so records stay comparable.

The gated counters are the vector leg's (disk accesses may legitimately
sit far below the scalar leg's: the fused descent and the page-major
batched verify fetch shared pages once). Wall clock and speedup warn
but never gate, as CI machines are not benchmark rigs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.bench.runner import (
    BENCH_SCHEMA_VERSION,
    _wall_summary,
    validate_record,
)
from repro.core.backends import SCALAR_BACKEND, resolve_backend
from repro.core.queries.spec import QuerySpec
from repro.data.counties import generate_county
from repro.harness.experiment import BuiltStructure, build_structure
from repro.harness.workloads import QueryWorkloads
from repro.metric_names import BBOX_COMPS, DISK_ACCESSES, PAPER_METRICS, SEGMENT_COMPS
from repro.obs.buildinfo import git_sha

#: The record's ``kind`` discriminator.
VECTOR_BENCH_KIND = "repro-bench-vector"

#: Structures the backend comparison tracks.
VECTOR_BENCH_STRUCTURES: Tuple[str, ...] = ("R*", "R+", "PMR")

#: Batched workloads: the range windows (the headline case for the
#: fused descent + batched verify) and the endpoint point queries.
VECTOR_BENCH_WORKLOADS: Tuple[str, ...] = ("range", "point")

#: Everything that determines the deterministic counters, plus the
#: repeat count (wall clock is the best of ``repeats`` cold-pool runs).
VECTOR_DEFAULT_PARAMS: Dict[str, object] = {
    "county": "cecil",
    "scale": 0.1,
    "n_queries": 200,
    "seed": 1992,
    "page_size": 1024,
    "pool_pages": 16,
    "window_area_fraction": 0.2,
    "repeats": 5,
}


class BackendParityError(AssertionError):
    """The vector leg diverged from the scalar reference mid-bench."""


def _workload_specs(workloads: QueryWorkloads) -> Dict[str, List[QuerySpec]]:
    return {
        "range": [QuerySpec.window(w) for w in workloads.windows],
        "point": [QuerySpec.point(p) for p, _ in workloads.endpoint_queries],
    }


def _timed_leg(built: BuiltStructure, repeats: int, thunk):
    """Best-of-``repeats`` cold-pool execution: (results, delta, walls)."""
    walls: List[float] = []
    results = delta = None
    for _ in range(repeats):
        built.ctx.pool.clear()
        before = built.ctx.counters.snapshot()
        start = time.perf_counter()
        results = thunk()
        walls.append((time.perf_counter() - start) * 1e3)
        delta = built.ctx.counters.since(before)
    return results, delta, walls


def run_vector_bench(
    params: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Run both backend legs and return the schema-versioned record.

    Raises :class:`BackendParityError` if the vector backend's results
    or comparison counters diverge from the scalar reference anywhere.
    """
    p = dict(VECTOR_DEFAULT_PARAMS)
    if params:
        p.update(params)
    vector = resolve_backend("vector")
    if vector.describe().get("name") != "vector":
        raise RuntimeError(
            "the vector backend is unavailable (numpy not importable); "
            "install the [vector] extra to run this bench"
        )
    map_data = generate_county(str(p["county"]), scale=float(p["scale"]))
    built: Dict[str, BuiltStructure] = {}
    for name in VECTOR_BENCH_STRUCTURES:
        built[name] = build_structure(
            name,
            map_data,
            page_size=int(p["page_size"]),
            pool_pages=int(p["pool_pages"]),
        )
    workloads = QueryWorkloads.generate(
        map_data,
        built["PMR"].index,
        int(p["n_queries"]),
        seed=int(p["seed"]),
        window_area_fraction=float(p["window_area_fraction"]),
    )
    specs_by_workload = _workload_specs(workloads)
    repeats = int(p["repeats"])

    structures: Dict[str, object] = {}
    for name in VECTOR_BENCH_STRUCTURES:
        b = built[name]
        idx = b.index
        workload_out: Dict[str, object] = {}
        totals = {metric: 0 for metric in PAPER_METRICS}
        for wname, specs in specs_by_workload.items():
            s_res, s_delta, s_walls = _timed_leg(
                b,
                repeats,
                lambda: [SCALAR_BACKEND.run(idx, s) for s in specs],
            )
            v_res, v_delta, v_walls = _timed_leg(
                b, repeats, lambda: vector.run_batch(idx, specs)
            )
            if s_res != v_res:
                raise BackendParityError(
                    f"{name}/{wname}: vector results diverge from scalar"
                )
            if (
                s_delta.bbox_comps != v_delta.bbox_comps
                or s_delta.segment_comps != v_delta.segment_comps
            ):
                raise BackendParityError(
                    f"{name}/{wname}: comparison counters diverge "
                    f"(bbox {s_delta.bbox_comps} vs {v_delta.bbox_comps}, "
                    f"segment {s_delta.segment_comps} vs "
                    f"{v_delta.segment_comps})"
                )
            scalar_ms = min(s_walls)
            vector_ms = min(v_walls)
            entry: Dict[str, object] = {"queries": len(specs)}
            entry[DISK_ACCESSES] = v_delta.disk_accesses
            entry[SEGMENT_COMPS] = v_delta.segment_comps
            entry[BBOX_COMPS] = v_delta.bbox_comps
            entry["wall"] = _wall_summary(v_walls)
            entry["scalar"] = {
                DISK_ACCESSES: s_delta.disk_accesses,
                "wall_ms": round(scalar_ms, 4),
            }
            entry["vector_ms"] = round(vector_ms, 4)
            entry["speedup"] = round(scalar_ms / vector_ms, 2)
            entry["parity"] = True
            workload_out[wname] = entry
            for metric in PAPER_METRICS:
                totals[metric] += int(entry[metric])  # type: ignore[call-overload]
        structures[name] = {"workloads": workload_out, "totals": totals}

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": VECTOR_BENCH_KIND,
        "git_sha": git_sha(),
        "params": p,
        "structures": structures,
    }


def validate_vector_record(record: object) -> List[str]:
    """Schema check for ``repro-bench-vector`` records."""
    problems = validate_record(
        record,
        kind=VECTOR_BENCH_KIND,
        required_structures=VECTOR_BENCH_STRUCTURES,
        required_workloads=VECTOR_BENCH_WORKLOADS,
        param_keys=tuple(VECTOR_DEFAULT_PARAMS),
    )
    if not isinstance(record, dict):
        return problems
    structures = record.get("structures")
    if not isinstance(structures, dict):
        return problems
    for name in VECTOR_BENCH_STRUCTURES:
        entry = structures.get(name)
        if not isinstance(entry, dict):
            continue
        workload_out = entry.get("workloads")
        if not isinstance(workload_out, dict):
            continue
        for wname in VECTOR_BENCH_WORKLOADS:
            w = workload_out.get(wname)
            if not isinstance(w, dict):
                continue
            if w.get("parity") is not True:
                problems.append(f"{name}/{wname}: parity must be true")
            if not isinstance(w.get("speedup"), (int, float)):
                problems.append(f"{name}/{wname}: speedup must be a number")
    return problems
