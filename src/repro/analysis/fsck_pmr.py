"""Static integrity checks for the PMR quadtree's linear representation.

The paper stores the PMR quadtree as Morton-ordered ``(L, O)`` 2-tuples
in a paged B-tree (Section 4). The checker verifies the three layers of
that representation against each other without executing a single query:

* the **B-tree** itself -- sorted keys, tight separators, uniform leaf
  depth, a leaf chain matching tree order, page accounting;
* the **locational codes** -- every stored key is exactly the code of one
  *leaf* block of the directory, computed from that block's geometry;
* the **splitting rule** -- a block is split at most once past the
  threshold, so a leaf above ``max_depth`` never holds more than
  ``threshold + depth`` q-edges (Section 3's occupancy bound).
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.analysis.findings import FSCK_RULES, Finding, error

PM01 = FSCK_RULES.register("PM01", "B-tree keys out of Morton order")
PM02 = FSCK_RULES.register("PM02", "locational code inconsistent with block geometry")
PM03 = FSCK_RULES.register("PM03", "block split more than once past the threshold")
PM04 = FSCK_RULES.register("PM04", "directory count disagrees with B-tree contents")
PM05 = FSCK_RULES.register("PM05", "B-tree structural damage")
PM06 = FSCK_RULES.register("PM06", "q-edge pointer outside the segment table")
PM07 = FSCK_RULES.register("PM07", "q-edge stored in a block its segment misses")


def check_pmr(index) -> List[Finding]:
    """Verify a PMR quadtree snapshot/in-memory instance; returns findings.

    The PM1/PM2/PM3 subclasses replace the probabilistic splitting rule
    with geometric criteria, so Section 3's ``threshold + depth`` bound
    (PM03) only applies to the plain PMR quadtree; every other rule
    checks representation consistency and applies to the whole family.
    """
    from repro.core.pmr import PMRQuadtree

    findings: List[Finding] = []
    entries = _check_btree(index.btree, findings)
    blocks = _check_directory(
        index, findings, enforce_split_once=type(index) is PMRQuadtree
    )
    _check_codes(index, entries, blocks, findings)
    return findings


# ----------------------------------------------------------------------
# Layer 1: the paged B-tree
# ----------------------------------------------------------------------
def _check_btree(btree, findings: List[Finding]) -> List[Tuple[Any, Any]]:
    """Structural walk via ``disk.peek``; returns entries in chain order."""
    disk = btree.pool.disk
    seen: Set[int] = set()
    leaves_in_tree_order: List[int] = []

    def walk(page_id: int, depth: int, lo, hi) -> int:
        if page_id in seen:
            findings.append(
                error(PM05, page_id, str(page_id), "page reachable via two parents")
            )
            return 0
        seen.add(page_id)
        if not disk.is_allocated(page_id):
            findings.append(
                error(PM05, page_id, str(page_id), "referenced page not allocated")
            )
            return 0
        node = disk.peek(page_id)
        if node.is_leaf:
            if depth != btree._height:
                findings.append(
                    error(
                        PM05,
                        page_id,
                        str(page_id),
                        f"leaf at depth {depth}, height {btree._height}",
                    )
                )
            if node.entries != sorted(node.entries):
                findings.append(
                    error(PM01, page_id, str(page_id), "leaf entries out of order")
                )
            for e in node.entries:
                if lo is not None and e < lo:
                    findings.append(
                        error(
                            PM01,
                            page_id,
                            str(page_id),
                            f"entry {e!r} below its lower separator {lo!r}",
                        )
                    )
                if hi is not None and e >= hi:
                    findings.append(
                        error(
                            PM01,
                            page_id,
                            str(page_id),
                            f"entry {e!r} at or above its upper separator {hi!r}",
                        )
                    )
            leaves_in_tree_order.append(page_id)
            return len(node.entries)
        if len(node.children) != len(node.keys) + 1:
            findings.append(
                error(
                    PM05,
                    page_id,
                    str(page_id),
                    f"{len(node.keys)} keys but {len(node.children)} children",
                )
            )
            return 0
        if node.keys != sorted(node.keys):
            findings.append(
                error(PM05, page_id, str(page_id), "separators out of order")
            )
        total = 0
        for i, child in enumerate(node.children):
            child_lo = lo if i == 0 else node.keys[i - 1]
            child_hi = hi if i == len(node.keys) else node.keys[i]
            total += walk(child, depth + 1, child_lo, child_hi)
        return total

    if not disk.is_allocated(btree._root_id):
        findings.append(
            error(PM05, btree._root_id, "", "B-tree root page is not allocated")
        )
        return []
    total = walk(btree._root_id, 1, None, None)

    if seen != btree._page_ids:
        extra = sorted(seen - btree._page_ids)
        missing = sorted(btree._page_ids - seen)
        findings.append(
            error(
                PM05,
                None,
                "",
                f"page inventory mismatch: reachable-but-untracked {extra[:8]}, "
                f"tracked-but-unreachable {missing[:8]}",
            )
        )
    if total != btree._count:
        findings.append(
            error(
                PM05,
                None,
                "",
                f"{total} entries in leaves but bookkeeping says {btree._count}",
            )
        )

    # Leaf chain: follow next_page from the leftmost leaf and collect the
    # entries; the chain must visit exactly the tree's leaves in order.
    entries: List[Tuple[Any, Any]] = []
    chain: List[int] = []
    page_id = btree._root_id
    node = disk.peek(page_id)
    hops = 0
    while not node.is_leaf:
        if not node.children or not disk.is_allocated(node.children[0]):
            return entries
        page_id = node.children[0]
        node = disk.peek(page_id)
    while True:
        chain.append(page_id)
        entries.extend(node.entries)
        if node.next_page is None:
            break
        hops += 1
        if hops > len(seen) + 1:
            findings.append(error(PM05, page_id, str(page_id), "leaf chain cycles"))
            break
        page_id = node.next_page
        if not disk.is_allocated(page_id):
            findings.append(
                error(PM05, page_id, str(page_id), "leaf chain points off-disk")
            )
            break
        node = disk.peek(page_id)
    if not findings and chain != leaves_in_tree_order:
        findings.append(
            error(PM05, None, "", "leaf chain does not match tree order")
        )
    for prev, cur in zip(entries, entries[1:]):
        if cur <= prev:
            findings.append(
                error(
                    PM01,
                    None,
                    "",
                    f"adjacent entries {prev!r} >= {cur!r} break strict "
                    f"Morton order",
                )
            )
    return entries


# ----------------------------------------------------------------------
# Layer 2: the block directory
# ----------------------------------------------------------------------
def _check_directory(
    index, findings: List[Finding], enforce_split_once: bool = True
) -> Dict[int, Any]:
    """Geometry walk of the in-memory directory; returns code -> leaf."""
    blocks: Dict[int, Any] = {}

    def walk(block) -> None:
        if block.depth > index.max_depth:
            findings.append(
                error(
                    PM02,
                    None,
                    f"({block.depth},{block.bx},{block.by})",
                    f"block deeper than max_depth {index.max_depth}",
                )
            )
            return
        if not (0 <= block.bx < (1 << block.depth)) or not (
            0 <= block.by < (1 << block.depth)
        ):
            findings.append(
                error(
                    PM02,
                    None,
                    f"({block.depth},{block.bx},{block.by})",
                    "block grid position outside its depth's grid",
                )
            )
            return
        if block.is_leaf:
            code = index._code(block)
            if code in blocks:
                findings.append(
                    error(
                        PM02,
                        None,
                        f"({block.depth},{block.bx},{block.by})",
                        f"two leaf blocks share locational code {code}",
                    )
                )
            blocks[code] = block
            if (
                enforce_split_once
                and block.depth < index.max_depth
                and block.count > index.threshold + block.depth
            ):
                findings.append(
                    error(
                        PM03,
                        None,
                        f"({block.depth},{block.bx},{block.by})",
                        f"{block.count} q-edges > threshold {index.threshold} "
                        f"+ depth {block.depth} (split-once bound)",
                    )
                )
            return
        if len(block.children) != 4:
            findings.append(
                error(
                    PM02,
                    None,
                    f"({block.depth},{block.bx},{block.by})",
                    f"split block has {len(block.children)} children",
                )
            )
            return
        expected = {
            (block.depth + 1, 2 * block.bx + dx, 2 * block.by + dy)
            for dx in (0, 1)
            for dy in (0, 1)
        }
        actual = {(c.depth, c.bx, c.by) for c in block.children}
        if actual != expected:
            findings.append(
                error(
                    PM02,
                    None,
                    f"({block.depth},{block.bx},{block.by})",
                    f"children at {sorted(actual)} instead of {sorted(expected)}",
                )
            )
        for child in block.children:
            walk(child)

    walk(index.root)
    return blocks


# ----------------------------------------------------------------------
# Layer 3: codes vs. geometry vs. contents
# ----------------------------------------------------------------------
def _check_codes(index, entries, blocks: Dict[int, Any], findings: List[Finding]) -> None:
    table = index.ctx.segments
    per_code: Dict[int, int] = {}
    for key, value in entries:
        if not isinstance(key, int):
            findings.append(
                error(PM02, None, "", f"non-integer locational code {key!r}")
            )
            continue
        per_code[key] = per_code.get(key, 0) + 1
        block = blocks.get(key)
        if block is None:
            findings.append(
                error(
                    PM02,
                    None,
                    "",
                    f"B-tree key {key} matches no leaf block of the directory",
                )
            )
            continue
        seg_id = value[0] if isinstance(value, tuple) else value
        if not isinstance(seg_id, int) or not 0 <= seg_id < len(table):
            findings.append(
                error(
                    PM06,
                    None,
                    f"({block.depth},{block.bx},{block.by})",
                    f"q-edge pointer {seg_id!r} outside the segment table "
                    f"(0..{len(table) - 1})",
                )
            )
            continue
        seg = table.peek(seg_id)
        if not seg.intersects_rect(block.rect(index.world_size)):
            findings.append(
                error(
                    PM07,
                    None,
                    f"({block.depth},{block.bx},{block.by})",
                    f"segment {seg_id} does not intersect its block",
                )
            )
    for code, block in blocks.items():
        stored = per_code.get(code, 0)
        if stored != block.count:
            findings.append(
                error(
                    PM04,
                    None,
                    f"({block.depth},{block.bx},{block.by})",
                    f"directory says {block.count} q-edges, B-tree holds {stored}",
                )
            )
