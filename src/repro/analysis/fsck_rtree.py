"""Static integrity checks for the R-tree family (R and R*).

The paper's R*-tree invariants (Section 2 and the Beckmann et al.
definition): every child's MBR is contained in -- and exactly equal to --
the rectangle its parent entry advertises, node occupancy stays within
``[m, M]`` (root exempt), and all leaves sit at the same depth. The walk
reads pages through :meth:`~repro.storage.disk.DiskManager.peek`, so a
check never executes queries, never faults the buffer pool, and never
moves a counter.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.findings import FSCK_RULES, Finding, error, warning
from repro.geometry import Rect

RS01 = FSCK_RULES.register("RS01", "child MBR not contained in its parent entry")
RS02 = FSCK_RULES.register("RS02", "parent entry rectangle is not the tight MBR")
RS03 = FSCK_RULES.register("RS03", "node occupancy outside [min_entries, capacity]")
RS04 = FSCK_RULES.register("RS04", "leaf at non-uniform depth")
RS05 = FSCK_RULES.register("RS05", "page inventory / entry count bookkeeping mismatch")
RS06 = FSCK_RULES.register("RS06", "tree references a page missing from disk")


def check_rtree(index) -> List[Finding]:
    """Verify an R / R* tree; returns findings (empty when healthy)."""
    disk = index.ctx.disk
    findings: List[Finding] = []
    seen: Set[int] = set()
    leaf_refs: List[int] = []

    def walk(page_id: int, depth: int, parent_rect: Optional[Rect], path: str) -> None:
        here = f"{path}/{page_id}" if path else str(page_id)
        if page_id in seen:
            findings.append(
                error(RS05, page_id, here, "page reachable via two parents")
            )
            return
        seen.add(page_id)
        if not disk.is_allocated(page_id):
            findings.append(
                error(RS06, page_id, here, "referenced page is not allocated")
            )
            return
        node = disk.peek(page_id)
        n = len(node.entries)
        if n > index.capacity:
            findings.append(
                error(RS03, page_id, here, f"{n} entries > capacity {index.capacity}")
            )
        if page_id != index._root_id and n < index.min_entries:
            findings.append(
                error(
                    RS03, page_id, here, f"{n} entries < min fill {index.min_entries}"
                )
            )
        if page_id == index._root_id and not node.is_leaf and n < 2:
            findings.append(error(RS03, page_id, here, "internal root with < 2 entries"))
        if node.entries and parent_rect is not None:
            mbr = node.mbr()
            if not parent_rect.contains_rect(mbr):
                findings.append(
                    error(
                        RS01,
                        page_id,
                        here,
                        f"node MBR {tuple(mbr)} escapes parent entry "
                        f"{tuple(parent_rect)}",
                    )
                )
            elif parent_rect != mbr:
                findings.append(
                    error(
                        RS02,
                        page_id,
                        here,
                        f"parent entry {tuple(parent_rect)} is looser than the "
                        f"node MBR {tuple(mbr)}",
                    )
                )
        if node.is_leaf:
            if depth != index._height:
                findings.append(
                    error(
                        RS04,
                        page_id,
                        here,
                        f"leaf at depth {depth}, tree height {index._height}",
                    )
                )
            leaf_refs.extend(ref for _, ref in node.entries)
        else:
            for rect, child in node.entries:
                walk(child, depth + 1, rect, here)

    if not disk.is_allocated(index._root_id):
        return [error(RS06, index._root_id, "", "root page is not allocated")]
    walk(index._root_id, 1, None, "")

    if seen != index._page_ids:
        extra = sorted(seen - index._page_ids)
        missing = sorted(index._page_ids - seen)
        findings.append(
            error(
                RS05,
                None,
                "",
                f"page inventory mismatch: reachable-but-untracked {extra[:8]}, "
                f"tracked-but-unreachable {missing[:8]}",
            )
        )
    if len(leaf_refs) != index._count:
        findings.append(
            error(
                RS05,
                None,
                "",
                f"{len(leaf_refs)} leaf entries but bookkeeping says {index._count}",
            )
        )
    if len(leaf_refs) != len(set(leaf_refs)):
        findings.append(
            warning(RS05, None, "", "duplicate segment reference across leaves")
        )
    return findings
