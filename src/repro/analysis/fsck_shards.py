"""Shard-set integrity checks (rules SH01..SH05).

A shard set adds cross-store invariants no single-store fsck can see:
the manifest must describe a valid tiling, every shard named by it must
hold a durable store, the **replicated tables** must agree (same
mutation stream, so same last LSN and same table length), and each
shard's index must hold exactly the live segments whose bounding boxes
touch its region -- nothing foreign, nothing missing.

* **SH01** -- manifest damage: missing, unreadable, or not a valid
  contiguous tiling of the curve. Fatal: nothing else is checkable.
* **SH02** -- a shard named by the manifest has no durable store (or an
  unreadable one).
* **SH03** -- replicated-table divergence: shards disagree on last LSN
  or table length. The lagging shard missed mutations (a worker was
  down while the router kept applying); ``python -m repro shard-catchup``
  repairs it from a peer's log.
* **SH04** -- region violation: a shard's index holds a live segment
  whose bounding box does not touch the shard's cell union, or is
  missing one that does. Either the manifest changed without a
  rebuild, or an index filter was bypassed.
* **SH05** -- stale address file: ``shard.addr`` names a process that
  is gone. A warning -- workers rewrite the file on start -- but a
  router pointed here will report the shard unavailable.

Each shard's store also gets the full :func:`~repro.analysis.fsck_wal.
check_durable` pass, so the FS and structural rules apply per shard.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import FSCK_RULES, Finding, error, warning
from repro.analysis.fsck_wal import check_durable

SH01 = FSCK_RULES.register("SH01", "shard manifest missing or invalid")
SH02 = FSCK_RULES.register("SH02", "shard store missing or unreadable")
SH03 = FSCK_RULES.register(
    "SH03", "replicated tables diverge across shards (LSN or length)"
)
SH04 = FSCK_RULES.register(
    "SH04", "shard index disagrees with its region (foreign or missing segment)"
)
SH05 = FSCK_RULES.register("SH05", "shard address file names a dead process")


def _shard_state(store_root: str) -> Tuple[int, int, int]:
    """(last LSN, table length, checkpoint LSN) of a store on disk."""
    from repro.service.snapshot import snapshot_info
    from repro.wal.log import ensure_contiguous, scan_log
    from repro.wal.records import InsertRecord
    from repro.wal.store import DurableStore

    paths = DurableStore.paths(store_root)
    info = snapshot_info(paths["snapshot"])
    embedded = info["wal"]["checkpoint_lsn"]
    table_len = info["segments"]["count"]
    last = embedded
    if os.path.exists(paths["log"]):
        scan = scan_log(paths["log"])
        ensure_contiguous(scan, paths["log"])
        for record in scan.records:
            if record.lsn <= embedded:
                continue
            last = record.lsn
            if isinstance(record, InsertRecord) and record.seg_id >= table_len:
                table_len = record.seg_id + 1
    return last, table_len, embedded


def _region_scan(
    smap, spec, store_root: str
) -> Tuple[List[Finding], set, Dict[int, object]]:
    """SH04 (foreign side): the checkpoint index's live set vs. region.

    Checked against the *snapshot* (the WAL suffix is not replayed here:
    the suffix applies identically everywhere, so region errors it could
    introduce are recovery bugs the routed tests catch, while fsck stays
    a no-replay static pass). Returns the findings plus the shard's live
    set and the segments it peeked, so the caller can run the missing
    side across shards.
    """
    from repro.geometry import Rect
    from repro.service.snapshot import open_index
    from repro.shard.manifest import segment_mbr
    from repro.wal.store import DurableStore

    findings: List[Finding] = []
    snap = DurableStore.paths(store_root)["snapshot"]
    index = open_index(snap)
    table = index.ctx.segments
    world = Rect(0.0, 0.0, smap.world_size, smap.world_size)
    live = set(index.candidate_ids_in_rect(world))
    segments = {seg_id: table.peek(seg_id) for seg_id in live}
    for seg_id in sorted(live):
        if not smap.covers(spec, segment_mbr(segments[seg_id])):
            findings.append(
                error(
                    SH04,
                    None,
                    snap,
                    f"shard {spec.shard_id} indexes segment {seg_id} whose "
                    f"bounding box does not touch its region",
                )
            )
    return findings, live, segments


def _check_addr(store_root: str) -> List[Finding]:
    from repro.shard.worker import addr_path

    path = addr_path(store_root)
    if not os.path.exists(path):
        return []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            addr = json.load(fh)
        pid = int(addr["pid"])
    except (OSError, ValueError, KeyError, TypeError) as exc:
        return [warning(SH05, None, path, f"address file is unreadable: {exc}")]
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return [
            warning(
                SH05,
                None,
                path,
                f"address file names pid {pid}, which is gone (the worker "
                f"was killed; restart it to refresh the file)",
            )
        ]
    except (PermissionError, OSError):
        return []  # alive but not ours, or unknowable: not a finding
    return []


def check_shard_set(root: str, deep: bool = True) -> List[Finding]:
    """Fsck a whole shard set: manifest, every store, and the
    cross-shard invariants. ``deep=False`` skips the per-store
    :func:`check_durable` and SH04 region walks (the cross-checks SH01..
    SH03 and SH05 still run)."""
    from repro.shard.manifest import ShardMap
    from repro.wal.store import DurableStore

    root = os.fspath(root)
    findings: List[Finding] = []
    try:
        smap = ShardMap.load(root)
    except FileNotFoundError:
        return [error(SH01, None, ShardMap.path(root), "shard manifest is missing")]
    except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
        return [
            error(SH01, None, ShardMap.path(root), f"shard manifest is invalid: {exc}")
        ]

    states: Dict[str, Tuple[int, int, int]] = {}
    live_sets: Dict[str, set] = {}
    seen_segments: Dict[int, object] = {}
    for spec in smap.shards:
        store_root = smap.store_path(root, spec.shard_id)
        if not DurableStore.exists(store_root):
            findings.append(
                error(
                    SH02,
                    None,
                    store_root,
                    f"shard {spec.shard_id} has no durable store",
                )
            )
            continue
        try:
            states[spec.shard_id] = _shard_state(store_root)
        except Exception as exc:
            findings.append(
                error(
                    SH02,
                    None,
                    store_root,
                    f"shard {spec.shard_id} store is unreadable: {exc}",
                )
            )
            continue
        findings.extend(_check_addr(store_root))
        if deep:
            findings.extend(check_durable(store_root))
            region, live, segments = _region_scan(smap, spec, store_root)
            findings.extend(region)
            live_sets[spec.shard_id] = live
            seen_segments.update(segments)

    if deep and len(live_sets) > 1 and len(set(states.values())) == 1:
        # Missing side of SH04: every globally-live segment must be
        # indexed by every shard whose region its bounding box touches.
        # Only meaningful when last LSN, table length, AND checkpoint
        # LSN all agree -- snapshots taken at different checkpoint times
        # legitimately see different live universes (SH03 covers real
        # divergence).
        from repro.shard.manifest import segment_mbr

        global_live = set()
        for live in live_sets.values():
            global_live |= live
        for spec in smap.shards:
            live = live_sets.get(spec.shard_id)
            if live is None:
                continue
            for seg_id in sorted(global_live - live):
                if smap.covers(spec, segment_mbr(seen_segments[seg_id])):
                    findings.append(
                        error(
                            SH04,
                            None,
                            smap.store_path(root, spec.shard_id),
                            f"shard {spec.shard_id} is missing segment "
                            f"{seg_id}, which its region covers and a peer "
                            f"indexes",
                        )
                    )

    if len(states) > 1:
        lead_id = max(states, key=lambda sid: states[sid][:2])
        lead_lsn, lead_len = states[lead_id][:2]
        for shard_id, (lsn, length, _ckpt) in sorted(states.items()):
            if (lsn, length) == (lead_lsn, lead_len):
                continue
            findings.append(
                error(
                    SH03,
                    None,
                    smap.store_path(root, shard_id),
                    f"shard {shard_id} is at LSN {lsn} with {length} table "
                    f"row(s) but {lead_id} is at LSN {lead_lsn} with "
                    f"{lead_len}: the replicated tables have diverged (run "
                    f"shard-catchup)",
                )
            )
    return findings
