"""The index fsck: static integrity checking for built structures.

Entry points:

* :func:`check_index` -- walk a live (in-memory) index and verify the
  paper's invariants for its structure, plus the storage bookkeeping
  underneath it. Pages are read via the uncounted
  :meth:`~repro.storage.disk.DiskManager.peek`, so a check executes no
  queries and moves no counter.
* :func:`check_snapshot` -- verify an on-disk snapshot file: codec
  header vs. manifest cross-checks first, then the full index walk over
  the reloaded disk.

Both return a flat list of :class:`~repro.analysis.findings.Finding`
records; an empty list means the structure is healthy. The CLI wrapper
(``python -m repro check``) renders them and exits nonzero when any
finding is an error.
"""

from __future__ import annotations

import os
from typing import BinaryIO, List, Union

from repro.analysis.findings import FSCK_RULES, Finding
from repro.analysis.fsck_pmr import check_pmr
from repro.analysis.fsck_rplus import check_rplus
from repro.analysis.fsck_rtree import check_rtree
from repro.analysis.fsck_storage import (
    check_segment_refs,
    check_snapshot_header,
    check_storage,
)
from repro.core.pmr import PMRQuadtree
from repro.core.rplus import RPlusTree
from repro.core.rtree import GuttmanRTree
from repro.storage.codec import CodecError, read_header

__all__ = ["check_index", "check_snapshot", "FSCK_RULES"]


def _leaf_refs(index) -> List[int]:
    """Leaf segment references of an R-tree-family index (peek-only)."""
    disk = index.ctx.disk
    refs: List[int] = []
    seen = set()
    stack = [index._root_id]
    while stack:
        page_id = stack.pop()
        if page_id in seen or not disk.is_allocated(page_id):
            continue  # structural damage: reported by the structure walk
        seen.add(page_id)
        node = disk.peek(page_id)
        if not hasattr(node, "entries"):
            continue
        if node.is_leaf:
            refs.extend(ref for _, ref in node.entries)
        else:
            stack.extend(ref for _, ref in node.entries)
    return refs


def check_index(index) -> List[Finding]:
    """Run every applicable fsck rule against a live index."""
    if isinstance(index, PMRQuadtree):
        # PM1/PM2/PM3 refine the splitting rule, which voids the PMR's
        # split-once occupancy bound (PM03) but none of the B-tree, code,
        # or storage rules; check_pmr skips PM03 for the subclasses.
        findings = check_pmr(index)
    elif isinstance(index, RPlusTree):
        findings = check_rplus(index)
        findings += check_segment_refs(index, _leaf_refs(index))
    elif isinstance(index, GuttmanRTree):
        findings = check_rtree(index)
        findings += check_segment_refs(index, _leaf_refs(index))
    else:
        raise ValueError(
            f"no fsck support for {type(index).__name__}; supported: "
            f"R, R*, R+ (and the true R+ variant), PMR (and PM1/PM2/PM3)"
        )
    findings += check_storage(index)
    return findings


def check_snapshot(src: Union[str, os.PathLike, BinaryIO]) -> List[Finding]:
    """Verify a snapshot file written by :func:`repro.service.save_index`.

    Header-level cross-checks run first (manifest inventories vs. the
    page table, free list vs. dumped pages); if the snapshot can be
    opened at all, the reloaded index then gets the full
    :func:`check_index` treatment. A snapshot too damaged to open yields
    the header findings plus an ``FS01`` error carrying the codec error.
    """
    from repro.analysis.fsck_storage import FS01
    from repro.analysis.findings import error
    from repro.service.snapshot import open_index

    if hasattr(src, "read"):
        header = read_header(src)
        src.seek(0)
    else:
        with open(src, "rb") as fh:
            header = read_header(fh)
    findings = check_snapshot_header(header)
    try:
        index = open_index(src)
    except CodecError as exc:
        findings.append(
            error(FS01, None, str(src), f"snapshot cannot be opened: {exc}")
        )
        return findings
    return findings + check_index(index)
