"""Static analysis for the reproduction: index fsck + project lint.

Two pillars, both producing structured
:class:`~repro.analysis.findings.Finding` records:

* :mod:`repro.analysis.fsck` -- ``check_index`` / ``check_snapshot``
  statically verify the paper's per-structure invariants (R* MBR
  containment and fill bounds, R+ disjoint decomposition and leaf
  completeness, PMR split-once rule over Morton-ordered B-tree tuples)
  plus the storage bookkeeping (inventories, free list, segment table)
  without executing queries or moving a counter.
* :mod:`repro.analysis.lint` -- an AST pass enforcing the measurement
  discipline of this codebase (RP01..RP05; see the module docstring
  for the rules and the suppression syntax).
* :mod:`repro.analysis.concurrency` -- a whole-program lock-discipline
  pass (CC01..CC05): lock-order inversions, blocking calls under a
  lock, lockset violations, manual acquire/release, unowned threads.
  Its runtime complement is :mod:`repro.sanitize`.
* :mod:`repro.analysis.fsck_wal` -- ``check_wal`` / ``check_durable``
  extend the fsck to the durability layer (rules FS07..FS10: log
  framing and CRCs, LSN contiguity, checkpoint-manifest vs. snapshot
  vs. log-tail consistency).
* :mod:`repro.analysis.fsck_shards` -- ``check_shard_set`` extends it
  again to a sharded deployment (rules SH01..SH05: manifest validity,
  per-shard store presence, replicated-table agreement, region/index
  consistency, stale address files), running ``check_durable`` on
  every member store.

CLI: ``python -m repro check`` (``--wal DIR`` for a durable store,
``--shards DIR`` for a shard set), ``python -m repro lint``, and
``python -m repro lint --concurrency``; service hook: ``{"op":
"check"}`` against a running map server or shard router.
"""

from repro.analysis.findings import (
    ERROR,
    FSCK_RULES,
    LINT_RULES,
    WARNING,
    Finding,
    format_findings,
    has_errors,
    sort_findings,
)
from repro.analysis.concurrency import (
    lint_concurrency_paths,
    lint_concurrency_source,
    lint_concurrency_sources,
)
from repro.analysis.fsck import check_index, check_snapshot
from repro.analysis.fsck_shards import check_shard_set
from repro.analysis.fsck_wal import check_durable, check_wal
from repro.analysis.lint import lint_file, lint_paths, lint_source

__all__ = [
    "ERROR",
    "FSCK_RULES",
    "Finding",
    "LINT_RULES",
    "WARNING",
    "check_durable",
    "check_index",
    "check_shard_set",
    "check_snapshot",
    "check_wal",
    "format_findings",
    "has_errors",
    "lint_concurrency_paths",
    "lint_concurrency_source",
    "lint_concurrency_sources",
    "lint_file",
    "lint_paths",
    "lint_source",
    "sort_findings",
]
