"""WAL and durable-store integrity checks (rules FS07..FS10).

The durability layer (:mod:`repro.wal`) adds three files whose mutual
consistency the storage-level fsck cannot see: the log, the checkpoint
snapshot, and the checkpoint manifest. These rules close that gap:

* **FS07** -- the log file itself: header magic/size, per-record frame
  and CRC integrity. A bad header is an error (nothing is recoverable);
  a torn *tail* is a warning, because recovery truncates it by design.
* **FS08** -- LSN discipline: records must run ``base_lsn + 1, +2, ...``
  with no gaps or duplicates. A gap is an error: replaying around it
  would silently lose mutations.
* **FS09** -- checkpoint manifest vs. snapshot: the manifest's LSN must
  match the LSN embedded in the snapshot manifest. A snapshot *newer*
  than the manifest is a warning (an interrupted checkpoint between the
  two atomic replaces -- recovery handles it); a manifest newer than
  the snapshot is an error (the pointed-to checkpoint does not exist).
* **FS10** -- checkpoint vs. log tail: the log's base LSN must not
  exceed the checkpoint LSN (records between them would be lost --
  error); a base *below* the checkpoint merely means the log was never
  rotated (warning; recovery skips the folded prefix).

:func:`check_wal` inspects one log file; :func:`check_durable` runs the
full cross-check over a store directory and finishes with the complete
:func:`~repro.analysis.fsck.check_snapshot` walk of the checkpoint, so
``python -m repro check --wal DIR`` validates a durable store end to
end.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.analysis.findings import FSCK_RULES, Finding, error, warning

FS07 = FSCK_RULES.register("FS07", "WAL header or record framing/CRC damage")
FS08 = FSCK_RULES.register("FS08", "WAL LSN sequence has gaps or duplicates")
FS09 = FSCK_RULES.register(
    "FS09", "checkpoint manifest disagrees with snapshot's embedded LSN"
)
FS10 = FSCK_RULES.register(
    "FS10", "WAL base LSN inconsistent with the checkpoint LSN"
)


def check_wal(path: str, checkpoint_lsn: Optional[int] = None) -> List[Finding]:
    """Verify one log file: header, framing, CRCs, LSN contiguity.

    With ``checkpoint_lsn`` given, also applies the FS10 base-vs-
    checkpoint cross-check. The ``page_id`` of record-level findings is
    the record's file offset (the closest analogue of a page anchor).
    """
    from repro.wal.log import scan_log
    from repro.wal.records import WalError

    path = os.fspath(path)
    findings: List[Finding] = []
    try:
        scan = scan_log(path)
    except FileNotFoundError:
        findings.append(error(FS07, None, path, "log file is missing"))
        return findings
    except WalError as exc:
        findings.append(error(FS07, None, path, str(exc)))
        return findings
    if scan.tail_error is not None:
        findings.append(
            warning(
                FS07,
                scan.valid_bytes,
                path,
                f"torn tail ({scan.tail_error}): {scan.torn_bytes} byte(s) "
                f"past offset {scan.valid_bytes} will be truncated on "
                f"recovery",
            )
        )
    expected = scan.base_lsn + 1
    for record, offset in zip(scan.records, scan.offsets):
        if record.lsn != expected:
            findings.append(
                error(
                    FS08,
                    offset,
                    path,
                    f"record holds LSN {record.lsn} where {expected} was "
                    f"expected (base LSN {scan.base_lsn})",
                )
            )
            expected = record.lsn  # resync so one gap yields one finding
        expected += 1
    if checkpoint_lsn is not None:
        if scan.base_lsn > checkpoint_lsn:
            findings.append(
                error(
                    FS10,
                    None,
                    path,
                    f"log base LSN {scan.base_lsn} exceeds checkpoint LSN "
                    f"{checkpoint_lsn}: records "
                    f"{checkpoint_lsn + 1}..{scan.base_lsn} are lost",
                )
            )
        elif scan.base_lsn < checkpoint_lsn:
            findings.append(
                warning(
                    FS10,
                    None,
                    path,
                    f"log base LSN {scan.base_lsn} predates checkpoint LSN "
                    f"{checkpoint_lsn}: the log was not rotated (recovery "
                    f"skips the folded prefix)",
                )
            )
    return findings


def check_durable(root: str) -> List[Finding]:
    """Fsck a whole durable-store directory.

    Cross-checks the manifest, the snapshot's embedded checkpoint LSN,
    and the log (FS07..FS10), then runs the full snapshot walk
    (:func:`~repro.analysis.fsck.check_snapshot`) over the checkpoint so
    the structural rules (R+ disjointness, PMR occupancy, storage
    bookkeeping, ...) apply too.
    """
    from repro.analysis.fsck import check_snapshot
    from repro.service.snapshot import snapshot_info
    from repro.storage.codec import CodecError
    from repro.wal.store import DurableStore

    root = os.fspath(root)
    paths = DurableStore.paths(root)
    findings: List[Finding] = []

    manifest_lsn: Optional[int] = None
    if not os.path.exists(paths["manifest"]):
        findings.append(
            error(FS09, None, paths["manifest"], "checkpoint manifest is missing")
        )
    else:
        try:
            with open(paths["manifest"], "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
            manifest_lsn = manifest["checkpoint_lsn"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            findings.append(
                error(
                    FS09,
                    None,
                    paths["manifest"],
                    f"checkpoint manifest is unreadable: {exc}",
                )
            )

    embedded_lsn: Optional[int] = None
    if not os.path.exists(paths["snapshot"]):
        findings.append(
            error(FS09, None, paths["snapshot"], "checkpoint snapshot is missing")
        )
    else:
        try:
            embedded_lsn = snapshot_info(paths["snapshot"]).get("wal", {}).get(
                "checkpoint_lsn"
            )
            if embedded_lsn is None:
                findings.append(
                    error(
                        FS09,
                        None,
                        paths["snapshot"],
                        "snapshot manifest embeds no checkpoint LSN",
                    )
                )
        except CodecError as exc:
            findings.append(
                error(
                    FS09,
                    None,
                    paths["snapshot"],
                    f"snapshot header is unreadable: {exc}",
                )
            )

    if manifest_lsn is not None and embedded_lsn is not None:
        if embedded_lsn > manifest_lsn:
            findings.append(
                warning(
                    FS09,
                    None,
                    root,
                    f"snapshot LSN {embedded_lsn} is newer than manifest LSN "
                    f"{manifest_lsn}: an interrupted checkpoint (recovery "
                    f"trusts the snapshot)",
                )
            )
        elif embedded_lsn < manifest_lsn:
            findings.append(
                error(
                    FS09,
                    None,
                    root,
                    f"manifest points at checkpoint LSN {manifest_lsn} but "
                    f"the snapshot holds LSN {embedded_lsn}: the checkpoint "
                    f"it names does not exist",
                )
            )

    if os.path.exists(paths["log"]):
        findings += check_wal(paths["log"], checkpoint_lsn=embedded_lsn)
    else:
        findings.append(
            warning(
                FS07,
                None,
                paths["log"],
                "log file is missing (recovery starts a fresh tail at the "
                "checkpoint)",
            )
        )

    if os.path.exists(paths["snapshot"]) and embedded_lsn is not None:
        findings += check_snapshot(paths["snapshot"])
    return findings
