"""Static lock-discipline pass: rules CC01..CC05 (stdlib ``ast`` only).

PR 2's linter guards the *measurement* discipline; this pass guards the
*concurrency* discipline that every answer has depended on since the
service layer landed: a latched buffer pool, a group-committed WAL, a
shared cache and metrics registry, and a multi-threaded scatter-gather
router. The pass catalogs every lock-like object under the analyzed
paths (``threading.Lock``/``RLock``/``Condition``, :class:`Latch`,
:class:`TrackedLock`/:class:`TrackedCondition`), reconstructs where each
is held from ``with``-statement nesting, propagates held-sets through
the project call graph, and reports:

* **CC01** -- lock-order inversion: the global acquisition graph (an
  edge A->B whenever B is acquired while A is held, including through
  calls) contains a cycle. Two threads walking the cycle from different
  entry points can deadlock even if no single run ever has.
* **CC02** -- a blocking operation (``os.fsync``, socket
  send/recv/connect/accept, ``subprocess``, ``sleep``, ``join``) while
  holding a lock or latch: every other thread needing that lock stalls
  for the I/O's duration. Intentional cases (the WAL's group-commit
  fsync) carry a justified pragma.
* **CC03** -- lockset violation: a field of a lock-owning class is
  mutated in two or more methods, but at least one mutation site holds
  none of the class's own locks. Two threads in those methods race.
  ``__init__`` is exempt (construction precedes sharing).
* **CC04** -- a lock used outside a ``with`` block: bare ``.acquire()``
  calls, and bare ``.release()`` calls outside a ``finally``, leak the
  lock on any exception between them (the generalization of RP02 from
  ``Latch`` to every lock-like object).
* **CC05** -- an unowned thread: ``threading.Thread(...)`` started with
  neither ``daemon=True`` nor any ``.join()`` in the creating function
  or class. Such a thread can outlive shutdown and keep the process (or
  a test run) alive.

Suppression uses the same pragma syntax and justification requirement
as the RP rules (see :mod:`repro.analysis.lint`): append
``# repro-lint: disable=CCxx -- <why this is safe>`` to the offending
line; a pragma without the justification is itself reported (RP00).

Scope and honesty about limits: the call graph is resolved by name --
``self.m()`` to the same class, bare ``f()`` to the same module, and
``obj.m()`` to project classes defining ``m`` only when at most
:data:`_MAX_METHOD_CANDIDATES` classes do (wider names like ``close``
or ``stats`` are skipped rather than smeared across the codebase).
Held-sets for underscore-prefixed methods are inferred as the
intersection over their intra-class call sites, so a helper only ever
called under the class lock (``WriteAheadLog._append``) analyzes as
lock-held. Propagation is a fixpoint, so arbitrarily deep same-class
chains are covered; what is *not* covered is dynamic dispatch through
stored callables. The runtime sanitizer (:mod:`repro.sanitize`) is the
complement that sees exactly what executes.

The lock primitives themselves (``repro/storage/latch.py``,
``repro/sanitize.py``) are exempt, as the latch module already is for
RP02: they *implement* acquire/release and mutate their own bookkeeping
under manually-managed locks by construction.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import LINT_RULES, Finding, error
from repro.analysis.lint import _collect_disables, iter_python_files

CC01 = LINT_RULES.register("CC01", "lock-order inversion (acquisition-graph cycle)")
CC02 = LINT_RULES.register("CC02", "blocking call while holding a lock/latch")
CC03 = LINT_RULES.register("CC03", "field of a lock-owning class mutated outside its lock")
CC04 = LINT_RULES.register("CC04", "lock acquire/release outside a with block / finally")
CC05 = LINT_RULES.register("CC05", "thread started without daemon flag or join path")

#: Callables whose result is a lock-like object (RHS of ``self.x = ...``).
_LOCK_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Latch",
        "TrackedLock",
        "TrackedCondition",
        "make_lock",
        "make_condition",
    }
)

#: Attribute names treated as lock-like even without a cataloged factory.
_LOCKISH_FRAGMENTS = ("lock", "latch", "mutex", "gate", "sem")

#: Method/function names that block the calling thread (CC02). Chosen to
#: be specific to I/O and scheduling -- ``read``/``write``/``flush`` on
#: buffered files are deliberately absent (they hit the page cache, and
#: including them would drown the true syscall stalls in noise).
_BLOCKING_CALLS = frozenset(
    {
        "fsync",
        "fdatasync",
        "sleep",
        "join",
        "send",
        "sendall",
        "recv",
        "recv_into",
        "connect",
        "accept",
        "create_connection",
        "select",
        "readline",
    }
)

#: ``obj.m()`` propagates held-sets into ``m``'s acquisitions only when
#: at most this many project classes define ``m``.
_MAX_METHOD_CANDIDATES = 2

#: Files that implement the lock primitives (exempt, like RP02's latch
#: exemption): they necessarily acquire/release manually.
_EXEMPT_SUFFIXES = ("repro/storage/latch.py", "repro/sanitize.py")


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _is_exempt(path: str) -> bool:
    p = _norm(path)
    return any(p.endswith(suffix) for suffix in _EXEMPT_SUFFIXES)


def _chain_tail(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    parts.append(node.id if isinstance(node, ast.Name) else "?")
    return ".".join(reversed(parts))


def _lockish_name(name: str) -> bool:
    low = name.lower()
    return any(fragment in low for fragment in _LOCKISH_FRAGMENTS)


# ----------------------------------------------------------------------
# Collected facts
# ----------------------------------------------------------------------
class _Site:
    """One interesting source location inside a method."""

    __slots__ = ("lineno", "held", "data")

    def __init__(self, lineno: int, held: Tuple[str, ...], data: object) -> None:
        self.lineno = lineno
        self.held = held  # mix of lock nodes and ("call", key) placeholders
        self.data = data


class _MethodInfo:
    def __init__(self, key: str, path: str, class_name: Optional[str]) -> None:
        self.key = key  # "Class.method" or "module.function"
        self.path = path
        self.class_name = class_name
        self.acquired: List[_Site] = []  # data = lock node acquired
        self.calls: List[_Site] = []  # data = callee descriptor
        self.blocking: List[_Site] = []  # data = rendered call text
        self.mutations: List[_Site] = []  # data = field name
        self.cc04: List[Tuple[int, str]] = []  # (lineno, detail)
        self.threads: List[Tuple[int, bool]] = []  # (lineno, daemon_flag)
        self.has_join = False


class _ClassInfo:
    def __init__(self, name: str, path: str) -> None:
        self.name = name
        self.path = path
        self.locks: Dict[str, int] = {}  # attr -> lineno of assignment
        self.methods: Dict[str, _MethodInfo] = {}
        self.has_join = False


class _ModuleInfo:
    def __init__(self, path: str) -> None:
        self.path = path
        self.classes: Dict[str, _ClassInfo] = {}
        self.functions: Dict[str, _MethodInfo] = {}
        self.module_locks: Dict[str, int] = {}  # NAME -> lineno


# ----------------------------------------------------------------------
# Per-file collection
# ----------------------------------------------------------------------
def _lock_factory_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name in _LOCK_FACTORIES


def _collect_class_locks(cls: ast.ClassDef, info: _ClassInfo) -> None:
    """Find ``self.X = <lock factory>()`` anywhere in the class body."""
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not _lock_factory_call(node.value):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                info.locks.setdefault(target.attr, node.lineno)


class _Collector:
    """Walk one parsed module, producing a :class:`_ModuleInfo`."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self.path = path
        self.module = _ModuleInfo(path)
        self._collect(tree)

    def _collect(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                cinfo = _ClassInfo(stmt.name, self.path)
                _collect_class_locks(stmt, cinfo)
                self.module.classes[stmt.name] = cinfo
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        minfo = _MethodInfo(
                            f"{stmt.name}.{sub.name}", self.path, stmt.name
                        )
                        self._walk_function(sub, minfo, cinfo)
                        cinfo.methods[sub.name] = minfo
                        cinfo.has_join = cinfo.has_join or minfo.has_join
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                minfo = _MethodInfo(stmt.name, self.path, None)
                self._walk_function(stmt, minfo, None)
                self.module.functions[stmt.name] = minfo
            elif isinstance(stmt, ast.Assign) and _lock_factory_call(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.module.module_locks[target.id] = stmt.lineno

    # -- lock-expression resolution ------------------------------------
    def _resolve_lock_expr(
        self, expr: ast.AST, cinfo: Optional[_ClassInfo]
    ) -> Optional[str]:
        """A ``with``-item (or acquire receiver) -> lock node, or None."""
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                if cinfo is not None and attr in cinfo.locks:
                    return f"{cinfo.name}.{attr}"
                if _lockish_name(attr):
                    owner = cinfo.name if cinfo is not None else "?"
                    return f"{owner}.{attr}"
                return None
            if _lockish_name(attr):
                return f"@{attr}"  # foreign receiver: resolve globally later
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.module.module_locks:
                base = os.path.basename(self.path).rsplit(".", 1)[0]
                return f"{base}:{expr.id}"
            if _lockish_name(expr.id):
                return f"@{expr.id}"
            return None
        return None

    def _callee_descriptor(self, call: ast.Call) -> Optional[Tuple[str, str]]:
        """(kind, name): kind 'self'|'name'|'attr' for later resolution."""
        func = call.func
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                return ("self", func.attr)
            return ("attr", func.attr)
        if isinstance(func, ast.Name):
            return ("name", func.id)
        return None

    # -- function walking ----------------------------------------------
    def _walk_function(
        self,
        func: ast.AST,
        minfo: _MethodInfo,
        cinfo: Optional[_ClassInfo],
    ) -> None:
        self._walk_body(func.body, (), False, minfo, cinfo)

    def _walk_body(
        self,
        stmts: Sequence[ast.stmt],
        held: Tuple[str, ...],
        in_finally: bool,
        minfo: _MethodInfo,
        cinfo: Optional[_ClassInfo],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held
                for item in stmt.items:
                    self._scan_expr(item.context_expr, inner, in_finally, minfo, cinfo)
                    node = self._with_item_lock(item.context_expr, cinfo)
                    if node is not None:
                        minfo.acquired.append(_Site(stmt.lineno, inner, node))
                        inner = inner + (node,)
                self._walk_body(stmt.body, inner, in_finally, minfo, cinfo)
            elif isinstance(stmt, ast.Try):
                self._walk_body(stmt.body, held, in_finally, minfo, cinfo)
                for handler in stmt.handlers:
                    self._walk_body(handler.body, held, in_finally, minfo, cinfo)
                self._walk_body(stmt.orelse, held, in_finally, minfo, cinfo)
                self._walk_body(stmt.finalbody, held, True, minfo, cinfo)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function runs later on an unknown thread with
                # an unknown held-set: analyze its body from a clean
                # slate (its calls/mutations still count for the class).
                self._walk_body(stmt.body, (), False, minfo, cinfo)
            elif isinstance(stmt, ast.ClassDef):
                continue
            else:
                if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            minfo.mutations.append(
                                _Site(stmt.lineno, held, target.attr)
                            )
                for name, value in ast.iter_fields(stmt):
                    if isinstance(value, ast.expr):
                        self._scan_expr(value, held, in_finally, minfo, cinfo)
                    elif isinstance(value, list):
                        for element in value:
                            if isinstance(element, ast.stmt):
                                self._walk_body(
                                    [element], held, in_finally, minfo, cinfo
                                )
                            elif isinstance(element, ast.expr):
                                self._scan_expr(
                                    element, held, in_finally, minfo, cinfo
                                )

    def _with_item_lock(
        self, expr: ast.AST, cinfo: Optional[_ClassInfo]
    ) -> Optional[str]:
        """Lock node for a with-item; calls become placeholders so a
        context manager that internally takes a lock (the engine's
        ``_attributed``) still contributes its lock to the held-set."""
        direct = self._resolve_lock_expr(expr, cinfo)
        if direct is not None:
            return direct
        if isinstance(expr, ast.Call):
            desc = self._callee_descriptor(expr)
            if desc is not None and desc[0] == "self" and cinfo is not None:
                return f"call:{cinfo.name}.{desc[1]}"
        return None

    def _scan_expr(
        self,
        expr: ast.AST,
        held: Tuple[str, ...],
        in_finally: bool,
        minfo: _MethodInfo,
        cinfo: Optional[_ClassInfo],
    ) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name == "join":
                minfo.has_join = True
            # CC05: thread construction
            if name == "Thread":
                daemon = any(
                    kw.arg == "daemon"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                )
                minfo.threads.append((node.lineno, daemon))
            # CC04: manual acquire/release on a lock-like receiver
            if (
                isinstance(func, ast.Attribute)
                and name in ("acquire", "release")
                and _lockish_name(_chain_tail(func.value))
            ):
                if name == "acquire":
                    minfo.cc04.append(
                        (
                            node.lineno,
                            f"`{_dotted(func)}()` -- hold the lock with "
                            f"`with` so it cannot leak on an exception",
                        )
                    )
                elif not in_finally:
                    minfo.cc04.append(
                        (
                            node.lineno,
                            f"`{_dotted(func)}()` outside a `finally` -- an "
                            f"exception before this line leaks the lock",
                        )
                    )
            # CC02: blocking call
            is_blocking = name in _BLOCKING_CALLS
            if isinstance(func, ast.Attribute):
                receiver = _dotted(func.value)
                if "subprocess" in receiver.split("."):
                    is_blocking = True
            if is_blocking and name == "join" and not isinstance(
                func, ast.Attribute
            ):
                is_blocking = False  # bare join() is str.join-like usage
            if is_blocking and name == "join" and isinstance(func, ast.Attribute):
                # ``", ".join(...)`` is string building, not scheduling:
                # only flag join on something that looks like a thread,
                # worker, pool, or process.
                tail = _chain_tail(func.value).lower()
                if not any(
                    fragment in tail
                    for fragment in ("thread", "worker", "proc", "pool", "w")
                ):
                    is_blocking = False
            if is_blocking:
                minfo.blocking.append(
                    _Site(node.lineno, held, f"{_dotted(func)}(...)")
                )
            # Call-graph site (for held-set and edge propagation)
            desc = self._callee_descriptor(node)
            if desc is not None:
                minfo.calls.append(_Site(node.lineno, held, desc))


# ----------------------------------------------------------------------
# Whole-program analysis
# ----------------------------------------------------------------------
class _Program:
    def __init__(self, modules: List[_ModuleInfo]) -> None:
        self.modules = modules
        self.methods: Dict[str, _MethodInfo] = {}
        self.classes: Dict[str, _ClassInfo] = {}
        #: method name -> keys of "Class.method" across the project
        self.by_method_name: Dict[str, List[str]] = {}
        #: lock attr name -> owning class names (for ``@attr`` nodes)
        self.lock_attr_owners: Dict[str, List[str]] = {}
        for module in modules:
            for fn in module.functions.values():
                self.methods[fn.key] = fn
            for cls in module.classes.values():
                self.classes[cls.name] = cls
                for mname, minfo in cls.methods.items():
                    self.methods[minfo.key] = minfo
                    self.by_method_name.setdefault(mname, []).append(minfo.key)
                for attr in cls.locks:
                    self.lock_attr_owners.setdefault(attr, []).append(cls.name)
        self.entry: Dict[str, frozenset] = {}
        self.acq: Dict[str, Set[str]] = {}
        self._compute_acq_sets()
        self._compute_entry_locksets()

    # -- resolution ----------------------------------------------------
    def resolve_node(self, node: str) -> Optional[str]:
        """Normalize a lock node; ``@attr`` resolves to ``Class.attr``
        when exactly one cataloged class owns ``attr``."""
        if node.startswith("@"):
            attr = node[1:]
            owners = self.lock_attr_owners.get(attr, [])
            if len(owners) == 1:
                return f"{owners[0]}.{attr}"
            return f"?.{attr}"
        return node

    def resolve_call(self, caller: _MethodInfo, desc: Tuple[str, str]) -> List[str]:
        kind, name = desc
        if kind == "self" and caller.class_name is not None:
            key = f"{caller.class_name}.{name}"
            return [key] if key in self.methods else []
        if kind == "name":
            for module in self.modules:
                if module.path == caller.path and name in module.functions:
                    return [name]
            return []
        # attribute call on a foreign object: by method name, bounded
        candidates = self.by_method_name.get(name, [])
        if 0 < len(candidates) <= _MAX_METHOD_CANDIDATES:
            return list(candidates)
        return []

    # -- transitive acquisition sets -----------------------------------
    def _compute_acq_sets(self) -> None:
        for key, minfo in self.methods.items():
            direct = set()
            for site in minfo.acquired:
                if not str(site.data).startswith("call:"):
                    resolved = self.resolve_node(str(site.data))
                    if resolved is not None:
                        direct.add(resolved)
            self.acq[key] = direct
        changed = True
        iterations = 0
        while changed and iterations < 20:
            changed = False
            iterations += 1
            for key, minfo in self.methods.items():
                current = self.acq[key]
                before = len(current)
                for site in minfo.calls:
                    for callee in self.resolve_call(minfo, site.data):
                        current |= self.acq.get(callee, set())
                for site in minfo.acquired:
                    data = str(site.data)
                    if data.startswith("call:"):
                        current |= self.acq.get(data[5:], set())
                if len(current) != before:
                    changed = True

    # -- inherited entry locksets --------------------------------------
    def _compute_entry_locksets(self) -> None:
        """For underscore methods: ∩ of held-sets at intra-class call
        sites, iterated to fixpoint (monotone: entries only grow)."""
        for key in self.methods:
            self.entry[key] = frozenset()
        for _ in range(10):
            changed = False
            for key, minfo in self.methods.items():
                cls = minfo.class_name
                if cls is None:
                    continue
                mname = key.rsplit(".", 1)[1]
                if not mname.startswith("_") or mname.startswith("__"):
                    continue
                callers: List[frozenset] = []
                for other in self.classes.get(cls, _ClassInfo(cls, "")).methods.values():
                    for site in other.calls:
                        kind, name = site.data
                        if kind == "self" and name == mname:
                            callers.append(
                                frozenset(self.expand_held(other, site.held))
                                | self.entry[other.key]
                            )
                if not callers:
                    continue
                combined = frozenset.intersection(*callers)
                if combined != self.entry[key]:
                    self.entry[key] = combined
                    changed = True
            if not changed:
                break

    # -- held-set expansion --------------------------------------------
    def expand_held(
        self, minfo: _MethodInfo, held: Tuple[str, ...]
    ) -> Set[str]:
        """Concrete lock nodes for a recorded held tuple: resolve
        ``@attr`` tokens and expand ``call:`` context-manager tokens to
        the callee's transitive acquisitions."""
        out: Set[str] = set()
        for token in held:
            if token.startswith("call:"):
                out |= self.acq.get(token[5:], set())
            else:
                resolved = self.resolve_node(token)
                if resolved is not None:
                    out.add(resolved)
        return out

    def full_held(self, minfo: _MethodInfo, held: Tuple[str, ...]) -> Set[str]:
        return self.expand_held(minfo, held) | set(self.entry.get(minfo.key, ()))


# ----------------------------------------------------------------------
# Rule evaluation
# ----------------------------------------------------------------------
def _class_lock_nodes(cls: _ClassInfo) -> Set[str]:
    return {f"{cls.name}.{attr}" for attr in cls.locks}


def _evaluate(program: _Program) -> List[Tuple[str, str, int, str]]:
    """All raw findings as ``(rule, path, lineno, detail)``."""
    raw: List[Tuple[str, str, int, str]] = []
    edges: Dict[Tuple[str, str], Tuple[str, int]] = {}  # edge -> provenance

    def add_edge(a: str, b: str, path: str, lineno: int) -> None:
        if a == b or a.startswith("?.") or b.startswith("?."):
            return  # reentrancy / unresolvable foreign locks
        edges.setdefault((a, b), (path, lineno))

    for minfo in program.methods.values():
        if _is_exempt(minfo.path):
            continue
        # CC01 edges: direct with-nesting plus call propagation
        for site in minfo.acquired:
            data = str(site.data)
            held = program.full_held(minfo, site.held)
            targets = (
                program.acq.get(data[5:], set())
                if data.startswith("call:")
                else {program.resolve_node(data)}
            )
            for target in targets:
                if target is None:
                    continue
                for holder in held:
                    add_edge(holder, target, minfo.path, site.lineno)
        for site in minfo.calls:
            held = program.full_held(minfo, site.held)
            if not held:
                continue
            for callee in program.resolve_call(minfo, site.data):
                for target in program.acq.get(callee, set()):
                    for holder in held:
                        add_edge(holder, target, minfo.path, site.lineno)
        # CC02: blocking call with any lock held
        for site in minfo.blocking:
            held = sorted(program.full_held(minfo, site.held))
            if held:
                raw.append(
                    (
                        CC02,
                        minfo.path,
                        site.lineno,
                        f"{site.data} blocks while holding "
                        f"{', '.join(held)}; every waiter on "
                        f"{'that lock' if len(held) == 1 else 'those locks'} "
                        f"stalls for the I/O",
                    )
                )
        # CC04
        for lineno, detail in minfo.cc04:
            raw.append((CC04, minfo.path, lineno, detail))
        # CC05
        for lineno, daemon in minfo.threads:
            if daemon or minfo.has_join:
                continue
            cls = (
                program.classes.get(minfo.class_name)
                if minfo.class_name is not None
                else None
            )
            if cls is not None and cls.has_join:
                continue
            raw.append(
                (
                    CC05,
                    minfo.path,
                    lineno,
                    "thread started with neither daemon=True nor a join "
                    "path in its owner; it can outlive shutdown",
                )
            )

    # CC03: per lock-owning class
    for cls in program.classes.values():
        if _is_exempt(cls.path) or not cls.locks:
            continue
        own = _class_lock_nodes(cls)
        by_field: Dict[str, List[Tuple[str, _Site]]] = {}
        for mname, minfo in cls.methods.items():
            if mname == "__init__":
                continue
            for site in minfo.mutations:
                field = str(site.data)
                if field in cls.locks:
                    continue
                by_field.setdefault(field, []).append((mname, site))
        for field, sites in by_field.items():
            methods_mutating = {mname for mname, _ in sites}
            if len(methods_mutating) < 2:
                continue
            for mname, site in sites:
                minfo = cls.methods[mname]
                held = program.full_held(minfo, site.held)
                if held & own:
                    continue
                raw.append(
                    (
                        CC03,
                        cls.path,
                        site.lineno,
                        f"`self.{field}` is written by "
                        f"{len(methods_mutating)} methods of lock-owning "
                        f"class {cls.name} but this write holds none of "
                        f"{', '.join(sorted(own))}; concurrent callers race",
                    )
                )

    # CC01: cycles over the completed edge graph
    raw.extend(_find_cycles(edges))
    return raw


def _find_cycles(
    edges: Dict[Tuple[str, str], Tuple[str, int]]
) -> List[Tuple[str, str, int, str]]:
    """One CC01 finding per distinct cycle (reported at the edge that
    lexicographically starts the cycle)."""
    succ: Dict[str, List[str]] = {}
    for (a, b) in edges:
        succ.setdefault(a, []).append(b)

    def path_between(start: str, goal: str) -> Optional[List[str]]:
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in sorted(succ.get(node, ()), reverse=True):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    findings: List[Tuple[str, str, int, str]] = []
    reported: Set[frozenset] = set()
    for (a, b) in sorted(edges):
        back = path_between(b, a)
        if back is None:
            continue
        cycle = [a] + back  # a -> b -> ... -> a
        key = frozenset(cycle)
        if key in reported:
            continue
        reported.add(key)
        legs = []
        for x, y in zip(cycle, cycle[1:] + [cycle[0]]):
            prov = edges.get((x, y))
            where = f" ({_norm(prov[0])}:{prov[1]})" if prov else ""
            legs.append(f"{x} -> {y}{where}")
        path, lineno = edges[(a, b)]
        findings.append(
            (
                CC01,
                path,
                lineno,
                "lock-order inversion: " + "; ".join(legs) + "; two threads "
                "entering this cycle from different edges can deadlock",
            )
        )
    return findings


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def lint_concurrency_sources(sources: Dict[str, str]) -> List[Finding]:
    """Run the whole-program pass over ``{path: source}``."""
    modules: List[_ModuleInfo] = []
    findings: List[Finding] = []
    parsed: Dict[str, str] = {}
    for path, source in sources.items():
        if _is_exempt(path):
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(
                error("RP00", exc.lineno, path, f"file does not parse: {exc.msg}")
            )
            continue
        modules.append(_Collector(tree, path).module)
        parsed[path] = source
    program = _Program(modules)
    raw_by_path: Dict[str, List[Tuple[str, int, str]]] = {}
    for rule, path, lineno, detail in _evaluate(program):
        raw_by_path.setdefault(path, []).append((rule, lineno, detail))
    for path, source in parsed.items():
        raw = raw_by_path.get(path, [])
        disabled, extra = _collect_disables(source, raw, path)
        findings.extend(extra)
        for rule, lineno, detail in raw:
            if rule in disabled.get(lineno, ()):
                continue
            findings.append(error(rule, lineno, path, detail))
    return findings


def lint_concurrency_source(source: str, path: str = "<string>") -> List[Finding]:
    """Single-source convenience wrapper (fixtures and tests)."""
    return lint_concurrency_sources({path: source})


def lint_concurrency_paths(paths: Iterable[str]) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths`` as one program."""
    sources: Dict[str, str] = {}
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as fh:
            sources[filename] = fh.read()
    return lint_concurrency_sources(sources)
