"""Static integrity checks for the paper's R+-tree (k-d-B hybrid).

Section 3 of Hoel & Samet: non-leaf entries carry raw *partition*
rectangles -- pairwise disjoint and tiling the parent region exactly --
while minimum bounding rectangles appear only in the leaves, and a
segment is stored in **every** leaf whose region a positive-length piece
of it crosses. All reads go through ``DiskManager.peek``: no queries, no
buffer-pool traffic, no counter movement.
"""

from __future__ import annotations

from typing import List, Set

from repro.analysis.findings import FSCK_RULES, Finding, error, warning
from repro.geometry import Rect

RX01 = FSCK_RULES.register("RX01", "sibling partition regions overlap")
RX02 = FSCK_RULES.register("RX02", "child region escapes its parent region")
RX03 = FSCK_RULES.register("RX03", "child regions do not cover the parent region")
RX04 = FSCK_RULES.register("RX04", "leaf entry MBR disjoint from the leaf region")
RX05 = FSCK_RULES.register(
    "RX05", "segment missing from a leaf whose region it crosses"
)
RX06 = FSCK_RULES.register("RX06", "page inventory / entry count bookkeeping mismatch")
RX07 = FSCK_RULES.register("RX07", "tree references a page missing from disk")
RX08 = FSCK_RULES.register("RX08", "leaf overfull beyond its page capacity")

#: Relative tolerance for the area-coverage test, matching
#: ``RPlusTree.check_invariants``.
_COVER_TOL = 1e-6


def check_rplus(index) -> List[Finding]:
    """Verify an R+-tree's disjoint decomposition; returns findings."""
    disk = index.ctx.disk
    findings: List[Finding] = []
    seen: Set[int] = set()
    leaf_entry_total = 0
    seg_ids: Set[int] = set()

    def walk(page_id: int, region: Rect, depth: int, path: str) -> None:
        nonlocal leaf_entry_total
        here = f"{path}/{page_id}" if path else str(page_id)
        if page_id in seen:
            findings.append(
                error(RX06, page_id, here, "page reachable via two parents")
            )
            return
        seen.add(page_id)
        if not disk.is_allocated(page_id):
            findings.append(
                error(RX07, page_id, here, "referenced page is not allocated")
            )
            return
        node = disk.peek(page_id)
        if node.is_leaf:
            if depth != index._height:
                findings.append(
                    error(
                        RX06,
                        page_id,
                        here,
                        f"leaf at depth {depth}, tree height {index._height}",
                    )
                )
            leaf_entry_total += len(node.entries)
            ids_here = [ref for _, ref in node.entries]
            if len(ids_here) != len(set(ids_here)):
                findings.append(
                    error(RX06, page_id, here, "duplicate segment entry in one leaf")
                )
            seg_ids.update(ids_here)
            if len(node.entries) > index.capacity:
                # Documented pathological case: a leaf whose segments all
                # cross every candidate split line stays overfull and is
                # charged overflow pages -- tolerated, but surfaced.
                findings.append(
                    warning(
                        RX08,
                        page_id,
                        here,
                        f"{len(node.entries)} entries > capacity {index.capacity} "
                        f"(unsplittable leaf)",
                    )
                )
            for rect, ref in node.entries:
                if not rect.intersects(region):
                    findings.append(
                        error(
                            RX04,
                            page_id,
                            here,
                            f"entry for segment {ref} has MBR {tuple(rect)} "
                            f"disjoint from leaf region {tuple(region)}",
                        )
                    )
            return
        area = 0.0
        entries = node.entries
        for i, (rect, child) in enumerate(entries):
            if not region.contains_rect(rect):
                findings.append(
                    error(
                        RX02,
                        page_id,
                        here,
                        f"child region {tuple(rect)} escapes parent "
                        f"{tuple(region)}",
                    )
                )
            area += rect.area()
            for rect2, child2 in entries[i + 1 :]:
                if rect.overlap_area(rect2) > 0:
                    findings.append(
                        error(
                            RX01,
                            page_id,
                            here,
                            f"sibling regions {tuple(rect)} (page {child}) and "
                            f"{tuple(rect2)} (page {child2}) overlap",
                        )
                    )
            walk(child, rect, depth + 1, here)
        if abs(area - region.area()) > _COVER_TOL * max(region.area(), 1.0):
            findings.append(
                error(
                    RX03,
                    page_id,
                    here,
                    f"child regions cover area {area:g} of parent area "
                    f"{region.area():g}",
                )
            )

    if not disk.is_allocated(index._root_id):
        return [error(RX07, index._root_id, "", "root page is not allocated")]
    walk(index._root_id, index.world, 1, "")

    if seen != index._page_ids:
        extra = sorted(seen - index._page_ids)
        missing = sorted(index._page_ids - seen)
        findings.append(
            error(
                RX06,
                None,
                "",
                f"page inventory mismatch: reachable-but-untracked {extra[:8]}, "
                f"tracked-but-unreachable {missing[:8]}",
            )
        )
    if leaf_entry_total != index._entry_count:
        findings.append(
            error(
                RX06,
                None,
                "",
                f"{leaf_entry_total} leaf entries but bookkeeping says "
                f"{index._entry_count}",
            )
        )
    if len(seg_ids) != index._seg_count:
        findings.append(
            error(
                RX06,
                None,
                "",
                f"{len(seg_ids)} distinct segments but bookkeeping says "
                f"{index._seg_count}",
            )
        )

    findings.extend(_check_completeness(index, seg_ids))
    return findings


def _check_completeness(index, seg_ids: Set[int]) -> List[Finding]:
    """Every segment must appear in every leaf a positive-length piece of
    it crosses (boundary grazing may legitimately land in a neighbour)."""
    disk = index.ctx.disk
    table = index.ctx.segments
    findings: List[Finding] = []

    def descend(page_id: int, region: Rect, seg, seg_id: int) -> None:
        if not disk.is_allocated(page_id):
            return  # already reported as RX07 by the structural walk
        node = disk.peek(page_id)
        if node.is_leaf:
            piece = seg.clipped(region)
            if piece is None or piece.is_degenerate():
                return
            if not any(ref == seg_id for _, ref in node.entries):
                findings.append(
                    error(
                        RX05,
                        page_id,
                        str(page_id),
                        f"segment {seg_id} crosses leaf region {tuple(region)} "
                        f"but is not stored there",
                    )
                )
            return
        for rect, child in node.entries:
            if seg.intersects_rect(rect):
                descend(child, rect, seg, seg_id)

    for seg_id in sorted(seg_ids):
        if not 0 <= seg_id < len(table):
            continue  # dangling pointer: reported by the storage checks
        descend(index._root_id, index.world, table.peek(seg_id), seg_id)
    return findings
