"""Project-specific AST lint pass (stdlib ``ast`` only, no dependencies).

The paper's measurements are only as honest as the code discipline
underneath them: a single traversal that reads pages via the
:class:`~repro.storage.disk.DiskManager` instead of the buffer pool
silently deflates the reported disk accesses, and a counter bumped from
the wrong layer mis-attributes work between structures. These rules are
not general style checks -- each one guards a measurement or concurrency
invariant of this repository:

* **RP01** -- no ``disk.read(...)``/``disk.write(...)`` calls and no
  ``disk._pages`` access outside ``repro.storage``. Page traffic on
  measured paths must flow through the :class:`BufferPool`; the
  sanctioned uncounted bypass is ``disk.peek`` (instrumentation only).
* **RP02** -- a :class:`~repro.storage.latch.Latch` must be held via
  ``with``; bare ``latch.acquire()``/``latch.release()`` pairs leak the
  latch on any exception between them.
* **RP03** -- :class:`MetricsCounters` fields may only be mutated by
  their owning layer: the I/O fields (``disk_reads``, ``disk_writes``,
  ``buffer_hits``) in ``repro.storage``, the comparison fields
  (``segment_comps``, ``bbox_comps``) in ``repro.storage`` or
  ``repro.core`` (the measurement instrument itself). Anywhere else,
  use :meth:`MetricsCounters.merge`. The counter *names* are governed
  too: a counter-name string literal anywhere but
  ``repro/metric_names.py`` (docstrings excepted) is flagged -- every
  reporting layer must import the names, so one renamed counter cannot
  silently orphan a stats key.
* **RP04** -- no bare ``except:`` and no ``except Exception: pass``
  under ``src/``: swallowing arbitrary exceptions hides index
  corruption from the invariant checks.
* **RP05** -- no float literals in grid-coordinate positions in
  ``repro.core``: arguments of the locational-code functions and
  ``PMRBlock``, and operands of bitwise shifts/masks, must be integer
  expressions (a float silently truncates a Morton code).
* **RP06** -- no new calls to the deprecated legacy query shims
  (``window_query``, ``segments_at_point`` and friends) outside
  ``repro.core.queries`` itself. Queries are expressed as a
  :class:`~repro.core.queries.spec.QuerySpec` and executed through a
  :class:`~repro.core.interface.TraversalBackend`; a direct legacy call
  sidesteps backend selection, so the vectorized path silently never
  runs for it.

Suppression: append ``# repro-lint: disable=RPxx -- <justification>`` to
the offending line. The justification is mandatory -- a disable without
one is itself reported (RP00).
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import LINT_RULES, Finding, error
from repro.metric_names import COMP_FIELDS, COUNTER_FIELDS, DISK_ACCESSES, IO_FIELDS

RP00 = LINT_RULES.register("RP00", "lint disable pragma without a justification")
RP01 = LINT_RULES.register("RP01", "DiskManager access bypasses the buffer pool")
RP02 = LINT_RULES.register("RP02", "Latch acquired/released outside a with block")
RP03 = LINT_RULES.register("RP03", "MetricsCounters field mutated outside its layer")
RP04 = LINT_RULES.register("RP04", "bare except / except Exception: pass")
RP05 = LINT_RULES.register("RP05", "float literal in a grid-coordinate position")
RP06 = LINT_RULES.register("RP06", "legacy query shim called outside repro.core.queries")

_IO_FIELDS = frozenset(IO_FIELDS)
_COMP_FIELDS = frozenset(COMP_FIELDS)
#: Names whose string spelling is reserved to ``repro/metric_names.py``.
_COUNTER_NAME_LITERALS = frozenset(COUNTER_FIELDS) | {DISK_ACCESSES}
_GRID_CALLS = frozenset(
    {
        "PMRBlock",
        "locational_code",
        "hilbert_code",
        "hilbert_index",
        "interleave",
        "deinterleave",
    }
)
_BITWISE_OPS = (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor)
#: Deprecated pre-QuerySpec entry points; callable only from their home
#: package (the shims delegate to spec execution there).
_LEGACY_QUERY_CALLS = frozenset(
    {
        "window_query",
        "segments_at_point",
        "segments_at_other_endpoint",
        "incident_segments_with_geometry",
        "nearest_segment",
        "nearest_k_segments",
        "enclosing_polygon",
    }
)

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{2}\d{2}(?:\s*,\s*[A-Z]{2}\d{2})*)"
    r"(?:\s*--\s*(\S.*))?"
)


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _dotted(node: ast.AST) -> str:
    """Render an attribute chain like ``self.ctx.disk`` (best effort)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    parts.append(node.id if isinstance(node, ast.Name) else "?")
    return ".".join(reversed(parts))


def _chain_tail(node: ast.AST) -> str:
    """Last identifier of an expression chain, lowercased ('' if opaque)."""
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    if isinstance(node, ast.Name):
        return node.id.lower()
    return ""


class _Scope:
    """Which rule domains apply to the file being linted."""

    def __init__(self, path: str) -> None:
        p = _norm(path)
        self.in_storage = "/repro/storage/" in p or p.endswith("repro/storage")
        self.in_core = "/repro/core/" in p
        self.is_latch_module = p.endswith("repro/storage/latch.py")
        self.is_metric_names = p.endswith("repro/metric_names.py")
        self.is_legacy_home = "/repro/core/queries/" in p


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, scope: _Scope) -> None:
        self.path = path
        self.scope = scope
        self.docstrings: Set[int] = set()  # id() of docstring Constants
        self.raw: List[Tuple[str, int, str]] = []  # (rule, line, detail)

    def _flag(self, rule: str, node: ast.AST, detail: str) -> None:
        self.raw.append((rule, getattr(node, "lineno", 0), detail))

    # -- RP01 / RP02 / RP06: method-call rules -------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if callee in _LEGACY_QUERY_CALLS and not self.scope.is_legacy_home:
            self._flag(
                RP06,
                node,
                f"`{callee}(...)` is a deprecated legacy shim; build a "
                f"QuerySpec and run it through a backend "
                f"(engine/execute_spec) so backend selection applies",
            )
        if isinstance(func, ast.Attribute):
            target = _chain_tail(func.value)
            if (
                not self.scope.in_storage
                and func.attr in ("read", "write")
                and target == "disk"
            ):
                self._flag(
                    RP01,
                    node,
                    f"`{_dotted(func)}(...)` bypasses the buffer pool; route "
                    f"page traffic through pool.get/put or use disk.peek for "
                    f"uncounted instrumentation",
                )
            if (
                not self.scope.is_latch_module
                and func.attr in ("acquire", "release")
                and "latch" in target
            ):
                self._flag(
                    RP02,
                    node,
                    f"`{_dotted(func)}()` -- hold the latch with a `with` "
                    f"block so it cannot leak on an exception",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            not self.scope.in_storage
            and node.attr == "_pages"
            and _chain_tail(node.value) == "disk"
        ):
            self._flag(
                RP01,
                node,
                f"`{_dotted(node)}` reads raw disk state; use disk.peek "
                f"(uncounted) or the buffer pool (counted)",
            )
        self.generic_visit(node)

    # -- RP03: counter-field mutation ----------------------------------
    def _check_counter_target(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        field = target.attr
        if field not in _IO_FIELDS and field not in _COMP_FIELDS:
            return
        owner = target.value
        owner_tail = _chain_tail(owner)
        if "counter" not in owner_tail and not (
            self.scope.in_storage and owner_tail == "self"
        ):
            return
        if self.scope.in_storage:
            return
        if field in _COMP_FIELDS and self.scope.in_core:
            return
        layer = (
            "repro.storage"
            if field in _IO_FIELDS
            else "repro.storage or repro.core"
        )
        self._flag(
            RP03,
            target,
            f"`{_dotted(target)}` is owned by {layer}; merge a scratch "
            f"MetricsCounters instead of mutating fields directly",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_counter_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_counter_target(node.target)
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            not self.scope.is_metric_names
            and isinstance(node.value, str)
            and node.value in _COUNTER_NAME_LITERALS
            and id(node) not in self.docstrings
        ):
            self._flag(
                RP03,
                node,
                f"counter name {node.value!r} spelled as a string literal; "
                f"import the constant from repro.metric_names so a rename "
                f"cannot orphan this key",
            )
        self.generic_visit(node)

    # -- RP04: exception swallowing ------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(RP04, node, "bare `except:` swallows SystemExit and bugs alike")
        elif self._is_broad(node.type) and self._is_trivial_body(node.body):
            self._flag(
                RP04,
                node,
                "`except Exception: pass` hides corruption from the checks; "
                "handle, log, or narrow it",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_broad(type_node: ast.AST) -> bool:
        names: List[str] = []
        if isinstance(type_node, ast.Name):
            names = [type_node.id]
        elif isinstance(type_node, ast.Tuple):
            names = [e.id for e in type_node.elts if isinstance(e, ast.Name)]
        return any(n in ("Exception", "BaseException") for n in names)

    @staticmethod
    def _is_trivial_body(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True

    # -- RP05: grid-coordinate float literals (core/ only) -------------
    def _float_literal(self, node: ast.AST) -> Optional[ast.Constant]:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return node
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.operand, ast.Constant
        ) and isinstance(node.operand.value, float):
            return node.operand
        return None

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.scope.in_core and isinstance(node.op, _BITWISE_OPS):
            for side in (node.left, node.right):
                lit = self._float_literal(side)
                if lit is not None:
                    self._flag(
                        RP05,
                        node,
                        f"float literal {lit.value!r} as a bitwise operand; "
                        f"grid arithmetic must stay integral",
                    )
        self.generic_visit(node)

    def _check_grid_call(self, node: ast.Call) -> None:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name not in _GRID_CALLS:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            lit = self._float_literal(arg)
            if lit is not None:
                self._flag(
                    RP05,
                    node,
                    f"float literal {lit.value!r} passed to {name}(); "
                    f"grid coordinates and depths are integers",
                )


def _collect_disables(
    source: str, findings: List[Tuple[str, int, str]], path: str
) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """Parse per-line disable pragmas; unjustified ones become RP00."""
    disabled: Dict[int, Set[str]] = {}
    extra: List[Finding] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _DISABLE_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        if not m.group(2):
            extra.append(
                error(
                    RP00,
                    lineno,
                    path,
                    "disable pragma must carry a justification: "
                    "`# repro-lint: disable=RPxx -- <why this is safe>`",
                )
            )
            continue
        disabled.setdefault(lineno, set()).update(rules)
    return disabled, extra


def _docstring_constants(tree: ast.AST) -> Set[int]:
    """``id()`` of every docstring Constant (exempt from the name rule)."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one file's source text; returns findings (empty when clean)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [error(RP00, exc.lineno, path, f"file does not parse: {exc.msg}")]
    scope = _Scope(path)
    visitor = _Visitor(path, scope)
    visitor.docstrings = _docstring_constants(tree)
    visitor.visit(tree)
    if scope.in_core:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                visitor._check_grid_call(node)
    disabled, findings = _collect_disables(source, visitor.raw, path)
    for rule, lineno, detail in visitor.raw:
        if rule in disabled.get(lineno, ()):
            continue
        findings.append(error(rule, lineno, path, detail))
    return findings


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                out.extend(
                    os.path.join(root, f) for f in sorted(files) if f.endswith(".py")
                )
        elif path.endswith(".py"):
            out.append(path)
    return out


def lint_paths(paths: Iterable[str]) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        findings.extend(lint_file(filename))
    return findings
