"""Structured findings shared by the index fsck and the AST linter.

Both analyses report problems the same way: a flat list of
:class:`Finding` records, each naming the violated rule, a severity, the
page (or source line) it anchors to, and a human-readable detail string.
Keeping the record structured lets the service layer return findings over
the wire (``{"op": "check"}``), the CLI render them as text, and the
corruption-injection tests assert on exact rule ids and page ids instead
of grepping message strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: A definite invariant violation: the structure (or source) is wrong.
ERROR = "error"
#: Suspicious but tolerated state (e.g. the R+-tree's documented
#: pathological overfull leaf); reported, but does not fail a check.
WARNING = "warning"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Finding:
    """One rule violation found by a static analysis pass.

    ``page_id`` is the disk page the violation anchors to (or ``None``
    for whole-structure findings; the linter reuses it as the source
    line number). ``path`` locates the finding: a root-to-node page-id
    path for the fsck, a file path for the linter.
    """

    rule: str
    severity: str
    page_id: Optional[int]
    path: str
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "page_id": self.page_id,
            "path": self.path,
            "detail": self.detail,
        }


def error(rule: str, page_id: Optional[int], path: str, detail: str) -> Finding:
    return Finding(rule, ERROR, page_id, path, detail)


def warning(rule: str, page_id: Optional[int], path: str, detail: str) -> Finding:
    return Finding(rule, WARNING, page_id, path, detail)


def has_errors(findings: Iterable[Finding]) -> bool:
    return any(f.severity == ERROR for f in findings)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Errors first, then by rule id, then by page id (stable display)."""
    return sorted(
        findings,
        key=lambda f: (
            _SEVERITY_ORDER.get(f.severity, 99),
            f.rule,
            f.page_id if f.page_id is not None else -1,
        ),
    )


def format_findings(findings: Iterable[Finding], title: str = "") -> str:
    """Render findings as the ``python -m repro check``/``lint`` report."""
    ordered = sort_findings(findings)
    lines: List[str] = []
    if title:
        lines.append(title)
    for f in ordered:
        where = f.path
        if f.page_id is not None:
            where = f"{where}:{f.page_id}" if where else str(f.page_id)
        lines.append(f"{f.severity.upper():7s} {f.rule} [{where}] {f.detail}")
    errors = sum(1 for f in ordered if f.severity == ERROR)
    warnings = len(ordered) - errors
    lines.append(
        f"{len(ordered)} finding(s): {errors} error(s), {warnings} warning(s)"
        if ordered
        else "clean: 0 findings"
    )
    return "\n".join(lines)


@dataclass
class RuleSet:
    """Registry mapping rule ids to one-line descriptions (for ``--rules``)."""

    rules: Dict[str, str] = field(default_factory=dict)

    def register(self, rule: str, description: str) -> str:
        self.rules[rule] = description
        return rule

    def describe(self) -> str:
        return "\n".join(f"{rid}  {desc}" for rid, desc in sorted(self.rules.items()))


#: All fsck rules, registered by the checker modules at import time.
FSCK_RULES = RuleSet()
#: All lint rules, registered by :mod:`repro.analysis.lint`.
LINT_RULES = RuleSet()
