"""Storage-level integrity checks: inventories, free list, segment table.

SQLite's ``PRAGMA integrity_check`` equivalent for the simulated disk:
every page the index claims must exist, every freed page must be truly
unreferenced, every allocated page must belong to exactly one inventory,
and the segment table must actually hold the segments the structures
point at.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.analysis.findings import FSCK_RULES, Finding, error, warning

FS01 = FSCK_RULES.register("FS01", "manifest inventory disagrees with disk pages")
FS02 = FSCK_RULES.register("FS02", "free-list page id is still allocated")
FS03 = FSCK_RULES.register("FS03", "free-list page id is referenced by an inventory")
FS04 = FSCK_RULES.register("FS04", "dangling segment-table pointer")
FS05 = FSCK_RULES.register("FS05", "segment table inconsistent with its pages")
FS06 = FSCK_RULES.register("FS06", "allocated page belongs to no inventory (leak)")


def _inventories(index) -> Dict[str, Set[int]]:
    """Page inventories of the index and its segment table, by owner."""
    owners: Dict[str, Set[int]] = {}
    if hasattr(index, "btree"):  # PMR: the pages live in the B-tree
        owners["btree"] = set(index.btree._page_ids)
    elif hasattr(index, "_page_ids"):
        owners[index.name] = set(index._page_ids)
    owners["segments"] = set(index.ctx.segments._page_ids)
    return owners


def check_storage(index) -> List[Finding]:
    """Verify the disk-level bookkeeping under a live index."""
    disk = index.ctx.disk
    findings: List[Finding] = []
    allocated = set(disk.allocated_ids())
    free = set(disk.free_ids())
    owners = _inventories(index)

    for pid in sorted(free & allocated):
        findings.append(
            error(FS02, pid, "free-list", "page is both freed and allocated")
        )
    for owner, pages in owners.items():
        for pid in sorted(pages & free):
            findings.append(
                error(FS03, pid, owner, f"freed page is referenced by {owner}")
            )
        for pid in sorted(pages - allocated - free):
            findings.append(
                error(FS01, pid, owner, f"{owner} inventory page is not on disk")
            )

    referenced: Set[int] = set()
    for pages in owners.values():
        referenced |= pages
    for pid in sorted(allocated - referenced):
        findings.append(
            warning(FS06, pid, "disk", "allocated page belongs to no inventory")
        )

    findings.extend(_check_segment_table(index.ctx))
    return findings


def _check_segment_table(ctx) -> List[Finding]:
    table = ctx.segments
    disk = ctx.disk
    findings: List[Finding] = []
    count = len(table)
    per_page = table.per_page
    pages = table._page_ids
    if count > len(pages) * per_page:
        findings.append(
            error(
                FS05,
                None,
                "segments",
                f"{count} segments cannot fit in {len(pages)} pages of "
                f"{per_page} records (table truncated)",
            )
        )
    stored = 0
    for i, pid in enumerate(pages):
        if not disk.is_allocated(pid):
            findings.append(
                error(FS05, pid, "segments", "segment-table page is not on disk")
            )
            continue
        payload = disk.peek(pid)
        if not isinstance(payload, list):
            findings.append(
                error(
                    FS05,
                    pid,
                    "segments",
                    f"segment-table page holds {type(payload).__name__}, not a "
                    f"record list",
                )
            )
            continue
        stored += len(payload)
        expected = per_page if i < len(pages) - 1 else count - per_page * i
        if len(payload) < expected:
            findings.append(
                error(
                    FS05,
                    pid,
                    "segments",
                    f"segment-table page holds {len(payload)} records, "
                    f"bookkeeping expects {expected}",
                )
            )
    if stored < count:
        findings.append(
            error(
                FS05,
                None,
                "segments",
                f"segment table stores {stored} records but claims {count}",
            )
        )
    return findings


def check_segment_refs(index, refs, rule: str = FS04) -> List[Finding]:
    """Range-check segment ids referenced by an index's leaf entries."""
    table = index.ctx.segments
    findings: List[Finding] = []
    for seg_id in sorted(set(refs)):
        if not isinstance(seg_id, int) or not 0 <= seg_id < len(table):
            findings.append(
                error(
                    rule,
                    None,
                    index.name,
                    f"leaf entry references segment {seg_id!r}, table holds "
                    f"0..{len(table) - 1}",
                )
            )
    return findings


def check_snapshot_header(header: Dict[str, Any]) -> List[Finding]:
    """Cross-check a snapshot file's codec header against its manifest.

    Runs on the raw JSON header (no page decoding): the manifest's page
    inventories must be covered by the header's page table, and the
    persisted free list must not claim any dumped page.
    """
    findings: List[Finding] = []
    page_ids = {meta["id"] for meta in header.get("pages", [])}
    free_ids = set(header.get("free_ids", []))
    manifest: Optional[Dict[str, Any]] = header.get("manifest")

    for pid in sorted(free_ids & page_ids):
        findings.append(
            error(FS02, pid, "header", "page is both dumped and on the free list")
        )
    if manifest is None:
        return findings

    claimed: Dict[str, List[int]] = {}
    seg = manifest.get("segments", {})
    claimed["segments"] = list(seg.get("page_ids", []))
    state = manifest.get("state", {})
    if "page_ids" in state:
        claimed[manifest.get("kind", "index")] = list(state["page_ids"])
    btree = manifest.get("btree", {})
    if "page_ids" in btree:
        claimed["btree"] = list(btree["page_ids"])
    for owner, pids in claimed.items():
        for pid in pids:
            if pid not in page_ids:
                findings.append(
                    error(
                        FS01,
                        pid,
                        owner,
                        f"manifest {owner} inventory lists page {pid}, which "
                        f"the snapshot does not contain",
                    )
                )
            if pid in free_ids:
                findings.append(
                    error(FS03, pid, owner, f"manifest {owner} references a freed page")
                )
    return findings
