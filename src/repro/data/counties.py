"""The six synthetic counties mirroring the paper's test maps.

Paper (Section 6): "Tests were run on 6 maps of counties in Maryland where
each map contained approximately 50,000 line segments. The counties
included urban areas (Baltimore), suburban areas (Anne Arundel), and rural
areas (Cecil, Charles, Garrett, and Washington)."

Character calibration:

* **baltimore** -- a dominant dense urban core (average surrounding
  polygon ~19 edges in the paper: mostly city blocks, some larger);
* **anne_arundel** -- suburban: several medium developments;
* **charles** -- the most rural profile (average polygon 132 edges in the
  paper): mostly meandering road/stream pairs;
* **cecil / garrett / washington** -- rural with varying walk/background
  mixes.

Segment counts default to the paper's (about 46-51 thousand per county)
scaled by ``scale``; the benchmarks run at a reduced scale so the whole
suite completes in minutes of pure Python (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List

from repro.data.generator import GeneratorSpec, MapData, generate_map

#: Paper Table 1 segment counts.
_PAPER_COUNTS: Dict[str, int] = {
    "anne_arundel": 46335,
    "baltimore": 48068,
    "cecil": 46900,
    "charles": 50998,
    "garrett": 49895,
    "washington": 49575,
}

COUNTY_NAMES: List[str] = sorted(_PAPER_COUNTS)


def county_profile(name: str, target_segments: int, world_size: int = 16384) -> GeneratorSpec:
    """The generator parameters of one synthetic county."""
    base_seed = 0x51630 + sum(ord(c) for c in name)
    if name == "baltimore":
        return GeneratorSpec(
            kind="urban",
            target_segments=target_segments,
            seed=base_seed,
            world_size=world_size,
            blobs=[(0.5, 0.5, 0.30, 0.97), (0.75, 0.3, 0.12, 0.85)],
            background=0.35,
            diagonal_fraction=0.02,
        )
    if name == "anne_arundel":
        return GeneratorSpec(
            kind="suburban",
            target_segments=target_segments,
            seed=base_seed,
            world_size=world_size,
            blobs=[
                (0.3, 0.7, 0.12, 0.9),
                (0.6, 0.4, 0.15, 0.85),
                (0.8, 0.75, 0.10, 0.8),
                (0.25, 0.25, 0.08, 0.8),
            ],
            background=0.30,
            walk_fraction=0.05,
            tandem_probability=0.0,
        )
    if name == "charles":
        return GeneratorSpec(
            kind="rural",
            target_segments=target_segments,
            seed=base_seed,
            world_size=world_size,
            blobs=[(0.4, 0.6, 0.06, 0.75)],
            background=0.04,
            walk_fraction=0.70,
            tandem_probability=0.5,
        )
    if name in ("cecil", "garrett", "washington"):
        tweaks = {
            "cecil": (0.08, 0.55, 0.35),
            "garrett": (0.05, 0.65, 0.45),
            "washington": (0.06, 0.55, 0.35),
        }
        background, walk_fraction, tandem = tweaks[name]
        return GeneratorSpec(
            kind="rural",
            target_segments=target_segments,
            seed=base_seed,
            world_size=world_size,
            blobs=[(0.5, 0.35, 0.08, 0.8)],
            background=background,
            walk_fraction=walk_fraction,
            tandem_probability=tandem,
        )
    raise KeyError(f"unknown county {name!r}; choose from {COUNTY_NAMES}")


def generate_county(
    name: str, scale: float = 1.0, world_size: int = 16384
) -> MapData:
    """Generate one synthetic county at a fraction of the paper's size."""
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    target = max(64, int(_PAPER_COUNTS[name] * scale))
    return generate_map(name, county_profile(name, target, world_size))
