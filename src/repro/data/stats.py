"""Descriptive statistics of a polygonal map.

Used by the ``generate`` CLI command and the data-quality tests to show
that a synthetic county has the properties the comparison depends on:
segment count, vertex degrees (the paper's PMR threshold rests on roads
rarely meeting more than 4 at a point), length distribution, density
skew, and noding (planarity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.data.generator import MapData


@dataclass
class MapStatistics:
    name: str
    segments: int
    vertices: int
    degree_histogram: Dict[int, int]
    length_min: float
    length_mean: float
    length_max: float
    density_quartile_share: List[float]  # share of segments per density quartile
    planar: bool

    def __str__(self) -> str:  # pragma: no cover - formatting
        degrees = ", ".join(f"{d}:{n}" for d, n in sorted(self.degree_histogram.items()))
        return (
            f"{self.name}: {self.segments} segments, {self.vertices} vertices\n"
            f"  degrees {{{degrees}}}\n"
            f"  lengths min/mean/max = {self.length_min:.0f}/"
            f"{self.length_mean:.0f}/{self.length_max:.0f}\n"
            f"  densest-quartile share = {self.density_quartile_share[-1]:.2f}\n"
            f"  noded planar map: {self.planar}"
        )


def map_statistics(map_data: MapData, grid: int = 8, check_planar: bool = True) -> MapStatistics:
    """Compute the summary; ``grid`` controls the density measurement."""
    segments = map_data.segments
    if not segments:
        raise ValueError("empty map")

    degree: Dict[int, int] = {}
    for ids in map_data.endpoint_index().values():
        d = len(ids)
        degree[d] = degree.get(d, 0) + 1

    lengths = [s.length() for s in segments]

    # Density skew: bin segment midpoints into a grid x grid raster and
    # report the share of segments in each occupancy quartile of cells.
    cell = map_data.world_size / grid
    counts: Dict[Tuple[int, int], int] = {}
    for s in segments:
        cx = min(int(((s.x1 + s.x2) / 2) / cell), grid - 1)
        cy = min(int(((s.y1 + s.y2) / 2) / cell), grid - 1)
        counts[(cx, cy)] = counts.get((cx, cy), 0) + 1
    occupied = sorted(counts.values())
    quartiles: List[float] = []
    n = len(occupied)
    total = sum(occupied)
    for q in range(4):
        lo = (q * n) // 4
        hi = ((q + 1) * n) // 4
        quartiles.append(sum(occupied[lo:hi]) / total if total else 0.0)

    return MapStatistics(
        name=map_data.name,
        segments=len(segments),
        vertices=len(map_data.endpoint_index()),
        degree_histogram=degree,
        length_min=min(lengths),
        length_mean=sum(lengths) / len(lengths),
        length_max=max(lengths),
        density_quartile_share=quartiles,
        planar=(not map_data.planarity_violations()) if check_planar else True,
    )
