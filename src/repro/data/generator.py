"""Synthetic TIGER-like road map generator.

Maps are **planar by construction**: all road vertices live on a jittered
square lattice, every segment joins two lattice-adjacent vertices, and the
jitter is bounded well below half the lattice pitch, so two segments can
only meet at a shared vertex -- exactly the noding discipline TIGER data
guarantees and that the enclosing-polygon query requires.

Three edge-selection modes provide the paper's county characters:

* ``urban`` -- nearly the full lattice inside one large dense core
  (city blocks of ~4-6 segments), thinning toward the edges;
* ``suburban`` -- several medium-density blobs over a moderate background;
* ``rural`` -- long meandering random-walk roads, some with a *tandem*
  partner one lattice cell away (the paper's road-and-stream pairs that
  bound very large skinny polygons), over a very sparse background.

Vertex degree never exceeds 4, matching the paper's observation that more
than 4 roads rarely meet at a point (the basis of its PMR threshold).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.geometry import Point, Segment

_Edge = Tuple[Tuple[int, int], Tuple[int, int]]  # lattice vertices, ordered


@dataclass
class MapData:
    """A generated (or imported) polygonal map."""

    name: str
    segments: List[Segment]
    world_size: int = 16384

    def __len__(self) -> int:
        return len(self.segments)

    def endpoint_index(self) -> Dict[Point, List[int]]:
        """Map from endpoint to the ids (list positions) incident there."""
        out: Dict[Point, List[int]] = {}
        for i, s in enumerate(self.segments):
            out.setdefault(s.start, []).append(i)
            out.setdefault(s.end, []).append(i)
        return out

    def max_degree(self) -> int:
        return max((len(v) for v in self.endpoint_index().values()), default=0)

    def planarity_violations(self) -> "Set[Tuple[int, int]]":
        """Segment index pairs that cross anywhere except a shared
        endpoint. A noded (TIGER-style) map returns the empty set; the
        enclosing-polygon query requires it."""
        from repro.geometry.batch import batch_intersections

        return batch_intersections(
            self.segments, ignore_shared_endpoints=True
        )


def _edge_key(a: Tuple[int, int], b: Tuple[int, int]) -> _Edge:
    return (a, b) if a <= b else (b, a)


def _morton2(x: int, y: int) -> int:
    """Bit-interleave two small non-negative ints (edge-ordering key)."""
    out = 0
    for bit in range(16):
        out |= ((x >> bit) & 1) << (2 * bit)
        out |= ((y >> bit) & 1) << (2 * bit + 1)
    return out


class _Lattice:
    """A jittered n x n lattice inside the world square."""

    #: Jitter bound as a fraction of the pitch; must stay below ~0.35 for
    #: the planarity argument (disjoint lattice edges are >= 1 pitch apart,
    #: each endpoint moves < jitter*pitch, so segments cannot touch).
    JITTER = 0.30

    def __init__(self, n: int, world_size: int, rng: random.Random) -> None:
        self.n = n
        self.world_size = world_size
        pitch = world_size / (n + 1)
        self.points: Dict[Tuple[int, int], Point] = {}
        for i in range(n):
            for j in range(n):
                x = (i + 1) * pitch + rng.uniform(-self.JITTER, self.JITTER) * pitch
                y = (j + 1) * pitch + rng.uniform(-self.JITTER, self.JITTER) * pitch
                self.points[(i, j)] = Point(
                    min(max(int(round(x)), 0), world_size - 1),
                    min(max(int(round(y)), 0), world_size - 1),
                )

    def neighbours(self, v: Tuple[int, int]) -> List[Tuple[int, int]]:
        i, j = v
        out = []
        if i > 0:
            out.append((i - 1, j))
        if i < self.n - 1:
            out.append((i + 1, j))
        if j > 0:
            out.append((i, j - 1))
        if j < self.n - 1:
            out.append((i, j + 1))
        return out

    def all_edges(self) -> Iterable[_Edge]:
        for i in range(self.n):
            for j in range(self.n):
                if i + 1 < self.n:
                    yield ((i, j), (i + 1, j))
                if j + 1 < self.n:
                    yield ((i, j), (i, j + 1))

    def segment(self, edge: _Edge) -> Segment:
        a = self.points[edge[0]]
        b = self.points[edge[1]]
        return Segment(a.x, a.y, b.x, b.y)


def _density_field(
    blobs: List[Tuple[float, float, float, float]], background: float
) -> "_FieldFn":
    """A smooth [0, 1] field: max of Gaussian blobs over a background.

    Each blob is (cx, cy, radius, peak) in unit coordinates.
    """

    def field(u: float, v: float) -> float:
        best = background
        for cx, cy, radius, peak in blobs:
            d2 = (u - cx) ** 2 + (v - cy) ** 2
            value = peak * math.exp(-d2 / (2 * radius * radius))
            if value > best:
                best = value
        return min(best, 1.0)

    return field


_FieldFn = "Callable[[float, float], float]"


def _select_field_edges(
    lattice: _Lattice, field, rng: random.Random
) -> Set[_Edge]:
    selected: Set[_Edge] = set()
    n = lattice.n
    for edge in lattice.all_edges():
        (i1, j1), (i2, j2) = edge
        u = (i1 + i2 + 2) / (2 * (n + 1))
        v = (j1 + j2 + 2) / (2 * (n + 1))
        if rng.random() < field(u, v):
            selected.add(edge)
    return selected


def _random_walk(
    lattice: _Lattice, rng: random.Random, length: int, straightness: float = 0.75
) -> List[_Edge]:
    """A self-avoiding-ish meander: momentum-biased walk on the lattice."""
    n = lattice.n
    v = (rng.randrange(n), rng.randrange(n))
    prev_dir: Tuple[int, int] = (0, 0)
    edges: List[_Edge] = []
    for _ in range(length):
        options = lattice.neighbours(v)
        if not options:
            break
        if prev_dir != (0, 0) and rng.random() < straightness:
            straight = (v[0] + prev_dir[0], v[1] + prev_dir[1])
            if straight in options:
                nxt = straight
            else:
                nxt = rng.choice(options)
        else:
            nxt = rng.choice(options)
        edges.append(_edge_key(v, nxt))
        prev_dir = (nxt[0] - v[0], nxt[1] - v[1])
        v = nxt
    return edges


def _grow_network(
    lattice: _Lattice, selected: Set[_Edge], need: int, rng: random.Random
) -> None:
    """Add ``need`` edges that extend or branch off the existing network."""
    if need <= 0:
        return
    vertices = {v for e in selected for v in e}
    if not vertices:
        v = (rng.randrange(lattice.n), rng.randrange(lattice.n))
        vertices.add(v)
    frontier = [
        _edge_key(v, w)
        for v in vertices
        for w in lattice.neighbours(v)
        if _edge_key(v, w) not in selected
    ]
    rng.shuffle(frontier)
    added = 0
    while frontier and added < need:
        edge = frontier.pop()
        if edge in selected:
            continue
        selected.add(edge)
        added += 1
        for v in edge:
            if v not in vertices:
                vertices.add(v)
                extensions = [
                    _edge_key(v, w)
                    for w in lattice.neighbours(v)
                    if _edge_key(v, w) not in selected
                ]
                for e in extensions:
                    frontier.insert(rng.randrange(len(frontier) + 1), e)


def _tandem(edges: List[_Edge], lattice: _Lattice, offset: Tuple[int, int]) -> List[_Edge]:
    """The same path shifted by one lattice cell (a stream beside a road)."""
    n = lattice.n
    out: List[_Edge] = []
    for (a, b) in edges:
        a2 = (a[0] + offset[0], a[1] + offset[1])
        b2 = (b[0] + offset[0], b[1] + offset[1])
        if 0 <= a2[0] < n and 0 <= a2[1] < n and 0 <= b2[0] < n and 0 <= b2[1] < n:
            out.append(_edge_key(a2, b2))
    return out


@dataclass
class GeneratorSpec:
    """Parameters of one synthetic county."""

    kind: str  # "urban" | "suburban" | "rural"
    target_segments: int
    seed: int
    world_size: int = 16384
    blobs: List[Tuple[float, float, float, float]] = field(default_factory=list)
    background: float = 0.1
    walk_fraction: float = 0.0  # fraction of target drawn as meanders
    tandem_probability: float = 0.0
    diagonal_fraction: float = 0.0  # urban shortcut streets


def generate_map(name: str, spec: GeneratorSpec) -> MapData:
    """Generate a planar map of roughly ``spec.target_segments`` segments."""
    if spec.target_segments < 8:
        raise ValueError(f"target_segments too small: {spec.target_segments}")
    rng = random.Random(spec.seed)

    # Lattice sized so that the field + walks can reach the target count:
    # a full n x n lattice has ~2n^2 edges; aim to use about `fill` of them.
    fill = {"urban": 0.75, "suburban": 0.55, "rural": 0.30}[spec.kind]
    n = max(8, int(math.sqrt(spec.target_segments / (2 * fill))))
    lattice = _Lattice(n, spec.world_size, rng)

    selected: Set[_Edge] = set()

    walk_budget = int(spec.target_segments * spec.walk_fraction)
    while walk_budget > 0 and len(selected) < walk_budget:
        length = rng.randint(n, 3 * n)
        walk = _random_walk(lattice, rng, length)
        selected.update(walk)
        if walk and rng.random() < spec.tandem_probability:
            offset = rng.choice([(1, 0), (0, 1)])
            selected.update(_tandem(walk, lattice, offset))

    field_fn = _density_field(spec.blobs, spec.background)
    selected.update(_select_field_edges(lattice, field_fn, rng))

    # Trim or top up toward the target for comparable Table 1 rows.
    selected_list = sorted(selected)
    if len(selected_list) > spec.target_segments:
        rng.shuffle(selected_list)
        selected_list = selected_list[: spec.target_segments]
    else:
        # Grow the road network from its own frontier (roads extend and
        # branch) rather than sprinkling isolated edges, which would
        # shred the large rural faces the profiles are calibrated for.
        _grow_network(
            lattice, selected, spec.target_segments - len(selected_list), rng
        )
        selected_list = sorted(selected)
        if len(selected_list) > spec.target_segments:
            rng.shuffle(selected_list)
            selected_list = selected_list[: spec.target_segments]

    # Emit in Z-order of the edge midpoint: TIGER files group the chains
    # of an area together, which gives the segment table the 2-d locality
    # the paper's measurements rely on ("since the segments are usually
    # in proximity, they will be stored close to each other"); Morton
    # order is the scan order that preserves that locality best.
    selected_list.sort(key=lambda e: _morton2(e[0][0] + e[1][0], e[0][1] + e[1][1]))
    segments = [lattice.segment(e) for e in selected_list]

    # Urban shortcut streets: diagonals across otherwise-empty cells. A
    # diagonal of a lattice cell can only meet cell-boundary segments at
    # its endpoints, so planarity is preserved.
    if spec.diagonal_fraction > 0:
        selected_set = set(selected_list)
        want = int(len(segments) * spec.diagonal_fraction)
        cells = [(i, j) for i in range(n - 1) for j in range(n - 1)]
        rng.shuffle(cells)
        added = 0
        for (i, j) in cells:
            if added >= want:
                break
            corners = [(i, j), (i + 1, j), (i, j + 1), (i + 1, j + 1)]
            cell_edges = [
                _edge_key(corners[0], corners[1]),
                _edge_key(corners[0], corners[2]),
                _edge_key(corners[1], corners[3]),
                _edge_key(corners[2], corners[3]),
            ]
            if all(e in selected_set for e in cell_edges):
                a = lattice.points[corners[0]]
                b = lattice.points[corners[3]]
                segments.append(Segment(a.x, a.y, b.x, b.y))
                added += 1

    # Drop any degenerate segments produced by extreme jitter collisions.
    segments = [s for s in segments if not s.is_degenerate()]
    return MapData(name=name, segments=segments, world_size=spec.world_size)
