"""Coordinate normalization (Section 6).

"For all the data structures, a minimum bounding square was computed for
each map, and all coordinate values were normalized with respect to a 16K
by 16K region."
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry import Rect, Segment


def bounding_square(segments: Sequence[Segment]) -> Rect:
    """The minimum bounding *square* of a segment collection."""
    if not segments:
        raise ValueError("cannot bound an empty map")
    xmin = min(min(s.x1, s.x2) for s in segments)
    xmax = max(max(s.x1, s.x2) for s in segments)
    ymin = min(min(s.y1, s.y2) for s in segments)
    ymax = max(max(s.y1, s.y2) for s in segments)
    side = max(xmax - xmin, ymax - ymin)
    return Rect(xmin, ymin, xmin + side, ymin + side)


def normalize_segments(
    segments: Sequence[Segment], world_size: int = 16384
) -> List[Segment]:
    """Scale a map into the ``[0, world_size)`` integer grid.

    Endpoints are snapped to integer pixels, shared endpoints stay shared
    (the same coordinate always rounds the same way), and segments that
    collapse to a point under snapping are dropped. Note that snapping
    *can* introduce crossings in pathological data; TIGER chains are far
    apart relative to a 16K grid, and the synthetic generator emits
    integer coordinates natively, so neither source is affected.
    """
    square = bounding_square(segments)
    side = square.xmax - square.xmin
    if side <= 0:
        raise ValueError("map has zero extent")
    scale = (world_size - 1) / side

    def snap(x: float, origin: float) -> int:
        v = int(round((x - origin) * scale))
        return min(max(v, 0), world_size - 1)

    out: List[Segment] = []
    for s in segments:
        ns = Segment(
            snap(s.x1, square.xmin),
            snap(s.y1, square.ymin),
            snap(s.x2, square.xmin),
            snap(s.y2, square.ymin),
        )
        if not ns.is_degenerate():
            out.append(ns)
    return out
