"""Random query generation (Section 6).

Two random-point models for the nearest-line and polygon queries:

* **1-stage**: uniform over the whole 16K x 16K region. The paper notes
  many such points land outside the road network or in large empty areas.
* **2-stage**: data-correlated. "We first generated the PMR quadtree
  block at random using a uniform distribution based on the total number
  of blocks -- not their size. Next ... we generated a query point at
  random within the block." Small blocks sit where segments are dense, so
  dense regions are queried more often.

Plus endpoint sampling for queries 1/2 and windows covering 0.01 % of the
map area for query 5 (the paper's window size, borrowed from the original
R*-tree evaluation).
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.core.pmr import PMRQuadtree
from repro.data.generator import MapData
from repro.geometry import Point, Rect


def uniform_points(
    n: int, rng: random.Random, world_size: int = 16384
) -> List[Point]:
    """The 1-stage model: n points uniform over the world square."""
    return [
        Point(rng.randrange(world_size), rng.randrange(world_size))
        for _ in range(n)
    ]


def two_stage_points(n: int, rng: random.Random, pmr: PMRQuadtree) -> List[Point]:
    """The 2-stage model: uniform over PMR leaf blocks, then within the block."""
    blocks = pmr.leaf_blocks()
    if not blocks:
        raise ValueError("PMR quadtree has no blocks")
    out: List[Point] = []
    for _ in range(n):
        block = blocks[rng.randrange(len(blocks))]
        rect = block.rect(pmr.world_size)
        out.append(
            Point(
                rng.randrange(int(rect.xmin), int(rect.xmax)),
                rng.randrange(int(rect.ymin), int(rect.ymax)),
            )
        )
    return out


def random_endpoint_queries(
    n: int, rng: random.Random, map_data: MapData
) -> List[Tuple[Point, int]]:
    """(endpoint, segment id) pairs for queries 1 and 2."""
    if not map_data.segments:
        raise ValueError("empty map")
    out: List[Tuple[Point, int]] = []
    for _ in range(n):
        seg_id = rng.randrange(len(map_data.segments))
        seg = map_data.segments[seg_id]
        out.append((seg.start if rng.random() < 0.5 else seg.end, seg_id))
    return out


def random_windows(
    n: int,
    rng: random.Random,
    world_size: int = 16384,
    area_fraction: float = 0.0001,
) -> List[Rect]:
    """Query-5 windows covering ``area_fraction`` of the world area.

    The paper uses 0.01 % -- a 160 x 160 pixel window on a 16K x 16K map.
    """
    side = max(1, int(round(math.sqrt(area_fraction) * world_size)))
    out: List[Rect] = []
    for _ in range(n):
        x = rng.randrange(world_size - side)
        y = rng.randrange(world_size - side)
        out.append(Rect(x, y, x + side, y + side))
    return out
