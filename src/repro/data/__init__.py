"""Map data: synthetic TIGER-like counties, query-point models, TIGER I/O.

The paper's maps are six Maryland counties from the 1990 TIGER/Line
precensus files (about 50 000 segments each), which are not available
offline. :mod:`repro.data.generator` synthesizes planar road networks
with the properties the comparison actually depends on -- density skew,
intersection degree, and polygon-size distribution -- and
:mod:`repro.data.counties` instantiates six profiles mirroring the
paper's urban/suburban/rural mix. :mod:`repro.data.tiger` reads real
Record Type 1 files for anyone who has them.
"""

from repro.data.counties import COUNTY_NAMES, county_profile, generate_county
from repro.data.faces import Face, FaceSet, extract_faces
from repro.data.generator import MapData, generate_map
from repro.data.normalize import normalize_segments
from repro.data.query_points import (
    random_endpoint_queries,
    random_windows,
    two_stage_points,
    uniform_points,
)
from repro.data.tiger import (
    read_chains,
    read_type1,
    read_type2,
    write_type1,
    write_type2,
)

__all__ = [
    "COUNTY_NAMES",
    "Face",
    "FaceSet",
    "extract_faces",
    "MapData",
    "county_profile",
    "generate_county",
    "generate_map",
    "normalize_segments",
    "random_endpoint_queries",
    "random_windows",
    "read_chains",
    "read_type1",
    "read_type2",
    "two_stage_points",
    "uniform_points",
    "write_type1",
    "write_type2",
]
