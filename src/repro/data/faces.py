"""Complete face extraction from a polygonal map.

Query 4 walks *one* face around a query point; this module enumerates
**every** face of the planar subdivision in one pass -- turning a road
network into its city blocks / parcels, the classic GIS polygonization.

The walk uses the same rotation rule as the enclosing-polygon query (at
vertex ``v``, arriving from ``u``, continue along the incident edge with
the smallest strictly-positive clockwise angle from the direction back to
``u``), so each directed half-edge belongs to exactly one face and every
face is traced exactly once. Dead-end (bridge) edges appear twice in
their face, as in any DCEL.

Correctness is pinned by Euler's formula: a planar multigraph with ``V``
vertices, ``E`` edges, and ``C`` connected components has
``F = 2C + E - V`` faces counting one unbounded face per component --
exactly the number of cycles the walk produces. The test suite asserts
this identity on every generated county.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.geometry import Point, Segment
from repro.geometry.predicates import pseudo_angle


@dataclass
class Face:
    """One face: its boundary edges in walk order and its vertex cycle."""

    seg_ids: List[int]
    vertices: List[Point]
    signed_area2: float

    @property
    def size(self) -> int:
        return len(self.seg_ids)

    @property
    def is_outer(self) -> bool:
        """Outer faces come back clockwise (non-positive shoelace area)."""
        return self.signed_area2 <= 0

    def area(self) -> float:
        return abs(self.signed_area2) / 2.0


@dataclass
class FaceSet:
    faces: List[Face]
    vertices: int
    edges: int
    components: int

    def inner_faces(self) -> List[Face]:
        return [f for f in self.faces if not f.is_outer]

    def size_histogram(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for f in self.inner_faces():
            out[f.size] = out.get(f.size, 0) + 1
        return out

    def average_inner_size(self) -> float:
        inner = self.inner_faces()
        return sum(f.size for f in inner) / len(inner) if inner else 0.0

    def euler_consistent(self) -> bool:
        """F == 2C + E - V for a planar multigraph (one outer face per
        connected component)."""
        return len(self.faces) == 2 * self.components + self.edges - self.vertices


def extract_faces(segments: Sequence[Segment]) -> FaceSet:
    """Trace every face of a noded planar map.

    Input must be noded (segments meet only at shared endpoints);
    behaviour on non-planar input is undefined (use
    ``MapData.planarity_violations`` first when in doubt).
    """
    # Adjacency: vertex -> list of (neighbour, seg_id), sorted by angle.
    adjacency: Dict[Point, List[Tuple[Point, int]]] = {}
    for i, s in enumerate(segments):
        if s.is_degenerate():
            continue
        adjacency.setdefault(s.start, []).append((s.end, i))
        adjacency.setdefault(s.end, []).append((s.start, i))

    for v, nbrs in adjacency.items():
        nbrs.sort(key=lambda nb: pseudo_angle(nb[0].x - v.x, nb[0].y - v.y))

    # Connected components over vertices (union-find).
    parent: Dict[Point, Point] = {v: v for v in adjacency}

    def find(x: Point) -> Point:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for s in segments:
        if s.is_degenerate():
            continue
        ra, rb = find(s.start), find(s.end)
        if ra != rb:
            parent[ra] = rb
    components = len({find(v) for v in adjacency})

    # next() for the face walk: at v coming from u, take the neighbour
    # with the smallest strictly-positive clockwise turn from v->u.
    def next_edge(u: Point, v: Point) -> Tuple[Point, int]:
        back = pseudo_angle(u.x - v.x, u.y - v.y)
        best = None
        best_turn = 5.0
        for w, sid in adjacency[v]:
            turn = (back - pseudo_angle(w.x - v.x, w.y - v.y)) % 4.0
            if turn == 0.0:
                turn = 4.0  # the reverse edge: a dead end costs a full turn
            if turn < best_turn or (turn == best_turn and sid < best[1]):
                best_turn = turn
                best = (w, sid)
        return best

    visited = set()  # directed half-edges (u, v, seg_id)
    faces: List[Face] = []
    edge_count = sum(1 for s in segments if not s.is_degenerate())

    for i, s in enumerate(segments):
        if s.is_degenerate():
            continue
        for (u, v) in ((s.start, s.end), (s.end, s.start)):
            if (u, v, i) in visited:
                continue
            seg_ids: List[int] = []
            verts: List[Point] = [u]
            area2 = 0.0
            cu, cv, sid = u, v, i
            while (cu, cv, sid) not in visited:
                visited.add((cu, cv, sid))
                seg_ids.append(sid)
                verts.append(cv)
                area2 += cu.x * cv.y - cv.x * cu.y
                w, nsid = next_edge(cu, cv)
                cu, cv, sid = cv, w, nsid
            faces.append(Face(seg_ids, verts, area2))

    return FaceSet(
        faces=faces,
        vertices=len(adjacency),
        edges=edge_count,
        components=components,
    )
