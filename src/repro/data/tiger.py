"""Minimal 1990 TIGER/Line Record Type 1 I/O.

The paper's data source is the Bureau of the Census TIGER/Line precensus
files. Record Type 1 ("complete chain basic data record") is a fixed-width
228-byte line whose tail carries the chain's endpoint coordinates in
signed millionths of a degree:

========  =========  ====================================
columns   width      field
========  =========  ====================================
1         1          record type, ``'1'``
6-15      10         TLID (permanent chain id)
56-57     2          CFCC class (e.g. ``A41`` roads) -- first 2 of 3
191-200   10         FRLONG (from-longitude, signed, 6 implied decimals)
201-209   9          FRLAT
210-219   10         TOLONG
220-228   9          TOLAT
========  =========  ====================================

Only the fields needed to rebuild the segment geometry are interpreted;
everything else is preserved as opaque padding by the writer (used by the
round-trip tests). Feed the result to
:func:`repro.data.normalize.normalize_segments` to get paper-style maps.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.geometry import Segment

_RECORD_LEN = 228


class TigerFormatError(ValueError):
    """Raised for records that do not parse as TIGER Type 1."""


def _parse_coord(text: str, width: int, what: str, line_no: int) -> float:
    raw = text.strip()
    if not raw or raw in ("+", "-"):
        raise TigerFormatError(f"line {line_no}: blank {what} field")
    try:
        return int(raw) / 1_000_000.0
    except ValueError:
        raise TigerFormatError(
            f"line {line_no}: bad {what} field {text!r}"
        ) from None


def read_type1_records(
    path: Union[str, Path]
) -> List[Tuple[int, float, float, float, float]]:
    """Read Type 1 chains as ``(TLID, frlong, frlat, tolong, tolat)``.

    Records of other types are skipped; malformed Type 1 records raise
    :class:`TigerFormatError`.
    """
    records: List[Tuple[int, float, float, float, float]] = []
    with open(path, "r", encoding="ascii", errors="replace") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line or line[0] != "1":
                continue
            if len(line) < _RECORD_LEN:
                raise TigerFormatError(
                    f"line {line_no}: type-1 record shorter than "
                    f"{_RECORD_LEN} bytes ({len(line)})"
                )
            try:
                tlid = int(line[5:15])
            except ValueError:
                raise TigerFormatError(f"line {line_no}: bad TLID") from None
            frlong = _parse_coord(line[190:200], 10, "FRLONG", line_no)
            frlat = _parse_coord(line[200:209], 9, "FRLAT", line_no)
            tolong = _parse_coord(line[209:219], 10, "TOLONG", line_no)
            tolat = _parse_coord(line[219:228], 9, "TOLAT", line_no)
            records.append((tlid, frlong, frlat, tolong, tolat))
    return records


def read_type1(path: Union[str, Path]) -> List[Segment]:
    """Read all Type 1 chains as endpoint-to-endpoint segments."""
    return [
        Segment(frlong, frlat, tolong, tolat)
        for _, frlong, frlat, tolong, tolat in read_type1_records(path)
    ]


#: Record Type 2 ("complete chain shape coordinates") in the 1990 spec is
#: a 208-byte line: RT (col 1), version padding, TLID (cols 6-15), the
#: RTSQ sequence number (cols 16-18), then ten (long, lat) shape-point
#: pairs at 19 bytes each (cols 19-208). Unused trailing pairs hold
#: +000000000+00000000 and terminate the list.
_TYPE2_LEN = 208


def read_type2(path: Union[str, Path]) -> Dict[int, List[Tuple[float, float]]]:
    """Read Type 2 shape points, keyed by TLID, in RTSQ order.

    The zero pair terminates a record's points (no real chain passes
    through (0 E, 0 N) in US data, which is how TIGER marks padding).
    """
    raw: Dict[int, List[Tuple[int, List[Tuple[float, float]]]]] = {}
    with open(path, "r", encoding="ascii", errors="replace") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line or line[0] != "2":
                continue
            if len(line) < _TYPE2_LEN:
                raise TigerFormatError(
                    f"line {line_no}: type-2 record shorter than "
                    f"{_TYPE2_LEN} bytes ({len(line)})"
                )
            try:
                tlid = int(line[5:15])
                rtsq = int(line[15:18])
            except ValueError:
                raise TigerFormatError(f"line {line_no}: bad TLID/RTSQ") from None
            points: List[Tuple[float, float]] = []
            for i in range(10):
                base = 18 + i * 19
                lon = _parse_coord(line[base : base + 10], 10, "shape lon", line_no)
                lat = _parse_coord(
                    line[base + 10 : base + 19], 9, "shape lat", line_no
                )
                if lon == 0.0 and lat == 0.0:
                    break
                points.append((lon, lat))
            raw.setdefault(tlid, []).append((rtsq, points))

    out: Dict[int, List[Tuple[float, float]]] = {}
    for tlid, chunks in raw.items():
        chunks.sort()
        out[tlid] = [p for _, pts in chunks for p in pts]
    return out


def read_chains(
    rt1_path: Union[str, Path], rt2_path: Optional[Union[str, Path]] = None
) -> List[Segment]:
    """Assemble full chains (endpoints + shape points) into segments.

    Each TIGER chain is a polyline: the Type 1 endpoints with the Type 2
    shape points strung between them. Without an ``rt2_path`` this
    degenerates to :func:`read_type1`.
    """
    shapes = read_type2(rt2_path) if rt2_path is not None else {}
    segments: List[Segment] = []
    for tlid, frlong, frlat, tolong, tolat in read_type1_records(rt1_path):
        points = [(frlong, frlat), *shapes.get(tlid, []), (tolong, tolat)]
        for (x1, y1), (x2, y2) in zip(points, points[1:]):
            if (x1, y1) != (x2, y2):
                segments.append(Segment(x1, y1, x2, y2))
    return segments


def write_type2(
    path: Union[str, Path], shapes: Dict[int, List[Tuple[float, float]]]
) -> int:
    """Write shape points as Type 2 records (test fixture generator)."""
    count = 0
    with open(path, "w", encoding="ascii") as f:
        for tlid, points in sorted(shapes.items()):
            for rtsq, start in enumerate(range(0, len(points), 10), start=1):
                chunk = points[start : start + 10]
                rec = [" "] * _TYPE2_LEN
                rec[0] = "2"
                rec[5:15] = f"{tlid:>10d}"
                rec[15:18] = f"{rtsq:>3d}"
                for i in range(10):
                    base = 18 + i * 19
                    if i < len(chunk):
                        lon, lat = chunk[i]
                    else:
                        lon, lat = 0.0, 0.0
                    rec[base : base + 10] = _format_coord(lon, 10)
                    rec[base + 10 : base + 19] = _format_coord(lat, 9)
                f.write("".join(rec) + "\n")
                count += 1
    return count


def write_type1(
    path: Union[str, Path], segments: Iterable[Segment], cfcc: str = "A41"
) -> int:
    """Write segments as Type 1 records (degrees in, millionths out).

    Returns the number of records written. Primarily a test fixture
    generator, but emits records :func:`read_type1` and other TIGER
    consumers accept.
    """
    count = 0
    with open(path, "w", encoding="ascii") as f:
        for i, seg in enumerate(segments, start=1):
            rec = [" "] * _RECORD_LEN
            rec[0] = "1"
            rec[5:15] = f"{i:>10d}"
            rec[55:58] = f"{cfcc:<3s}"[:3]
            rec[190:200] = _format_coord(seg.x1, 10)
            rec[200:209] = _format_coord(seg.y1, 9)
            rec[209:219] = _format_coord(seg.x2, 10)
            rec[219:228] = _format_coord(seg.y2, 9)
            f.write("".join(rec) + "\n")
            count += 1
    return count


def _format_coord(value: float, width: int) -> str:
    scaled = int(round(value * 1_000_000))
    sign = "-" if scaled < 0 else "+"
    body = f"{abs(scaled):0{width - 1}d}"
    if len(body) > width - 1:
        raise TigerFormatError(f"coordinate {value} overflows field width {width}")
    return sign + body
