"""Async clients for both wire protocols.

:class:`AsyncMapClient` is the pipelining v2 client: it negotiates the
upgrade on connect, then any number of coroutines can ``await
client.request(...)`` concurrently on one connection -- each call gets
a fresh request id, the reader task resolves futures as response frames
arrive, in whatever order the server finishes them.

:func:`send_request_async` is the one-shot v1 convenience, the async
twin of :func:`repro.service.server.send_request`, used where a single
round trip is all that's needed (health probes, the async router's
address refresh).
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Any, Dict, Optional, Tuple

from repro.aio.frames import (
    HEADER_BYTES,
    PROTOCOL_VERSION_2,
    decode_header,
    decode_payload,
    encode_frame,
)

_COMPACT = (",", ":")


async def send_request_async(
    address: Tuple[str, int], request: Dict[str, Any], timeout: float = 10.0
) -> Dict[str, Any]:
    """One v1 request/response round trip on a fresh connection."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(*address), timeout
    )
    try:
        writer.write(json.dumps(request, separators=_COMPACT).encode() + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            raise ConnectionError(f"server at {address} closed the connection")
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # close already took effect


class AsyncMapClient:
    """A pipelined v2 connection: many outstanding requests, one socket.

    Usage::

        client = await AsyncMapClient.connect(server.address)
        results = await asyncio.gather(
            client.request({"op": "point", "x": 1.0, "y": 2.0}),
            client.request({"op": "stats"}),
        )
        await client.close()

    ``request`` returns the full response envelope (``{"ok": ...}``);
    callers decide whether an ``ok: false`` is an exception. If the
    server drops the connection, every outstanding and future request
    fails with :class:`ConnectionError`.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._reader_task: Optional[asyncio.Task] = None
        #: Capabilities the server advertised on the upgrade ack
        #: (``{"tc": true}`` = it reads trace-context frame trailers).
        self.features: Dict[str, Any] = {}

    @classmethod
    async def connect(
        cls, address: Tuple[str, int], timeout: float = 10.0
    ) -> "AsyncMapClient":
        """Open a connection and negotiate v2; raises if the server
        refuses the upgrade (e.g. it is the threaded v1-only server)."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(*address), timeout
        )
        hello = {"op": "ping", "v": PROTOCOL_VERSION_2}
        writer.write(json.dumps(hello, separators=_COMPACT).encode() + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        ack = json.loads(line) if line else {}
        if not ack.get("ok") or ack.get("v") != PROTOCOL_VERSION_2:
            writer.close()
            raise ConnectionError(
                f"server at {address} refused the v2 upgrade: {ack!r}"
            )
        client = cls(reader, writer)
        features = ack.get("features")
        if isinstance(features, dict):
            client.features = features
        client._reader_task = asyncio.get_running_loop().create_task(
            client._read_loop()
        )
        return client

    async def request(
        self, payload: Dict[str, Any], tc: Optional[Any] = None
    ) -> Dict[str, Any]:
        """Send one request frame; resolves when its response arrives.

        ``tc`` is an optional :class:`repro.obs.dtrace.TraceContext` to
        propagate. Against a server that advertised ``features.tc`` it
        rides the flags-gated binary trailer; otherwise it degrades to
        the ``"tc"`` JSON field, which every tracing-aware server also
        reads and older servers ignore.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        trailer = None
        if tc is not None:
            if self.features.get("tc"):
                trailer = tc.to_trailer()
            else:
                payload = dict(payload, tc=tc.to_wire())
        frame = encode_frame(request_id, payload, trace_trailer=trailer)
        async with self._write_lock:
            self._writer.write(frame)
            await self._writer.drain()
        return await future

    async def _read_loop(self) -> None:
        buf = bytearray()
        error: Exception = ConnectionError("connection closed by server")
        try:
            while True:
                while len(buf) < HEADER_BYTES:
                    chunk = await self._reader.read(65536)
                    if not chunk:
                        return
                    buf.extend(chunk)
                _flags, length, request_id = decode_header(
                    bytes(buf[:HEADER_BYTES])
                )
                total = HEADER_BYTES + length
                while len(buf) < total:
                    chunk = await self._reader.read(65536)
                    if not chunk:
                        return
                    buf.extend(chunk)
                payload = decode_payload(bytes(buf[HEADER_BYTES:total]))
                del buf[:total]
                future = self._pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result(payload)
        except (ConnectionError, OSError) as exc:
            error = exc
        finally:
            self._closed = True  # repro-lint: disable=CC03 -- event-loop confined: only the loop thread runs this coroutine; _write_lock serializes the socket, not this flag
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def close(self) -> None:
        self._closed = True  # repro-lint: disable=CC03 -- event-loop confined: close() runs on the same loop as the reader task
        if self._reader_task is not None:
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # socket already dead; nothing held open
